"""Backend wall-clock benchmark: the grid behind ``python -m repro bench``.

Unlike the E1-E10 harnesses (which regenerate the paper's *message* series),
this benchmark measures the one thing the paper's cost model ignores:
wall-clock.  Every grid point runs the same seeded scenario under every
timed backend, asserts the results are field-identical (rounds, messages,
token learnings, ``TC(E)``), and records the speedup of the fast path over
the reference engine.

Living inside the package (rather than only in ``benchmarks/``) makes the
perf trajectory reproducible from the installed entry point::

    repro bench --quick --output BENCH.json
    repro bench --quick --min-speedup 5      # CI perf-regression gate

``--min-speedup`` guards the bitset fast path: it fails (exit 1) unless the
flooding entry with the largest ``n`` in the executed grid is at least that
many times faster than the reference engine — the canary that the staged
round kernel has not silently lost its fast path.
"""

from __future__ import annotations

import os
import time
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.backends import get_backend
from repro.backends.differential import diff_results
from repro.scenarios import (
    ScenarioSpec,
    materialize,
    record_from_result,
    repetition_seed,
)

#: Environment variable naming a results store the reference records are
#: merged into (matches ``benchmarks.helpers.BENCH_STORE_ENV``).
BENCH_STORE_ENV = "REPRO_BENCH_STORE"

#: The backends every grid point is timed under; the first is ground truth.
BACKENDS: Tuple[str, ...] = ("reference", "bitset")


def _flooding_spec(num_nodes: int, rounds_per_token: int = 8) -> ScenarioSpec:
    """Flooding with k = n over a static random graph.

    The paper-default phase length of n rounds makes the grid quadratic in
    wall-clock without changing the per-round work being measured; 8 rounds
    per phase completes every phase on these dense graphs and keeps the
    reference runs CI-sized.
    """
    return ScenarioSpec(
        problem="single-source",
        problem_params={"num_nodes": num_nodes, "num_tokens": num_nodes},
        algorithm="flooding",
        algorithm_params={"rounds_per_token": rounds_per_token},
        adversary="static-random",
        adversary_params={"num_nodes": num_nodes, "edge_probability": 0.25},
        name=f"bench-flooding-n{num_nodes}-k{num_nodes}",
    )


def _single_source_spec(num_nodes: int, num_tokens: int) -> ScenarioSpec:
    return ScenarioSpec(
        problem="single-source",
        problem_params={"num_nodes": num_nodes, "num_tokens": num_tokens},
        algorithm="single-source",
        adversary="churn",
        adversary_params={"changes_per_round": 2},
        name=f"bench-single-source-n{num_nodes}-k{num_tokens}",
    )


def _spanning_tree_spec(num_nodes: int, num_tokens: int) -> ScenarioSpec:
    return ScenarioSpec(
        problem="single-source",
        problem_params={"num_nodes": num_nodes, "num_tokens": num_tokens},
        algorithm="spanning-tree",
        adversary="static-random",
        adversary_params={"num_nodes": num_nodes, "edge_probability": 0.25},
        name=f"bench-spanning-tree-n{num_nodes}-k{num_tokens}",
    )


def benchmark_grid(quick: bool) -> List[ScenarioSpec]:
    """The benchmark grid; ``quick`` is the CI-sized subset.

    Both grids include flooding at n=128 — the scenario the perf-regression
    gate (``--min-speedup``) is pinned to.
    """
    if quick:
        return [
            _flooding_spec(128),
            _single_source_spec(24, 32),
            _spanning_tree_spec(24, 24),
        ]
    return [
        _flooding_spec(64),
        _flooding_spec(128),
        _single_source_spec(64, 96),
        _spanning_tree_spec(64, 64),
    ]


def bench_store():
    """The :class:`~repro.results.RunStore` named by ``REPRO_BENCH_STORE``."""
    path = os.environ.get(BENCH_STORE_ENV)
    if not path:
        return None
    from repro.results import RunStore

    return RunStore(path)


def run_entry(spec: ScenarioSpec, store=None, *, repeat: int = 1) -> Dict[str, Any]:
    """Time one scenario under every backend and diff against the reference.

    Both backends run with ``keep_trace=False`` (the memory-shedding mode)
    so the comparison measures execution, not trace storage.  With
    ``repeat > 1`` the best of ``repeat`` timings is kept per backend, which
    damps scheduler and allocator noise on small grid points.
    """
    seed = repetition_seed(spec, 0)
    timings: Dict[str, float] = {}
    results = {}
    for backend_name in BACKENDS:
        backend = get_backend(backend_name)
        best = float("inf")
        for _ in range(max(1, repeat)):
            scenario = materialize(spec)
            start = time.perf_counter()
            result = backend.run(
                scenario.problem,
                scenario.algorithm,
                scenario.adversary,
                seed=seed,
                max_rounds=spec.max_rounds,
                keep_trace=False,
            )
            best = min(best, time.perf_counter() - start)
        timings[backend_name] = best
        results[backend_name] = result
    reference = results[BACKENDS[0]]
    differences: List[str] = []
    for backend_name in BACKENDS[1:]:
        differences.extend(
            difference.field
            for difference in diff_results(
                reference, results[backend_name], compare_graphs=False
            )
        )
    if store is not None:
        store.add([record_from_result(spec, 0, seed, reference)])
    reference_seconds = timings[BACKENDS[0]]
    return {
        "scenario": spec.label,
        "algorithm": spec.algorithm,
        "adversary": spec.adversary,
        "n": spec.problem_params["num_nodes"],
        "k": spec.problem_params.get(
            "num_tokens", spec.problem_params["num_nodes"]
        ),
        "completed": reference.completed,
        "rounds": reference.rounds,
        "total_messages": reference.total_messages,
        "seconds": {name: round(value, 4) for name, value in timings.items()},
        "speedup": {
            name: round(reference_seconds / timings[name], 2)
            for name in BACKENDS[1:]
        },
        "equal": not differences,
        "differences": differences,
    }


def speedup_gate(
    entries: Sequence[Dict[str, Any]], min_speedup: float
) -> Tuple[bool, str]:
    """Check the flooding-at-largest-n bitset speedup against a floor.

    Returns ``(passed, message)``; no flooding entry in the grid also fails,
    so a silently shrunken grid cannot green-light the gate.
    """
    flooding = [entry for entry in entries if entry["algorithm"] == "flooding"]
    if not flooding:
        return False, "speedup gate: no flooding entry in the executed grid"
    entry = max(flooding, key=lambda e: e["n"])
    observed = entry["speedup"].get("bitset", 0.0)
    message = (
        f"speedup gate: bitset {observed}x vs reference on {entry['scenario']} "
        f"(required >= {min_speedup}x)"
    )
    return observed >= min_speedup, message


def run_benchmark(
    *,
    quick: bool = False,
    repeat: int = 1,
    store=None,
    progress=None,
) -> Dict[str, Any]:
    """Run the grid and return the trajectory payload."""
    entries = []
    for spec in benchmark_grid(quick):
        entry = run_entry(spec, store=store, repeat=repeat)
        entries.append(entry)
        if progress is not None:
            speedups = ", ".join(
                f"{name} {entry['speedup'][name]}x" for name in BACKENDS[1:]
            )
            status = "ok" if entry["equal"] else f"MISMATCH: {entry['differences']}"
            progress(
                f"{entry['scenario']}: n={entry['n']} k={entry['k']} "
                f"rounds={entry['rounds']} reference={entry['seconds']['reference']}s "
                f"({speedups}) [{status}]"
            )
    return {
        "benchmark": "backends",
        "grid": "quick" if quick else "full",
        "backends": list(BACKENDS),
        "entries": entries,
    }
