"""Backend wall-clock benchmark: the grid behind ``python -m repro bench``.

Unlike the E1-E10 harnesses (which regenerate the paper's *message* series),
this benchmark measures the one thing the paper's cost model ignores:
wall-clock.  Every grid point runs the same seeded scenario under every
timed backend, asserts the results are field-identical (rounds, messages,
token learnings, ``TC(E)``), and records the speedup of the fast path over
the reference engine.

Living inside the package (rather than only in ``benchmarks/``) makes the
perf trajectory reproducible from the installed entry point::

    repro bench --quick --output BENCH.json
    repro bench --quick --min-speedup 5      # CI perf-regression gate

``--min-speedup`` guards the bitset fast path: it fails (exit 1) unless the
flooding entry with the largest ``n`` in the executed grid is at least that
many times faster than the reference engine — the canary that the staged
round kernel has not silently lost its fast path.

All measurements are routed through a :class:`repro.obs.MetricsRegistry`
whose snapshot rides along in the payload (``payload["metrics"]``), so bench
output and trace files share one vocabulary.  Two further opt-ins:

* ``--track-memory`` records the ``tracemalloc`` allocation peak of the grid
  into the ``memory.peak_bytes`` gauge;
* ``--max-obs-overhead`` runs :func:`obs_overhead_entry` — an untraced run
  vs a run with a *disabled* tracer handed through the full plumbing on the
  gate scenario — and fails unless the slowdown stays under the given
  percent, guarding the tracing layer's "disabled means free" promise.
"""

from __future__ import annotations

import os
import time
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.backends import get_backend
from repro.backends.differential import diff_results
from repro.obs.metrics import MetricsRegistry, track_peak_memory
from repro.scenarios import (
    ScenarioSpec,
    materialize,
    record_from_result,
    repetition_seed,
)

#: Environment variable naming a results store the reference records are
#: merged into (matches ``benchmarks.helpers.BENCH_STORE_ENV``).
BENCH_STORE_ENV = "REPRO_BENCH_STORE"

#: The backends every grid point is timed under; the first is ground truth.
BACKENDS: Tuple[str, ...] = ("reference", "bitset")


def _flooding_spec(num_nodes: int, rounds_per_token: int = 8) -> ScenarioSpec:
    """Flooding with k = n over a static random graph.

    The paper-default phase length of n rounds makes the grid quadratic in
    wall-clock without changing the per-round work being measured; 8 rounds
    per phase completes every phase on these dense graphs and keeps the
    reference runs CI-sized.
    """
    return ScenarioSpec(
        problem="single-source",
        problem_params={"num_nodes": num_nodes, "num_tokens": num_nodes},
        algorithm="flooding",
        algorithm_params={"rounds_per_token": rounds_per_token},
        adversary="static-random",
        adversary_params={"num_nodes": num_nodes, "edge_probability": 0.25},
        name=f"bench-flooding-n{num_nodes}-k{num_nodes}",
    )


def _single_source_spec(num_nodes: int, num_tokens: int) -> ScenarioSpec:
    return ScenarioSpec(
        problem="single-source",
        problem_params={"num_nodes": num_nodes, "num_tokens": num_tokens},
        algorithm="single-source",
        adversary="churn",
        adversary_params={"changes_per_round": 2},
        name=f"bench-single-source-n{num_nodes}-k{num_tokens}",
    )


def _spanning_tree_spec(num_nodes: int, num_tokens: int) -> ScenarioSpec:
    return ScenarioSpec(
        problem="single-source",
        problem_params={"num_nodes": num_nodes, "num_tokens": num_tokens},
        algorithm="spanning-tree",
        adversary="static-random",
        adversary_params={"num_nodes": num_nodes, "edge_probability": 0.25},
        name=f"bench-spanning-tree-n{num_nodes}-k{num_tokens}",
    )


def benchmark_grid(quick: bool) -> List[ScenarioSpec]:
    """The benchmark grid; ``quick`` is the CI-sized subset.

    Both grids include flooding at n=128 — the scenario the perf-regression
    gate (``--min-speedup``) is pinned to.
    """
    if quick:
        return [
            _flooding_spec(128),
            _single_source_spec(24, 32),
            _spanning_tree_spec(24, 24),
        ]
    return [
        _flooding_spec(64),
        _flooding_spec(128),
        _single_source_spec(64, 96),
        _spanning_tree_spec(64, 64),
    ]


def bench_store():
    """The :class:`~repro.results.RunStore` named by ``REPRO_BENCH_STORE``."""
    path = os.environ.get(BENCH_STORE_ENV)
    if not path:
        return None
    from repro.results import RunStore

    return RunStore(path)


def run_entry(spec: ScenarioSpec, store=None, *, repeat: int = 1) -> Dict[str, Any]:
    """Time one scenario under every backend and diff against the reference.

    Both backends run with ``keep_trace=False`` (the memory-shedding mode)
    so the comparison measures execution, not trace storage.  With
    ``repeat > 1`` the best of ``repeat`` timings is kept per backend, which
    damps scheduler and allocator noise on small grid points.
    """
    seed = repetition_seed(spec, 0)
    timings: Dict[str, float] = {}
    results = {}
    for backend_name in BACKENDS:
        backend = get_backend(backend_name)
        best = float("inf")
        for _ in range(max(1, repeat)):
            scenario = materialize(spec)
            start = time.perf_counter()
            result = backend.run(
                scenario.problem,
                scenario.algorithm,
                scenario.adversary,
                seed=seed,
                max_rounds=spec.max_rounds,
                keep_trace=False,
            )
            best = min(best, time.perf_counter() - start)
        timings[backend_name] = best
        results[backend_name] = result
    reference = results[BACKENDS[0]]
    differences: List[str] = []
    for backend_name in BACKENDS[1:]:
        differences.extend(
            difference.field
            for difference in diff_results(
                reference, results[backend_name], compare_graphs=False
            )
        )
    if store is not None:
        store.add([record_from_result(spec, 0, seed, reference)])
    reference_seconds = timings[BACKENDS[0]]
    return {
        "scenario": spec.label,
        "algorithm": spec.algorithm,
        "adversary": spec.adversary,
        "n": spec.problem_params["num_nodes"],
        "k": spec.problem_params.get(
            "num_tokens", spec.problem_params["num_nodes"]
        ),
        "completed": reference.completed,
        "rounds": reference.rounds,
        "total_messages": reference.total_messages,
        "seconds": {name: round(value, 4) for name, value in timings.items()},
        "speedup": {
            name: round(reference_seconds / timings[name], 2)
            for name in BACKENDS[1:]
        },
        "equal": not differences,
        "differences": differences,
    }


def speedup_gate(
    entries: Sequence[Dict[str, Any]], min_speedup: float
) -> Tuple[bool, str]:
    """Check the flooding-at-largest-n bitset speedup against a floor.

    Returns ``(passed, message)``; no flooding entry in the grid also fails,
    so a silently shrunken grid cannot green-light the gate.
    """
    flooding = [entry for entry in entries if entry["algorithm"] == "flooding"]
    if not flooding:
        return False, "speedup gate: no flooding entry in the executed grid"
    entry = max(flooding, key=lambda e: e["n"])
    observed = entry["speedup"].get("bitset", 0.0)
    message = (
        f"speedup gate: bitset {observed}x vs reference on {entry['scenario']} "
        f"(required >= {min_speedup}x)"
    )
    return observed >= min_speedup, message


# ---------------------------------------------------------------------------
# Sweep benchmark: serial bitset vs the vectorized batch backend
# ---------------------------------------------------------------------------

#: The backends timed per sweep entry; the first is ground truth.
SWEEP_BACKENDS: Tuple[str, ...] = ("bitset", "batch")


def _sweep_flooding_spec(num_nodes: int, repetitions: int) -> ScenarioSpec:
    spec = _flooding_spec(num_nodes)
    return ScenarioSpec(
        **{
            **spec.to_dict(),
            "repetitions": repetitions,
            "name": f"sweep-flooding-n{num_nodes}-k{num_nodes}-r{repetitions}",
        }
    )


def _sweep_one_shot_spec(num_nodes: int, repetitions: int) -> ScenarioSpec:
    return ScenarioSpec(
        problem="random-placement",
        problem_params={"num_nodes": num_nodes, "num_tokens": num_nodes // 2},
        algorithm="one-shot-flooding",
        adversary="churn",
        adversary_params={"changes_per_round": 4},
        repetitions=repetitions,
        name=f"sweep-one-shot-n{num_nodes}-k{num_nodes // 2}-r{repetitions}",
    )


def _sweep_naive_unicast_spec(num_nodes: int, repetitions: int) -> ScenarioSpec:
    k = (num_nodes * 3) // 4
    return ScenarioSpec(
        problem="multi-source",
        problem_params={"num_nodes": num_nodes, "num_tokens": k, "num_sources": 4},
        algorithm="naive-unicast",
        adversary="churn",
        adversary_params={"changes_per_round": 2},
        repetitions=repetitions,
        name=f"sweep-naive-unicast-n{num_nodes}-k{k}-r{repetitions}",
    )


def _sweep_single_source_spec(num_nodes: int, repetitions: int) -> ScenarioSpec:
    k = num_nodes + num_nodes // 3
    return ScenarioSpec(
        problem="single-source",
        problem_params={"num_nodes": num_nodes, "num_tokens": k},
        algorithm="single-source",
        adversary="churn",
        adversary_params={"changes_per_round": 2},
        repetitions=repetitions,
        name=f"sweep-single-source-n{num_nodes}-k{k}-r{repetitions}",
    )


def _sweep_spanning_tree_spec(num_nodes: int, repetitions: int) -> ScenarioSpec:
    return ScenarioSpec(
        problem="single-source",
        problem_params={"num_nodes": num_nodes, "num_tokens": num_nodes},
        algorithm="spanning-tree",
        adversary="static-random",
        adversary_params={"num_nodes": num_nodes, "edge_probability": 0.3},
        repetitions=repetitions,
        name=f"sweep-spanning-tree-n{num_nodes}-k{num_nodes}-r{repetitions}",
    )


def _sweep_multi_source_spec(num_nodes: int, repetitions: int) -> ScenarioSpec:
    k = (num_nodes * 5) // 6
    return ScenarioSpec(
        problem="multi-source",
        problem_params={"num_nodes": num_nodes, "num_tokens": k, "num_sources": 3},
        algorithm="multi-source",
        adversary="churn",
        adversary_params={"changes_per_round": 2},
        repetitions=repetitions,
        name=f"sweep-multi-source-n{num_nodes}-k{k}-r{repetitions}",
    )


def _sweep_oblivious_spec(num_nodes: int, repetitions: int) -> ScenarioSpec:
    # The registry default forces the two-phase variant, so every lane runs
    # real random-walk phase-1 rounds before the multi-source replay.  The
    # walks are RNG-sequential by design and run at parity lane-for-lane;
    # the batch win comes from amortizing setup across many repetitions,
    # hence the small-n, high-repetition cell.
    return ScenarioSpec(
        problem="multi-source",
        problem_params={"num_nodes": num_nodes, "num_tokens": num_nodes, "num_sources": 2},
        algorithm="oblivious",
        adversary="churn",
        adversary_params={"changes_per_round": 2},
        repetitions=repetitions,
        name=f"sweep-oblivious-n{num_nodes}-k{num_nodes}-r{repetitions}",
    )


def sweep_grid(quick: bool) -> List[ScenarioSpec]:
    """The multi-repetition sweep grid; ``quick`` is the CI-sized subset.

    Both grids cover one cell per batch-vectorized algorithm — all seven
    registered algorithms — and include the 32-repetition flooding sweep
    at n=128, the scenario the batch perf gate (``--min-batch-speedup``)
    is pinned to.  Cell sizes are tuned per algorithm: the bulk-vectorized
    programs (flooding, one-shot-flooding, naive-unicast) win on large
    lockstep rounds, while the per-lane replay programs (the unicast
    family) win on setup amortization, so their cells are small-n,
    many-repetition sweeps.
    """
    grid = [
        _sweep_flooding_spec(128, 32),
        _sweep_one_shot_spec(64, 16),
        _sweep_naive_unicast_spec(32, 16),
        _sweep_single_source_spec(12, 64),
        _sweep_spanning_tree_spec(12, 96),
        _sweep_multi_source_spec(12, 64),
        _sweep_oblivious_spec(8, 160),
    ]
    if quick:
        return grid
    return [
        _sweep_flooding_spec(64, 32),
        *grid,
        _sweep_one_shot_spec(96, 32),
    ]


def run_sweep_entry(spec: ScenarioSpec, *, repeat: int = 1) -> Dict[str, Any]:
    """Time all repetitions of one spec serially (bitset) and batched.

    The serial side executes each repetition exactly the way the scenario
    runner would — fresh materialization per repetition, per-repetition
    seed — so the measured speedup is the real sweep-level win.  Both sides
    run with ``keep_trace=False`` and every repetition is diffed
    field-by-field.

    Timing trials are *interleaved* (serial, batch, serial, batch, ...)
    rather than run as two back-to-back blocks: on a noisy box, load drift
    during an all-serial-then-all-batch measurement lands entirely on one
    side and skews the ratio, while paired trials sample the same
    conditions.  Each side still reports its best-of-``repeat``.
    """
    from repro.batch.backend import BatchBackend

    repetitions = list(range(spec.repetitions))
    seeds = [repetition_seed(spec, repetition) for repetition in repetitions]
    serial_backend = get_backend("bitset")
    batch_backend = BatchBackend()
    serial_best = float("inf")
    batch_best = float("inf")
    for _ in range(max(1, repeat)):
        start = time.perf_counter()
        serial_results = []
        for seed in seeds:
            scenario = materialize(spec)
            serial_results.append(
                serial_backend.run(
                    scenario.problem,
                    scenario.algorithm,
                    scenario.adversary,
                    seed=seed,
                    max_rounds=spec.max_rounds,
                    keep_trace=False,
                )
            )
        serial_best = min(serial_best, time.perf_counter() - start)

        start = time.perf_counter()
        batch_results = batch_backend.run_batch(
            spec, repetitions, keep_trace=False
        )
        batch_best = min(batch_best, time.perf_counter() - start)

    differences: List[str] = []
    for repetition, (serial, batch) in enumerate(zip(serial_results, batch_results)):
        differences.extend(
            f"rep{repetition}:{difference.field}"
            for difference in diff_results(serial, batch, compare_graphs=False)
        )
    return {
        "scenario": spec.label,
        "algorithm": spec.algorithm,
        "adversary": spec.adversary,
        "n": spec.problem_params["num_nodes"],
        "k": spec.problem_params.get(
            "num_tokens", spec.problem_params["num_nodes"]
        ),
        "repetitions": spec.repetitions,
        "completed": all(result.completed for result in serial_results),
        "rounds": max(result.rounds for result in serial_results),
        "total_messages": sum(result.total_messages for result in serial_results),
        "seconds": {
            "bitset": round(serial_best, 4),
            "batch": round(batch_best, 4),
        },
        "speedup": {"batch": round(serial_best / batch_best, 2)},
        "equal": not differences,
        "differences": differences,
    }


def batch_speedup_gate(
    entries: Sequence[Dict[str, Any]], min_speedup: float
) -> Tuple[bool, str]:
    """Gate every sweep entry, then the flooding-at-largest-n floor.

    Two checks, both mandatory:

    * **every** entry must show a batch speedup of at least 1.0x — any
      cell where the vectorized backend lost to the serial loop fails the
      gate loudly, naming the entry (no averaging across the grid);
    * the flooding sweep at the largest ``n`` must additionally clear
      ``min_speedup``.
    """
    slow = [
        entry for entry in entries if entry["speedup"].get("batch", 0.0) < 1.0
    ]
    if slow:
        worst = min(slow, key=lambda e: e["speedup"].get("batch", 0.0))
        return False, (
            f"batch speedup gate: {len(slow)} of {len(entries)} entries below "
            f"1.0x — worst is {worst['scenario']} at "
            f"{worst['speedup'].get('batch', 0.0)}x (every swept cell must "
            f"beat the serial loop)"
        )
    flooding = [entry for entry in entries if entry["algorithm"] == "flooding"]
    if not flooding:
        return False, "batch speedup gate: no flooding sweep in the executed grid"
    entry = max(flooding, key=lambda e: e["n"])
    observed = entry["speedup"].get("batch", 0.0)
    message = (
        f"batch speedup gate: all {len(entries)} entries >= 1.0x; batch "
        f"{observed}x vs serial bitset on {entry['scenario']} "
        f"(required >= {min_speedup}x)"
    )
    return observed >= min_speedup, message


def parallel_group_entry(
    *, workers: int = 2, repeat: int = 1
) -> Dict[str, Any]:
    """Wall-clock of whole batch groups fanned out to a worker pool.

    Executes a four-cell vectorizable flooding grid (each cell = one batch
    group of 16 repetitions) twice through the ``RunSet`` streaming path:
    once in-process (``workers=1``, the serial-group baseline) and once
    through the process pool (one ``run_batch`` payload per group).  Wall-clock includes pool startup — that is what a user pays —
    and ``cpu_count`` rides along so single-core readings (where the pool
    can only add overhead) are interpretable.  Records must be identical
    between the two paths.
    """
    from repro.api import Experiment

    def grid():
        return (
            Experiment.grid(
                algorithm="flooding",
                adversary="static-random",
                num_nodes=[48, 64, 80, 96],
                num_tokens=32,
            )
            .backend("batch")
            .seeds(16)
        )

    serial_best = float("inf")
    parallel_best = float("inf")
    for _ in range(max(1, repeat)):
        start = time.perf_counter()
        serial_records = grid().run(workers=1).records()
        serial_best = min(serial_best, time.perf_counter() - start)

        start = time.perf_counter()
        parallel_records = grid().run(workers=workers).records()
        parallel_best = min(parallel_best, time.perf_counter() - start)

    return {
        "grid": "flooding static-random n=[48,64,80,96] k=32 x16 reps",
        "cells": len(serial_records),
        "groups": 4,
        "workers": workers,
        "cpu_count": os.cpu_count(),
        "seconds": {
            "serial_groups": round(serial_best, 4),
            "parallel_groups": round(parallel_best, 4),
        },
        "speedup": {"parallel": round(serial_best / parallel_best, 2)},
        "equal": serial_records == parallel_records,
    }


def _record_entry_metrics(
    registry: MetricsRegistry, prefix: str, entry: Dict[str, Any]
) -> None:
    """Fold one grid entry into the registry's counters and histograms."""
    registry.counter(f"{prefix}.entries").inc()
    if not entry["equal"]:
        registry.counter(f"{prefix}.mismatches").inc()
    for backend_name, seconds in entry["seconds"].items():
        registry.histogram(f"{prefix}.seconds.{backend_name}").observe(seconds)
    for backend_name, speedup in entry["speedup"].items():
        registry.histogram(f"{prefix}.speedup.{backend_name}").observe(speedup)


def run_sweep_benchmark(
    *,
    quick: bool = False,
    repeat: int = 1,
    progress=None,
    registry: Optional[MetricsRegistry] = None,
    track_memory: bool = False,
) -> Dict[str, Any]:
    """Run the sweep grid and return the batch-trajectory payload.

    Measurements land in ``registry`` (one is created when not given) and
    its snapshot rides along as ``payload["metrics"]``; ``track_memory``
    additionally records the tracemalloc allocation peak of the whole grid.
    """
    if registry is None:
        registry = MetricsRegistry()
    entries = []

    def _run_grid() -> None:
        for spec in sweep_grid(quick):
            entry = run_sweep_entry(spec, repeat=repeat)
            entries.append(entry)
            _record_entry_metrics(registry, "bench.sweep", entry)
            if progress is not None:
                status = "ok" if entry["equal"] else f"MISMATCH: {entry['differences']}"
                progress(
                    f"{entry['scenario']}: n={entry['n']} k={entry['k']} "
                    f"reps={entry['repetitions']} bitset={entry['seconds']['bitset']}s "
                    f"batch={entry['seconds']['batch']}s "
                    f"({entry['speedup']['batch']}x) [{status}]"
                )

    if track_memory:
        with track_peak_memory(registry):
            _run_grid()
    else:
        _run_grid()
    parallel = parallel_group_entry(repeat=repeat)
    registry.histogram("bench.sweep.parallel_speedup").observe(
        parallel["speedup"]["parallel"]
    )
    if progress is not None:
        progress(
            f"parallel groups: {parallel['groups']} groups x "
            f"{parallel['cells'] // parallel['groups']} reps, serial "
            f"{parallel['seconds']['serial_groups']}s vs "
            f"{parallel['workers']} workers "
            f"{parallel['seconds']['parallel_groups']}s "
            f"({parallel['speedup']['parallel']}x on "
            f"{parallel['cpu_count']} cpus) "
            f"[{'ok' if parallel['equal'] else 'MISMATCH'}]"
        )
    return {
        "benchmark": "batch-sweeps",
        "grid": "quick" if quick else "full",
        "backends": list(SWEEP_BACKENDS),
        "entries": entries,
        "parallel_groups": parallel,
        "metrics": registry.snapshot(),
    }


def run_benchmark(
    *,
    quick: bool = False,
    repeat: int = 1,
    store=None,
    progress=None,
    registry: Optional[MetricsRegistry] = None,
    track_memory: bool = False,
) -> Dict[str, Any]:
    """Run the grid and return the trajectory payload.

    Measurements land in ``registry`` (one is created when not given) and
    its snapshot rides along as ``payload["metrics"]``; ``track_memory``
    additionally records the tracemalloc allocation peak of the whole grid.
    """
    if registry is None:
        registry = MetricsRegistry()
    entries = []

    def _run_grid() -> None:
        for spec in benchmark_grid(quick):
            entry = run_entry(spec, store=store, repeat=repeat)
            entries.append(entry)
            _record_entry_metrics(registry, "bench", entry)
            if progress is not None:
                speedups = ", ".join(
                    f"{name} {entry['speedup'][name]}x" for name in BACKENDS[1:]
                )
                status = "ok" if entry["equal"] else f"MISMATCH: {entry['differences']}"
                progress(
                    f"{entry['scenario']}: n={entry['n']} k={entry['k']} "
                    f"rounds={entry['rounds']} reference={entry['seconds']['reference']}s "
                    f"({speedups}) [{status}]"
                )

    if track_memory:
        with track_peak_memory(registry):
            _run_grid()
    else:
        _run_grid()
    return {
        "benchmark": "backends",
        "grid": "quick" if quick else "full",
        "backends": list(BACKENDS),
        "entries": entries,
        "metrics": registry.snapshot(),
    }


# ---------------------------------------------------------------------------
# Observability overhead: the "disabled tracing is free" gate
# ---------------------------------------------------------------------------


def obs_overhead_entry(*, repeat: int = 3) -> Dict[str, Any]:
    """Measure what a disabled tracer costs on the bitset fast path.

    Runs the perf-gate scenario (flooding at n=128) three ways per trial:

    * ``plain`` — no tracer argument at all (the pre-observability call);
    * ``disabled`` — ``NULL_TRACER`` handed through the whole plumbing
      (backend kwarg, kernel construction, the per-run ``enabled`` check),
      which must select the same uninstrumented round loop;
    * ``noop`` — a :class:`~repro.obs.NullTracer` forced *enabled*, paying
      span creation and context entry per stage while every span is free.

    ``overhead_pct`` (``disabled`` vs ``plain``) is what the gate checks:
    the promise that tracing you did not ask for costs nothing.  If the
    kernel ever loses its dual-loop structure and starts opening spans
    unconditionally, the disabled run inherits the ``noop`` cost (~5% at
    this grid point) and the gate trips.  ``noop_overhead_pct`` rides along
    as the informational ceiling.  Best-of-``max(repeat, 3)`` per side
    damps scheduler noise; trials interleave all three sides so drift hits
    them equally.
    """
    from repro.obs.tracing import NULL_TRACER, NullTracer

    spec = _flooding_spec(128)
    seed = repetition_seed(spec, 0)
    backend = get_backend("bitset")
    forced = NullTracer(enabled=True)
    trials = max(repeat, 3)
    best = {"plain": float("inf"), "disabled": float("inf"), "noop": float("inf")}
    results: Dict[str, Any] = {}
    sides = (("plain", {}), ("disabled", {"tracer": NULL_TRACER}), ("noop", {"tracer": forced}))
    for _ in range(trials):
        for side, kwargs in sides:
            scenario = materialize(spec)
            start = time.perf_counter()
            results[side] = backend.run(
                scenario.problem,
                scenario.algorithm,
                scenario.adversary,
                seed=seed,
                max_rounds=spec.max_rounds,
                keep_trace=False,
                **kwargs,
            )
            best[side] = min(best[side], time.perf_counter() - start)
    differences = [
        f"{side}:{difference.field}"
        for side in ("disabled", "noop")
        for difference in diff_results(
            results["plain"], results[side], compare_graphs=False
        )
    ]
    return {
        "scenario": spec.label,
        "backend": "bitset",
        "trials": trials,
        "seconds": {side: round(value, 4) for side, value in best.items()},
        "overhead_pct": round((best["disabled"] / best["plain"] - 1.0) * 100.0, 2),
        "noop_overhead_pct": round((best["noop"] / best["plain"] - 1.0) * 100.0, 2),
        "equal": not differences,
        "differences": differences,
    }


def obs_overhead_gate(
    entry: Dict[str, Any], max_overhead_pct: float
) -> Tuple[bool, str]:
    """Check an :func:`obs_overhead_entry` result against a ceiling.

    Also fails when any traced run diverged from the plain one — a tracer
    must never change results, only observe them.
    """
    observed = entry["overhead_pct"]
    message = (
        f"obs overhead gate: disabled tracer {observed:+.2f}% vs untraced on "
        f"{entry['scenario']} (allowed <= {max_overhead_pct}%; "
        f"enabled no-op spans {entry['noop_overhead_pct']:+.2f}%)"
    )
    if not entry["equal"]:
        return False, message + f" [MISMATCH: {entry['differences']}]"
    return observed <= max_overhead_pct, message
