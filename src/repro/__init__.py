"""repro — a reproduction of "The Communication Cost of Information Spreading
in Dynamic Networks" (Ahmadi, Kuhn, Kutten, Molla, Pandurangan; ICDCS 2019).

The library simulates k-token dissemination by token-forwarding algorithms on
adversarial dynamic networks and measures the paper's cost metrics: total,
amortized and adversary-competitive message complexity.

Quickstart::

    from repro import (
        single_source_problem, SingleSourceUnicastAlgorithm,
        ControlledChurnAdversary, Simulator,
    )

    problem = single_source_problem(num_nodes=30, num_tokens=60)
    result = Simulator(
        problem,
        SingleSourceUnicastAlgorithm(),
        ControlledChurnAdversary(changes_per_round=5),
        seed=7,
    ).run()
    print(result.total_messages, result.amortized_adversary_competitive_messages())

Or declaratively, through the Scenario API (registries + serializable specs
+ a parallel batch runner)::

    from repro import ScenarioSpec, run_scenario

    spec = ScenarioSpec(
        problem="single-source",
        problem_params={"num_nodes": 30, "num_tokens": 60},
        algorithm="single-source",
        adversary="churn",
        seed=7,
    )
    print(run_scenario(spec).total_messages)

Or as one fluent expression through the Experiment API
(:mod:`repro.api`), which chains grid → run → store → aggregate →
compare → report and re-executes only what a bound store is missing::

    from repro import Experiment

    print(
        Experiment.grid(algorithm="flooding", adversary="static-random",
                        num_nodes=[16, 32, 64], num_tokens=32)
        .seeds(5)
        .backend("bitset")
        .store(".repro-store")          # re-runs skip cells already stored
        .run(workers=4)                 # streams records as they complete
        .aggregate(by=["n"])
        .compare(bounds=True)
        .report("md")
    )

See README.md for installation, the Scenario API (spec JSON, sweeps,
``--workers``), one-expression experiments and the registry extension
recipe.
"""

from repro.core import (
    CommunicationModel,
    DisseminationProblem,
    EventLog,
    ExecutionResult,
    MessageAccountant,
    MessageStatistics,
    RoundObservation,
    Simulator,
    Token,
    TokenLearning,
    make_tokens,
    multi_source_problem,
    n_gossip_problem,
    random_assignment_problem,
    single_source_problem,
)
from repro.core.problem import uniform_multi_source_problem
from repro.core.engine import run_execution
from repro.dynamics import (
    DynamicGraphTrace,
    GraphSchedule,
    churn_schedule,
    edge_markovian_schedule,
    geometric_mobility_schedule,
    is_sigma_edge_stable,
    minimum_edge_stability,
    path_shuffle_schedule,
    rewiring_regular_schedule,
    stabilize_schedule,
    star_oscillator_schedule,
    static_complete_schedule,
    static_path_schedule,
    static_star_schedule,
    static_cycle_schedule,
    schedule_summary,
    schedule_to_json,
    schedule_from_json,
    trace_to_schedule_json,
    save_schedule,
    load_schedule,
)
from repro.adversaries import (
    Adversary,
    AdaptiveRewiringAdversary,
    ControlledChurnAdversary,
    LowerBoundAdversary,
    RandomChurnObliviousAdversary,
    RequestCuttingAdversary,
    ScheduleAdversary,
    StarRecenterAdversary,
    StaticAdversary,
)
from repro.algorithms import (
    FloodingAlgorithm,
    MultiSourceUnicastAlgorithm,
    NaiveUnicastAlgorithm,
    ObliviousMultiSourceAlgorithm,
    OneShotFloodingAlgorithm,
    RandomWalkDisseminator,
    SingleSourceUnicastAlgorithm,
    SpanningTreeAlgorithm,
)
from repro.scenarios import (
    ADVERSARY_REGISTRY,
    ALGORITHM_REGISTRY,
    PROBLEM_REGISTRY,
    ScenarioRunner,
    ScenarioSpec,
    materialize,
    register_adversary,
    register_algorithm,
    register_problem,
    run_scenario,
    run_spec,
    sweep,
)
from repro.results import (
    RunRecord,
    RunStore,
    aggregate,
    compare_to_bounds,
    register_bound,
    render_report,
)
from repro.analysis import (
    ExperimentRecord,
    ExperimentRunner,
    PotentialTracker,
    aggregate_records,
    fit_power_law,
    flooding_amortized_upper_bound,
    format_table,
    local_broadcast_lower_bound,
    multi_source_competitive_bound,
    oblivious_amortized_bound,
    render_table1,
    single_source_competitive_bound,
    table1_rows,
)
from repro.api import (
    Aggregate,
    Comparison,
    Experiment,
    ExperimentError,
    ExperimentPlan,
    RunSet,
    load_runs,
)
from repro.utils.validation import (
    ConfigurationError,
    ReproError,
    SimulationError,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # errors
    "ReproError",
    "ConfigurationError",
    "SimulationError",
    # fluent experiment API
    "Experiment",
    "ExperimentError",
    "ExperimentPlan",
    "RunSet",
    "Aggregate",
    "Comparison",
    "load_runs",
    # core
    "CommunicationModel",
    "DisseminationProblem",
    "EventLog",
    "ExecutionResult",
    "MessageAccountant",
    "MessageStatistics",
    "RoundObservation",
    "Simulator",
    "run_execution",
    "Token",
    "TokenLearning",
    "make_tokens",
    "single_source_problem",
    "multi_source_problem",
    "uniform_multi_source_problem",
    "n_gossip_problem",
    "random_assignment_problem",
    # dynamics
    "DynamicGraphTrace",
    "GraphSchedule",
    "churn_schedule",
    "edge_markovian_schedule",
    "geometric_mobility_schedule",
    "path_shuffle_schedule",
    "rewiring_regular_schedule",
    "star_oscillator_schedule",
    "static_complete_schedule",
    "static_path_schedule",
    "static_star_schedule",
    "static_cycle_schedule",
    "is_sigma_edge_stable",
    "minimum_edge_stability",
    "stabilize_schedule",
    "schedule_summary",
    "schedule_to_json",
    "schedule_from_json",
    "trace_to_schedule_json",
    "save_schedule",
    "load_schedule",
    # adversaries
    "Adversary",
    "AdaptiveRewiringAdversary",
    "ControlledChurnAdversary",
    "LowerBoundAdversary",
    "RandomChurnObliviousAdversary",
    "RequestCuttingAdversary",
    "ScheduleAdversary",
    "StarRecenterAdversary",
    "StaticAdversary",
    # algorithms
    "FloodingAlgorithm",
    "OneShotFloodingAlgorithm",
    "NaiveUnicastAlgorithm",
    "SpanningTreeAlgorithm",
    "SingleSourceUnicastAlgorithm",
    "MultiSourceUnicastAlgorithm",
    "ObliviousMultiSourceAlgorithm",
    "RandomWalkDisseminator",
    # scenarios
    "ADVERSARY_REGISTRY",
    "ALGORITHM_REGISTRY",
    "PROBLEM_REGISTRY",
    "ScenarioRunner",
    "ScenarioSpec",
    "materialize",
    "register_adversary",
    "register_algorithm",
    "register_problem",
    "run_scenario",
    "run_spec",
    "sweep",
    # results
    "RunRecord",
    "RunStore",
    "aggregate",
    "compare_to_bounds",
    "register_bound",
    "render_report",
    # analysis
    "ExperimentRecord",
    "ExperimentRunner",
    "PotentialTracker",
    "aggregate_records",
    "fit_power_law",
    "flooding_amortized_upper_bound",
    "format_table",
    "local_broadcast_lower_bound",
    "multi_source_competitive_bound",
    "oblivious_amortized_bound",
    "render_table1",
    "single_source_competitive_bound",
    "table1_rows",
]
