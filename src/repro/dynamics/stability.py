"""σ-edge stability (Section 1.3).

A dynamic graph is *σ-edge stable* if every edge, once it appears, remains in
the graph for at least σ consecutive rounds.  Every dynamic graph is 1-edge
stable.  The Single-Source and Multi-Source unicast algorithms terminate in
``O(nk)`` rounds on 3-edge-stable graphs (Theorems 3.4 and 3.6).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Sequence, Set, Union

from repro.dynamics.graph_sequence import DynamicGraphTrace, GraphSchedule
from repro.utils.ids import Edge
from repro.utils.validation import ConfigurationError, require_positive_int

RoundGraphSource = Union[DynamicGraphTrace, GraphSchedule, Sequence[Set[Edge]]]


def _edge_sets(source: RoundGraphSource) -> List[FrozenSet[Edge]]:
    if isinstance(source, DynamicGraphTrace):
        return [source.edges_in_round(r) for r in range(1, source.num_rounds + 1)]
    if isinstance(source, GraphSchedule):
        return [edges for _, edges in source.iter_rounds()]
    return [frozenset(edges) for edges in source]


def _presence_runs(edge_sets: Sequence[FrozenSet[Edge]]) -> Dict[Edge, List[int]]:
    """For every edge, the lengths of its maximal runs of consecutive presence.

    The final run is excluded when it reaches the end of the recorded
    sequence, because the edge may persist beyond the observation window
    (the stability requirement is about edges that actually disappear).
    """
    runs: Dict[Edge, List[int]] = {}
    active: Dict[Edge, int] = {}
    for edges in edge_sets:
        for edge in list(active):
            if edge not in edges:
                runs.setdefault(edge, []).append(active.pop(edge))
        for edge in edges:
            active[edge] = active.get(edge, 0) + 1
    return runs


#: Stability value reported when no edge ever disappears (vacuously stable
#: for every σ; schedules repeat their last round graph forever).
UNBOUNDED_STABILITY = 2**31


def minimum_edge_stability(source: RoundGraphSource) -> int:
    """The largest σ for which the recorded sequence is σ-edge stable.

    Returns the length of the shortest *completed* presence run over all
    edges.  If no edge ever disappears the sequence is vacuously stable for
    every σ and :data:`UNBOUNDED_STABILITY` is returned.  An empty sequence
    reports 1 (every dynamic graph is 1-edge stable).
    """
    edge_sets = _edge_sets(source)
    if not edge_sets:
        return 1
    runs = _presence_runs(edge_sets)
    completed = [length for lengths in runs.values() for length in lengths]
    if not completed:
        return UNBOUNDED_STABILITY
    return min(completed)


def is_sigma_edge_stable(source: RoundGraphSource, sigma: int) -> bool:
    """True iff every edge that appears stays for at least ``sigma`` consecutive rounds."""
    require_positive_int(sigma, "sigma")
    return minimum_edge_stability(source) >= sigma


def stabilize_schedule(schedule: GraphSchedule, sigma: int) -> GraphSchedule:
    """Return a σ-edge-stable variant of ``schedule``.

    Whenever an edge is inserted in round ``r`` it is forced to remain present
    through round ``r + σ - 1``.  Only edges are *added* relative to the input
    schedule, so connectivity of every round graph is preserved.
    """
    require_positive_int(sigma, "sigma")
    if sigma == 1:
        return schedule
    edge_sets = [set(edges) for _, edges in schedule.iter_rounds()]
    num_rounds = len(edge_sets)
    previous: Set[Edge] = set()
    for index in range(num_rounds):
        inserted = edge_sets[index] - previous
        for offset in range(1, sigma):
            if index + offset < num_rounds:
                edge_sets[index + offset] |= inserted
        previous = set(edge_sets[index])
    stabilized = GraphSchedule(schedule.nodes, edge_sets)
    if not is_sigma_edge_stable(stabilized, sigma):
        raise ConfigurationError(
            "internal error: stabilize_schedule failed to reach the requested stability"
        )
    return stabilized
