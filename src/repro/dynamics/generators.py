"""Dynamic-graph workload generators.

Each generator returns a :class:`~repro.dynamics.graph_sequence.GraphSchedule`
— a pre-committed sequence of connected round graphs.  Schedules are the
natural input for oblivious adversaries (Section 1.3: the oblivious adversary
commits to the topology sequence before the execution starts) and for
record/replay experiments.

All generators guarantee that every round graph is connected.
"""

from __future__ import annotations

import itertools
import math
import random
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.dynamics.connectivity import ensure_connected
from repro.dynamics.graph_sequence import GraphSchedule
from repro.utils.ids import Edge, NodeId, normalize_edge
from repro.utils.rng import SeedLike, ensure_rng
from repro.utils.validation import (
    ConfigurationError,
    require_non_negative_int,
    require_positive_int,
    require_probability,
)


def _node_range(num_nodes: int) -> List[NodeId]:
    require_positive_int(num_nodes, "num_nodes")
    return list(range(num_nodes))


def _all_pairs(nodes: Sequence[NodeId]) -> List[Edge]:
    return [normalize_edge(u, v) for u, v in itertools.combinations(nodes, 2)]


def random_connected_edges(
    nodes: Sequence[NodeId],
    edge_probability: float,
    rng: Optional[random.Random] = None,
) -> Set[Edge]:
    """A G(n, p) sample over ``nodes``, repaired to be connected."""
    rng = ensure_rng(rng)
    require_probability(edge_probability, "edge_probability")
    edges: Set[Edge] = set()
    node_list = sorted(nodes)
    for index, u in enumerate(node_list):
        for v in node_list[index + 1 :]:
            if rng.random() < edge_probability:
                edges.add(normalize_edge(u, v))
    return ensure_connected(node_list, edges, rng)


def static_schedule(
    num_nodes: int,
    edges: Iterable[Edge],
    num_rounds: int = 1,
) -> GraphSchedule:
    """A static (unchanging) schedule with the given edge set."""
    nodes = _node_range(num_nodes)
    require_positive_int(num_rounds, "num_rounds")
    edge_set = {normalize_edge(u, v) for (u, v) in edges}
    repaired = ensure_connected(nodes, edge_set, ensure_rng(0))
    if repaired != edge_set:
        raise ConfigurationError("static_schedule requires a connected edge set")
    return GraphSchedule(nodes, [edge_set] * num_rounds)


def static_complete_schedule(num_nodes: int, num_rounds: int = 1) -> GraphSchedule:
    """Static complete graph ``K_n``."""
    nodes = _node_range(num_nodes)
    return static_schedule(num_nodes, _all_pairs(nodes), num_rounds)


def static_path_schedule(num_nodes: int, num_rounds: int = 1) -> GraphSchedule:
    """Static path ``0 - 1 - ... - (n-1)`` (diameter ``n - 1``)."""
    nodes = _node_range(num_nodes)
    edges = [normalize_edge(u, u + 1) for u in nodes[:-1]]
    if num_nodes == 1:
        edges = []
    return GraphSchedule(nodes, [set(edges)] * require_positive_int(num_rounds, "num_rounds"))


def static_star_schedule(num_nodes: int, center: NodeId = 0, num_rounds: int = 1) -> GraphSchedule:
    """Static star with the given center."""
    nodes = _node_range(num_nodes)
    if center not in nodes:
        raise ConfigurationError(f"center {center} is not a node in 0..{num_nodes - 1}")
    edges = [normalize_edge(center, v) for v in nodes if v != center]
    return GraphSchedule(nodes, [set(edges)] * require_positive_int(num_rounds, "num_rounds"))


def static_cycle_schedule(num_nodes: int, num_rounds: int = 1) -> GraphSchedule:
    """Static cycle over the node range (requires at least 3 nodes)."""
    nodes = _node_range(num_nodes)
    if num_nodes < 3:
        raise ConfigurationError("a cycle needs at least 3 nodes")
    edges = [normalize_edge(u, (u + 1) % num_nodes) for u in nodes]
    return GraphSchedule(nodes, [set(edges)] * require_positive_int(num_rounds, "num_rounds"))


def static_random_schedule(
    num_nodes: int,
    edge_probability: float = 0.2,
    num_rounds: int = 1,
    seed: SeedLike = None,
) -> GraphSchedule:
    """A single connected G(n, p) sample repeated for every round."""
    rng = ensure_rng(seed)
    nodes = _node_range(num_nodes)
    edges = random_connected_edges(nodes, edge_probability, rng)
    return GraphSchedule(nodes, [edges] * require_positive_int(num_rounds, "num_rounds"))


def churn_schedule(
    num_nodes: int,
    num_rounds: int,
    edge_probability: float = 0.1,
    churn_fraction: float = 0.3,
    seed: SeedLike = None,
) -> GraphSchedule:
    """Per-round partial rewiring: a fraction of edges is replaced every round.

    Starting from a connected G(n, p) sample, each round removes a
    ``churn_fraction`` of the current edges and inserts the same expected
    number of fresh random edges, then repairs connectivity.  This models
    steady background churn (peer-to-peer membership turnover).
    """
    rng = ensure_rng(seed)
    nodes = _node_range(num_nodes)
    require_positive_int(num_rounds, "num_rounds")
    require_probability(churn_fraction, "churn_fraction")
    current = random_connected_edges(nodes, edge_probability, rng)
    rounds: List[Set[Edge]] = [set(current)]
    all_pairs = _all_pairs(nodes)
    for _ in range(num_rounds - 1):
        edges = set(current)
        removable = sorted(edges)
        num_to_remove = int(round(churn_fraction * len(removable)))
        for edge in rng.sample(removable, min(num_to_remove, len(removable))):
            edges.discard(edge)
        num_to_add = num_to_remove
        candidates = [pair for pair in all_pairs if pair not in edges]
        for edge in rng.sample(candidates, min(num_to_add, len(candidates))):
            edges.add(edge)
        current = ensure_connected(nodes, edges, rng)
        rounds.append(set(current))
    return GraphSchedule(nodes, rounds)


def edge_markovian_schedule(
    num_nodes: int,
    num_rounds: int,
    birth_probability: float = 0.02,
    death_probability: float = 0.2,
    seed: SeedLike = None,
) -> GraphSchedule:
    """Edge-Markovian evolving graph (Clementi et al.): each potential edge
    appears with probability ``birth_probability`` if absent and disappears
    with probability ``death_probability`` if present, independently per round.
    Connectivity is repaired after each transition.
    """
    rng = ensure_rng(seed)
    nodes = _node_range(num_nodes)
    require_positive_int(num_rounds, "num_rounds")
    require_probability(birth_probability, "birth_probability")
    require_probability(death_probability, "death_probability")
    all_pairs = _all_pairs(nodes)
    current: Set[Edge] = set()
    rounds: List[Set[Edge]] = []
    for _ in range(num_rounds):
        next_edges: Set[Edge] = set()
        for pair in all_pairs:
            if pair in current:
                if rng.random() >= death_probability:
                    next_edges.add(pair)
            else:
                if rng.random() < birth_probability:
                    next_edges.add(pair)
        current = ensure_connected(nodes, next_edges, rng)
        rounds.append(set(current))
    return GraphSchedule(nodes, rounds)


def rewiring_regular_schedule(
    num_nodes: int,
    num_rounds: int,
    degree: int = 4,
    rewire_probability: float = 0.5,
    seed: SeedLike = None,
) -> GraphSchedule:
    """Approximately ``degree``-regular graphs whose edges are partially
    rewired every round.

    The round graph is built as a ring plus random chords (a small-world-like
    expander), with a ``rewire_probability`` fraction of the chords resampled
    each round.  This is the kind of well-mixing dynamic topology assumed by
    the random-walk machinery of Section 3.2.2.
    """
    rng = ensure_rng(seed)
    nodes = _node_range(num_nodes)
    require_positive_int(num_rounds, "num_rounds")
    require_probability(rewire_probability, "rewire_probability")
    if degree < 2:
        raise ConfigurationError("degree must be at least 2")
    if num_nodes < 3:
        return GraphSchedule(nodes, [set(_all_pairs(nodes))] * num_rounds)

    ring = {normalize_edge(u, (u + 1) % num_nodes) for u in nodes}
    num_chords = max(0, (degree - 2) * num_nodes // 2)
    all_pairs = [pair for pair in _all_pairs(nodes) if pair not in ring]

    def sample_chords(count: int) -> Set[Edge]:
        return set(rng.sample(all_pairs, min(count, len(all_pairs))))

    chords = sample_chords(num_chords)
    rounds: List[Set[Edge]] = []
    for _ in range(num_rounds):
        edges = ensure_connected(nodes, ring | chords, rng)
        rounds.append(set(edges))
        num_rewired = int(round(rewire_probability * len(chords)))
        if num_rewired and chords:
            kept = set(rng.sample(sorted(chords), len(chords) - num_rewired))
            chords = kept | sample_chords(num_rewired)
    return GraphSchedule(nodes, rounds)


def star_oscillator_schedule(
    num_nodes: int,
    num_rounds: int,
    period: int = 1,
    seed: SeedLike = None,
) -> GraphSchedule:
    """A star whose center moves every ``period`` rounds.

    This is a classic high-churn topology: every center change inserts and
    deletes ``Θ(n)`` edges, so ``TC`` grows linearly with the number of
    center moves.  It stresses the adversary-competitive accounting.
    """
    rng = ensure_rng(seed)
    nodes = _node_range(num_nodes)
    require_positive_int(num_rounds, "num_rounds")
    require_positive_int(period, "period")
    rounds: List[Set[Edge]] = []
    center = rng.choice(nodes)
    for round_index in range(num_rounds):
        if round_index > 0 and round_index % period == 0 and num_nodes > 1:
            candidates = [node for node in nodes if node != center]
            center = rng.choice(candidates)
        edges = {normalize_edge(center, v) for v in nodes if v != center}
        rounds.append(edges)
    return GraphSchedule(nodes, rounds)


def path_shuffle_schedule(
    num_nodes: int,
    num_rounds: int,
    period: int = 1,
    seed: SeedLike = None,
) -> GraphSchedule:
    """A Hamiltonian path whose node order is reshuffled every ``period`` rounds.

    Each reshuffle changes ``Θ(n)`` edges while keeping the graph as sparse as
    possible (exactly ``n - 1`` edges), which is the worst case for
    dissemination progress per round.
    """
    rng = ensure_rng(seed)
    nodes = _node_range(num_nodes)
    require_positive_int(num_rounds, "num_rounds")
    require_positive_int(period, "period")
    order = list(nodes)
    rounds: List[Set[Edge]] = []
    for round_index in range(num_rounds):
        if round_index > 0 and round_index % period == 0:
            rng.shuffle(order)
        edges = {normalize_edge(u, v) for u, v in zip(order, order[1:])}
        rounds.append(edges)
    return GraphSchedule(nodes, rounds)


def geometric_mobility_schedule(
    num_nodes: int,
    num_rounds: int,
    radius: float = 0.35,
    speed: float = 0.05,
    seed: SeedLike = None,
) -> GraphSchedule:
    """Random-waypoint-style mobility on the unit square.

    Nodes perform bounded random motion; two nodes are connected whenever
    their Euclidean distance is below ``radius``.  Connectivity is repaired by
    bridging components (modelling a long-range backbone link).  This mimics
    ad-hoc wireless / sensor network dynamics from the paper's motivation.
    """
    rng = ensure_rng(seed)
    nodes = _node_range(num_nodes)
    require_positive_int(num_rounds, "num_rounds")
    if radius <= 0 or speed < 0:
        raise ConfigurationError("radius must be positive and speed non-negative")
    positions: Dict[NodeId, Tuple[float, float]] = {
        node: (rng.random(), rng.random()) for node in nodes
    }
    rounds: List[Set[Edge]] = []
    for _ in range(num_rounds):
        edges: Set[Edge] = set()
        node_list = sorted(nodes)
        for index, u in enumerate(node_list):
            ux, uy = positions[u]
            for v in node_list[index + 1 :]:
                vx, vy = positions[v]
                if math.hypot(ux - vx, uy - vy) <= radius:
                    edges.add(normalize_edge(u, v))
        rounds.append(set(ensure_connected(nodes, edges, rng)))
        for node in nodes:
            x, y = positions[node]
            x = min(1.0, max(0.0, x + rng.uniform(-speed, speed)))
            y = min(1.0, max(0.0, y + rng.uniform(-speed, speed)))
            positions[node] = (x, y)
    return GraphSchedule(nodes, rounds)
