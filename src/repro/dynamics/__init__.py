"""Dynamic-graph substrate.

The paper models the network as a synchronous dynamic graph ``G`` with a fixed
node set ``V`` and a per-round edge set ``E_r`` (Section 1.3).  This package
provides:

* :class:`~repro.dynamics.graph_sequence.DynamicGraphTrace` — the recorded
  sequence of round graphs of an execution, with inserted/removed edge sets
  ``E+_r`` / ``E-_r`` and the topological-change count ``TC(E)``;
* :class:`~repro.dynamics.graph_sequence.GraphSchedule` — a pre-committed
  (oblivious) sequence of round graphs;
* generators for a variety of dynamic-graph workloads;
* σ-edge-stability checking and enforcement;
* connectivity helpers and structural statistics.
"""

from repro.dynamics.graph_sequence import DynamicGraphTrace, GraphSchedule
from repro.dynamics.connectivity import (
    connected_components,
    is_connected,
    ensure_connected,
    spanning_forest,
)
from repro.dynamics.generators import (
    static_schedule,
    static_complete_schedule,
    static_path_schedule,
    static_star_schedule,
    static_cycle_schedule,
    random_connected_edges,
    churn_schedule,
    edge_markovian_schedule,
    rewiring_regular_schedule,
    star_oscillator_schedule,
    path_shuffle_schedule,
    geometric_mobility_schedule,
)
from repro.dynamics.stability import (
    is_sigma_edge_stable,
    minimum_edge_stability,
    stabilize_schedule,
)
from repro.dynamics.properties import (
    degree_statistics,
    churn_statistics,
    schedule_summary,
)
from repro.dynamics.serialization import (
    schedule_to_json,
    schedule_from_json,
    trace_to_schedule_json,
    save_schedule,
    load_schedule,
)

__all__ = [
    "DynamicGraphTrace",
    "GraphSchedule",
    "connected_components",
    "is_connected",
    "ensure_connected",
    "spanning_forest",
    "static_schedule",
    "static_complete_schedule",
    "static_path_schedule",
    "static_star_schedule",
    "static_cycle_schedule",
    "random_connected_edges",
    "churn_schedule",
    "edge_markovian_schedule",
    "rewiring_regular_schedule",
    "star_oscillator_schedule",
    "path_shuffle_schedule",
    "geometric_mobility_schedule",
    "is_sigma_edge_stable",
    "minimum_edge_stability",
    "stabilize_schedule",
    "degree_statistics",
    "churn_statistics",
    "schedule_summary",
    "schedule_to_json",
    "schedule_from_json",
    "trace_to_schedule_json",
    "save_schedule",
    "load_schedule",
]
