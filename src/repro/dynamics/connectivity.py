"""Connectivity helpers used by generators, adversaries and the engine.

The dynamic-network model requires every round graph to be connected
(Section 1.3).  These helpers check connectivity, repair disconnected edge
sets by adding a minimal number of connecting edges, and extract spanning
forests (used by the lower-bound adversary to keep round graphs sparse).
"""

from __future__ import annotations

import random
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from repro.utils.ids import Edge, NodeId, normalize_edge
from repro.utils.rng import ensure_rng


class _UnionFind:
    """Minimal union-find structure over an explicit node universe."""

    def __init__(self, nodes: Iterable[NodeId]):
        self._parent: Dict[NodeId, NodeId] = {node: node for node in nodes}
        self._rank: Dict[NodeId, int] = {node: 0 for node in self._parent}

    def find(self, node: NodeId) -> NodeId:
        root = node
        while self._parent[root] != root:
            root = self._parent[root]
        while self._parent[node] != root:
            self._parent[node], node = root, self._parent[node]
        return root

    def union(self, u: NodeId, v: NodeId) -> bool:
        root_u, root_v = self.find(u), self.find(v)
        if root_u == root_v:
            return False
        if self._rank[root_u] < self._rank[root_v]:
            root_u, root_v = root_v, root_u
        self._parent[root_v] = root_u
        if self._rank[root_u] == self._rank[root_v]:
            self._rank[root_u] += 1
        return True


def connected_components(nodes: Iterable[NodeId], edges: Iterable[Edge]) -> List[Set[NodeId]]:
    """Return the connected components of ``(nodes, edges)`` as a list of node sets."""
    node_list = list(nodes)
    uf = _UnionFind(node_list)
    for u, v in edges:
        uf.union(u, v)
    groups: Dict[NodeId, Set[NodeId]] = {}
    for node in node_list:
        groups.setdefault(uf.find(node), set()).add(node)
    return list(groups.values())


def is_connected(nodes: Iterable[NodeId], edges: Iterable[Edge]) -> bool:
    """True iff the graph ``(nodes, edges)`` is connected (single node counts as connected)."""
    return len(connected_components(nodes, edges)) <= 1


def ensure_connected(
    nodes: Sequence[NodeId],
    edges: Iterable[Edge],
    rng: Optional[random.Random] = None,
) -> Set[Edge]:
    """Return a superset of ``edges`` that is connected over ``nodes``.

    One edge is added between a random representative of each pair of
    consecutive components, so exactly ``(#components - 1)`` edges are added.
    """
    rng = ensure_rng(rng)
    edge_set: Set[Edge] = {normalize_edge(u, v) for (u, v) in edges}
    components = connected_components(nodes, edge_set)
    if len(components) <= 1:
        return edge_set
    representatives = [rng.choice(sorted(component)) for component in components]
    rng.shuffle(representatives)
    for left, right in zip(representatives, representatives[1:]):
        edge_set.add(normalize_edge(left, right))
    return edge_set


def spanning_forest(nodes: Iterable[NodeId], edges: Iterable[Edge]) -> Set[Edge]:
    """Return a spanning forest (one spanning tree per component) of the graph."""
    uf = _UnionFind(list(nodes))
    forest: Set[Edge] = set()
    for u, v in sorted(normalize_edge(a, b) for (a, b) in edges):
        if uf.union(u, v):
            forest.add((u, v))
    return forest


def connecting_edges_between_components(
    components: Sequence[Set[NodeId]],
    rng: Optional[random.Random] = None,
) -> Set[Edge]:
    """Return ``len(components) - 1`` edges that chain the given components together."""
    rng = ensure_rng(rng)
    if len(components) <= 1:
        return set()
    representatives = [rng.choice(sorted(component)) for component in components]
    return {
        normalize_edge(left, right)
        for left, right in zip(representatives, representatives[1:])
    }


def bfs_tree(
    nodes: Iterable[NodeId], edges: Iterable[Edge], root: NodeId
) -> Tuple[Dict[NodeId, NodeId], Dict[NodeId, int]]:
    """Breadth-first tree from ``root``: (parent map, depth map).

    The root maps to itself.  Nodes unreachable from ``root`` are absent.
    """
    adjacency: Dict[NodeId, Set[NodeId]] = {node: set() for node in nodes}
    for u, v in edges:
        adjacency[u].add(v)
        adjacency[v].add(u)
    parent: Dict[NodeId, NodeId] = {root: root}
    depth: Dict[NodeId, int] = {root: 0}
    frontier: List[NodeId] = [root]
    while frontier:
        next_frontier: List[NodeId] = []
        for node in frontier:
            for neighbor in sorted(adjacency[node]):
                if neighbor not in parent:
                    parent[neighbor] = node
                    depth[neighbor] = depth[node] + 1
                    next_frontier.append(neighbor)
        frontier = next_frontier
    return parent, depth
