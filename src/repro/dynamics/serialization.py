"""Record / replay support: JSON serialization of schedules and traces.

Dynamic-graph workloads are often expensive to generate (or come from real
connectivity traces); these helpers persist them as plain JSON so experiments
can be replayed bit-for-bit:

* :func:`schedule_to_json` / :func:`schedule_from_json` — round-trip a
  :class:`~repro.dynamics.graph_sequence.GraphSchedule`;
* :func:`trace_to_schedule_json` — freeze the recorded trace of a finished
  execution so the exact same adversarial behaviour can be replayed as an
  oblivious schedule;
* :func:`save_schedule` / :func:`load_schedule` — file convenience wrappers.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

from repro.dynamics.graph_sequence import DynamicGraphTrace, GraphSchedule
from repro.utils.validation import ConfigurationError

FORMAT_VERSION = 1


def schedule_to_json(schedule: GraphSchedule) -> str:
    """Serialize a schedule to a JSON string."""
    payload = {
        "format": "repro.graph_schedule",
        "version": FORMAT_VERSION,
        "nodes": list(schedule.nodes),
        "rounds": [sorted(list(edge) for edge in edges) for _, edges in schedule.iter_rounds()],
    }
    return json.dumps(payload)


def schedule_from_json(data: str) -> GraphSchedule:
    """Deserialize a schedule from a JSON string produced by :func:`schedule_to_json`."""
    try:
        payload = json.loads(data)
    except json.JSONDecodeError as error:
        raise ConfigurationError(f"invalid schedule JSON: {error}") from error
    if not isinstance(payload, dict) or payload.get("format") != "repro.graph_schedule":
        raise ConfigurationError("not a repro.graph_schedule document")
    if payload.get("version") != FORMAT_VERSION:
        raise ConfigurationError(
            f"unsupported schedule format version: {payload.get('version')!r}"
        )
    nodes = payload.get("nodes")
    rounds = payload.get("rounds")
    if not isinstance(nodes, list) or not isinstance(rounds, list):
        raise ConfigurationError("schedule document must contain 'nodes' and 'rounds' lists")
    edge_sets = [{(int(u), int(v)) for u, v in round_edges} for round_edges in rounds]
    return GraphSchedule(nodes, edge_sets)


def trace_to_schedule_json(trace: DynamicGraphTrace) -> str:
    """Freeze a recorded execution trace into replayable schedule JSON."""
    if trace.num_rounds == 0:
        raise ConfigurationError("cannot serialize an empty trace")
    return schedule_to_json(trace.as_schedule())


def save_schedule(schedule: GraphSchedule, path: Union[str, Path]) -> Path:
    """Write a schedule to ``path`` as JSON and return the path."""
    target = Path(path)
    target.write_text(schedule_to_json(schedule), encoding="utf-8")
    return target


def load_schedule(path: Union[str, Path]) -> GraphSchedule:
    """Load a schedule previously written by :func:`save_schedule`."""
    source = Path(path)
    if not source.exists():
        raise ConfigurationError(f"schedule file does not exist: {source}")
    return schedule_from_json(source.read_text(encoding="utf-8"))
