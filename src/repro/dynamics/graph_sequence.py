"""Round-graph sequences: recorded traces and pre-committed schedules.

The paper defines (Section 1.3):

* ``G_r = (V, E_r)`` — the graph of round ``r`` (rounds are 1-indexed and
  ``E_0 = ∅``);
* ``E+_r = E_r \\ E_{r-1}`` — edges inserted in round ``r``;
* ``E-_r = E_{r-1} \\ E_r`` — edges removed in round ``r``;
* ``TC(E) = Σ_r |E+_r|`` — the number of topological changes of an execution.

:class:`DynamicGraphTrace` records these quantities as an execution unfolds
(the adversary may be adaptive, so the trace is only known a posteriori),
while :class:`GraphSchedule` is a pre-committed sequence of round graphs used
by oblivious adversaries and by workload generators.
"""

from __future__ import annotations

from itertools import repeat
from typing import (
    Callable,
    Dict,
    FrozenSet,
    Iterable,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

import networkx as nx

from repro.utils.ids import Edge, NodeId, normalize_edge, validate_edges, validate_nodes
from repro.utils.validation import ConfigurationError, SimulationError


class DynamicGraphTrace:
    """The recorded sequence of round graphs of a single execution.

    Rounds are 1-indexed, matching the paper.  Round 0 is the empty graph.

    With ``keep_history=False`` the trace maintains only the current round
    graph and the running totals (``TC(E)``, removals): long executions then
    use O(current edges) memory instead of O(rounds x edges), at the price
    that only the *latest* round can be queried — accessing an earlier round,
    :meth:`edge_lifetime` or :meth:`as_schedule` raises ``SimulationError``.
    """

    def __init__(self, nodes: Iterable[NodeId], *, keep_history: bool = True):
        self._nodes: List[NodeId] = validate_nodes(nodes)
        self._node_set: FrozenSet[NodeId] = frozenset(self._nodes)
        self._keep_history = keep_history
        self._edge_sets: List[FrozenSet[Edge]] = []
        self._insertions: List[FrozenSet[Edge]] = []
        self._removals: List[FrozenSet[Edge]] = []
        self._num_rounds = 0
        self._current_edges: FrozenSet[Edge] = frozenset()
        self._current_insertions: FrozenSet[Edge] = frozenset()
        self._current_removals: FrozenSet[Edge] = frozenset()
        self._total_insertions = 0
        self._total_removals = 0

    @property
    def nodes(self) -> List[NodeId]:
        """The fixed node set ``V`` (sorted)."""
        return list(self._nodes)

    @property
    def num_nodes(self) -> int:
        """``n = |V|``."""
        return len(self._nodes)

    @property
    def num_rounds(self) -> int:
        """Number of rounds recorded so far."""
        return self._num_rounds

    @property
    def keeps_history(self) -> bool:
        """Whether per-round edge sets are retained (see ``keep_history``)."""
        return self._keep_history

    def record_round(self, edges: Iterable[Edge]) -> FrozenSet[Edge]:
        """Record the edge set of the next round and return it normalized."""
        edge_set = validate_edges(self._node_set, edges)
        previous = self._current_edges
        inserted = frozenset(edge_set - previous)
        removed = frozenset(previous - edge_set)
        self._num_rounds += 1
        self._current_edges = edge_set
        self._current_insertions = inserted
        self._current_removals = removed
        self._total_insertions += len(inserted)
        self._total_removals += len(removed)
        if self._keep_history:
            self._edge_sets.append(edge_set)
            self._insertions.append(inserted)
            self._removals.append(removed)
        return edge_set

    def _check_round(self, round_index: int) -> int:
        if round_index < 1 or round_index > self._num_rounds:
            raise SimulationError(
                f"round {round_index} has not been recorded "
                f"(recorded rounds: 1..{self._num_rounds})"
            )
        if not self._keep_history and round_index != self._num_rounds:
            raise SimulationError(
                f"round {round_index} was dropped (keep_history=False retains "
                f"only the current round {self._num_rounds})"
            )
        return round_index

    def _require_history(self, what: str) -> None:
        if not self._keep_history:
            raise SimulationError(
                f"{what} needs the full round history, "
                "but this trace was recorded with keep_history=False"
            )

    def edges_in_round(self, round_index: int) -> FrozenSet[Edge]:
        """``E_r`` for a recorded round ``r`` (``E_0`` is the empty set)."""
        if round_index == 0:
            return frozenset()
        self._check_round(round_index)
        if not self._keep_history:
            return self._current_edges
        return self._edge_sets[round_index - 1]

    def inserted_edges(self, round_index: int) -> FrozenSet[Edge]:
        """``E+_r = E_r \\ E_{r-1}``."""
        if round_index == 0:
            return frozenset()
        self._check_round(round_index)
        if not self._keep_history:
            return self._current_insertions
        return self._insertions[round_index - 1]

    def removed_edges(self, round_index: int) -> FrozenSet[Edge]:
        """``E-_r = E_{r-1} \\ E_r``."""
        if round_index == 0:
            return frozenset()
        self._check_round(round_index)
        if not self._keep_history:
            return self._current_removals
        return self._removals[round_index - 1]

    def topological_changes(self, up_to_round: Optional[int] = None) -> int:
        """``TC(E) = Σ_r |E+_r|`` over the recorded execution (or a prefix)."""
        if up_to_round is None:
            return self._total_insertions
        if up_to_round < 0:
            raise ConfigurationError("up_to_round must be non-negative")
        up_to_round = min(up_to_round, self.num_rounds)
        if up_to_round == self.num_rounds:
            return self._total_insertions
        if up_to_round == 0:
            return 0
        self._require_history("a topological-changes prefix")
        return sum(len(self._insertions[r]) for r in range(up_to_round))

    def total_edge_removals(self, up_to_round: Optional[int] = None) -> int:
        """Total number of edge deletions (always ≤ ``TC(E)`` since ``E_0 = ∅``)."""
        if up_to_round is None:
            return self._total_removals
        up_to_round = min(max(up_to_round, 0), self.num_rounds)
        if up_to_round == self.num_rounds:
            return self._total_removals
        if up_to_round == 0:
            return 0
        self._require_history("an edge-removals prefix")
        return sum(len(self._removals[r]) for r in range(up_to_round))

    def graph(self, round_index: int) -> nx.Graph:
        """Return ``G_r`` as a :class:`networkx.Graph` (including isolated nodes)."""
        graph = nx.Graph()
        graph.add_nodes_from(self._nodes)
        graph.add_edges_from(self.edges_in_round(round_index))
        return graph

    def neighbors(self, round_index: int) -> Dict[NodeId, FrozenSet[NodeId]]:
        """Adjacency map of round ``round_index``."""
        adjacency: Dict[NodeId, Set[NodeId]] = {node: set() for node in self._nodes}
        for u, v in self.edges_in_round(round_index):
            adjacency[u].add(v)
            adjacency[v].add(u)
        return {node: frozenset(neigh) for node, neigh in adjacency.items()}

    def edge_lifetime(self, edge: Edge) -> int:
        """Total number of rounds in which ``edge`` was present."""
        self._require_history("edge_lifetime")
        canonical = normalize_edge(*edge)
        return sum(1 for edge_set in self._edge_sets if canonical in edge_set)

    def as_schedule(self) -> "GraphSchedule":
        """Freeze the recorded trace into a replayable :class:`GraphSchedule`."""
        self._require_history("as_schedule")
        return GraphSchedule(self._nodes, list(self._edge_sets))

    def __len__(self) -> int:
        return self.num_rounds

    def __repr__(self) -> str:
        return (
            f"DynamicGraphTrace(n={self.num_nodes}, rounds={self.num_rounds}, "
            f"TC={self._total_insertions})"
        )


class EdgeIdTrace(DynamicGraphTrace):
    """A dynamic-graph trace recorded as integer edge ids.

    The round kernel normalizes each round's edges to ``a * n + b`` ids once
    (``a < b`` node *indices*); storing those — instead of frozensets of node
    tuples — keeps the per-round recording cost at a handful of int
    operations.  Edge tuples are materialized lazily, and cached, only when
    a consumer actually asks for a round graph, so results carrying this
    trace satisfy the full :class:`DynamicGraphTrace` query API.
    """

    def __init__(
        self,
        nodes: Iterable[NodeId],
        id_to_edge: Callable[[int], Edge],
        *,
        keep_history: bool = True,
    ):
        super().__init__(nodes, keep_history=keep_history)
        self._id_to_edge = id_to_edge
        self._id_rounds: List[FrozenSet[int]] = []
        self._materialized: Dict[int, FrozenSet[Edge]] = {}
        self._current_ids: FrozenSet[int] = frozenset()
        self._current_inserted_ids: FrozenSet[int] = frozenset()
        self._current_removed_ids: FrozenSet[int] = frozenset()

    # -- recording (called by the round kernel) ----------------------------

    def record_ids(
        self, ids: FrozenSet[int], inserted: FrozenSet[int], removed: FrozenSet[int]
    ) -> None:
        """Record the next round's edge ids plus the precomputed delta."""
        self._num_rounds += 1
        self._total_insertions += len(inserted)
        self._total_removals += len(removed)
        self._current_ids = ids
        self._current_inserted_ids = inserted
        self._current_removed_ids = removed
        if self._keep_history:
            self._id_rounds.append(ids)

    def record_unchanged(self) -> None:
        """Record a round whose edge set equals the previous round's.

        Equivalent to ``record_ids(current, frozenset(), frozenset())`` with
        the current edge set, without touching it.
        """
        self._num_rounds += 1
        self._current_inserted_ids = frozenset()
        self._current_removed_ids = frozenset()
        if self._keep_history:
            self._id_rounds.append(self._current_ids)

    def record_unchanged_many(self, count: int) -> None:
        """Record ``count`` consecutive rounds with the current edge set.

        The batch kernel's catch-up path for adversaries past their steady
        round: indistinguishable from calling :meth:`record_unchanged`
        ``count`` times.
        """
        if count <= 0:
            return
        self._num_rounds += count
        self._current_inserted_ids = frozenset()
        self._current_removed_ids = frozenset()
        if self._keep_history:
            self._id_rounds.extend(repeat(self._current_ids, count))

    # -- materialization ---------------------------------------------------

    def _edges_from_ids(self, ids: FrozenSet[int]) -> FrozenSet[Edge]:
        convert = self._id_to_edge
        return frozenset(convert(eid) for eid in ids)

    def _round_ids(self, round_index: int) -> FrozenSet[int]:
        if round_index == 0:
            return frozenset()
        if not self._keep_history:
            return self._current_ids
        return self._id_rounds[round_index - 1]

    def edges_in_round(self, round_index: int) -> FrozenSet[Edge]:
        if round_index == 0:
            return frozenset()
        self._check_round(round_index)
        cached = self._materialized.get(round_index)
        if cached is None:
            cached = self._edges_from_ids(self._round_ids(round_index))
            if self._keep_history:
                self._materialized[round_index] = cached
        return cached

    def inserted_edges(self, round_index: int) -> FrozenSet[Edge]:
        if round_index == 0:
            return frozenset()
        self._check_round(round_index)
        if not self._keep_history or round_index == self._num_rounds:
            return self._edges_from_ids(self._current_inserted_ids)
        return self._edges_from_ids(
            self._round_ids(round_index) - self._round_ids(round_index - 1)
        )

    def removed_edges(self, round_index: int) -> FrozenSet[Edge]:
        if round_index == 0:
            return frozenset()
        self._check_round(round_index)
        if not self._keep_history or round_index == self._num_rounds:
            return self._edges_from_ids(self._current_removed_ids)
        return self._edges_from_ids(
            self._round_ids(round_index - 1) - self._round_ids(round_index)
        )

    def topological_changes(self, up_to_round: Optional[int] = None) -> int:
        if up_to_round is None:
            return self._total_insertions
        if up_to_round < 0:
            raise ConfigurationError("up_to_round must be non-negative")
        up_to_round = min(up_to_round, self.num_rounds)
        if up_to_round == self.num_rounds:
            return self._total_insertions
        if up_to_round == 0:
            return 0
        self._require_history("a topological-changes prefix")
        total = 0
        previous: FrozenSet[int] = frozenset()
        for index in range(up_to_round):
            current = self._id_rounds[index]
            total += len(current - previous)
            previous = current
        return total

    def total_edge_removals(self, up_to_round: Optional[int] = None) -> int:
        if up_to_round is None:
            return self._total_removals
        up_to_round = min(max(up_to_round, 0), self.num_rounds)
        if up_to_round == self.num_rounds:
            return self._total_removals
        if up_to_round == 0:
            return 0
        self._require_history("an edge-removals prefix")
        total = 0
        previous: FrozenSet[int] = frozenset()
        for index in range(up_to_round):
            current = self._id_rounds[index]
            total += len(previous - current)
            previous = current
        return total

    def edge_lifetime(self, edge: Edge) -> int:
        self._require_history("edge_lifetime")
        canonical = normalize_edge(*edge)
        return sum(
            1
            for index in range(1, self.num_rounds + 1)
            if canonical in self.edges_in_round(index)
        )

    def as_schedule(self) -> "GraphSchedule":
        self._require_history("as_schedule")
        return GraphSchedule(
            self.nodes,
            [self.edges_in_round(index) for index in range(1, self.num_rounds + 1)],
        )


class GraphSchedule:
    """A pre-committed sequence of round graphs over a fixed node set.

    A schedule is what an *oblivious* adversary commits to before the
    execution starts.  When an execution outlives the schedule, the final
    round graph repeats (the adversary keeps the topology fixed), which keeps
    every schedule well defined for arbitrarily long executions while adding
    no further topological changes.
    """

    def __init__(self, nodes: Iterable[NodeId], edge_sets: Sequence[Iterable[Edge]]):
        self._nodes: List[NodeId] = validate_nodes(nodes)
        self._node_set: FrozenSet[NodeId] = frozenset(self._nodes)
        if not edge_sets:
            raise ConfigurationError("a GraphSchedule needs at least one round graph")
        self._edge_sets: List[FrozenSet[Edge]] = [
            validate_edges(self._node_set, edges) for edges in edge_sets
        ]

    @property
    def nodes(self) -> List[NodeId]:
        """The fixed node set ``V`` (sorted)."""
        return list(self._nodes)

    @property
    def num_nodes(self) -> int:
        """``n = |V|``."""
        return len(self._nodes)

    @property
    def num_rounds(self) -> int:
        """Number of explicitly specified rounds (the last one repeats afterwards)."""
        return len(self._edge_sets)

    def edges_for_round(self, round_index: int) -> FrozenSet[Edge]:
        """``E_r``; for rounds beyond the schedule length the last graph repeats."""
        if round_index < 1:
            raise ConfigurationError(f"round indices start at 1, got {round_index}")
        index = min(round_index, len(self._edge_sets)) - 1
        return self._edge_sets[index]

    def graph(self, round_index: int) -> nx.Graph:
        """Return ``G_r`` as a :class:`networkx.Graph` (including isolated nodes)."""
        graph = nx.Graph()
        graph.add_nodes_from(self._nodes)
        graph.add_edges_from(self.edges_for_round(round_index))
        return graph

    def prefix(self, num_rounds: int) -> "GraphSchedule":
        """Return a schedule consisting of the first ``num_rounds`` round graphs."""
        if num_rounds < 1:
            raise ConfigurationError("num_rounds must be at least 1")
        return GraphSchedule(self._nodes, self._edge_sets[:num_rounds])

    def concatenate(self, other: "GraphSchedule") -> "GraphSchedule":
        """Append another schedule over the same node set."""
        if frozenset(other.nodes) != self._node_set:
            raise ConfigurationError("cannot concatenate schedules over different node sets")
        return GraphSchedule(self._nodes, list(self._edge_sets) + list(other._edge_sets))

    def topological_changes(self, num_rounds: Optional[int] = None) -> int:
        """``TC`` of the first ``num_rounds`` rounds (whole schedule by default)."""
        limit = self.num_rounds if num_rounds is None else max(0, num_rounds)
        limit = min(limit, self.num_rounds)
        total = 0
        previous: FrozenSet[Edge] = frozenset()
        for index in range(limit):
            current = self._edge_sets[index]
            total += len(current - previous)
            previous = current
        return total

    def iter_rounds(self) -> Iterable[Tuple[int, FrozenSet[Edge]]]:
        """Iterate over ``(round_index, E_r)`` pairs of the explicit schedule."""
        for index, edges in enumerate(self._edge_sets, start=1):
            yield index, edges

    def __len__(self) -> int:
        return self.num_rounds

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, GraphSchedule):
            return NotImplemented
        return self._nodes == other._nodes and self._edge_sets == other._edge_sets

    def __repr__(self) -> str:
        return f"GraphSchedule(n={self.num_nodes}, rounds={self.num_rounds})"
