"""Structural statistics of dynamic-graph schedules and traces.

These summaries are used by the experiment harness to report workload
characteristics next to measured message complexities (average degree, edge
churn per round, observed edge stability, connectivity).
"""

from __future__ import annotations

from dataclasses import dataclass
from statistics import mean
from typing import Dict, FrozenSet, List, Sequence, Union

from repro.dynamics.connectivity import is_connected
from repro.dynamics.graph_sequence import DynamicGraphTrace, GraphSchedule
from repro.dynamics.stability import minimum_edge_stability
from repro.utils.ids import Edge, NodeId

Source = Union[DynamicGraphTrace, GraphSchedule]


def _rounds(source: Source) -> List[FrozenSet[Edge]]:
    if isinstance(source, DynamicGraphTrace):
        return [source.edges_in_round(r) for r in range(1, source.num_rounds + 1)]
    return [edges for _, edges in source.iter_rounds()]


def _nodes(source: Source) -> List[NodeId]:
    return source.nodes


@dataclass(frozen=True)
class DegreeStatistics:
    """Per-schedule degree summary."""

    min_degree: int
    max_degree: int
    mean_degree: float
    mean_edges_per_round: float


@dataclass(frozen=True)
class ChurnStatistics:
    """Per-schedule churn summary (insertions / deletions per round, total TC)."""

    total_insertions: int
    total_deletions: int
    mean_insertions_per_round: float
    mean_deletions_per_round: float
    max_insertions_in_a_round: int


@dataclass(frozen=True)
class ScheduleSummary:
    """Combined structural summary of a schedule or trace."""

    num_nodes: int
    num_rounds: int
    always_connected: bool
    edge_stability: int
    degrees: DegreeStatistics
    churn: ChurnStatistics


def degree_statistics(source: Source) -> DegreeStatistics:
    """Degree statistics aggregated over all rounds."""
    rounds = _rounds(source)
    nodes = _nodes(source)
    if not rounds:
        return DegreeStatistics(0, 0, 0.0, 0.0)
    min_degree = len(nodes)
    max_degree = 0
    degree_sums: List[float] = []
    for edges in rounds:
        degrees: Dict[NodeId, int] = {node: 0 for node in nodes}
        for u, v in edges:
            degrees[u] += 1
            degrees[v] += 1
        values = list(degrees.values())
        min_degree = min(min_degree, min(values))
        max_degree = max(max_degree, max(values))
        degree_sums.append(mean(values))
    return DegreeStatistics(
        min_degree=min_degree,
        max_degree=max_degree,
        mean_degree=mean(degree_sums),
        mean_edges_per_round=mean(len(edges) for edges in rounds),
    )


def churn_statistics(source: Source) -> ChurnStatistics:
    """Edge insertion/deletion statistics (``TC`` is ``total_insertions``)."""
    rounds = _rounds(source)
    previous: FrozenSet[Edge] = frozenset()
    insertions: List[int] = []
    deletions: List[int] = []
    for edges in rounds:
        insertions.append(len(edges - previous))
        deletions.append(len(previous - edges))
        previous = edges
    if not rounds:
        return ChurnStatistics(0, 0, 0.0, 0.0, 0)
    return ChurnStatistics(
        total_insertions=sum(insertions),
        total_deletions=sum(deletions),
        mean_insertions_per_round=mean(insertions),
        mean_deletions_per_round=mean(deletions),
        max_insertions_in_a_round=max(insertions),
    )


def schedule_summary(source: Source) -> ScheduleSummary:
    """Full structural summary used in experiment reports."""
    rounds = _rounds(source)
    nodes = _nodes(source)
    always_connected = all(is_connected(nodes, edges) for edges in rounds)
    return ScheduleSummary(
        num_nodes=len(nodes),
        num_rounds=len(rounds),
        always_connected=always_connected,
        edge_stability=minimum_edge_stability(source) if rounds else 1,
        degrees=degree_statistics(source),
        churn=churn_statistics(source),
    )
