"""Plain-text table rendering for benchmark output and EXPERIMENTS.md.

The paper's evaluation artifacts are a table (Table 1) and the theorem
bounds; these helpers render the regenerated versions as monospace tables so
the benchmark harnesses can print them directly.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence

from repro.analysis.bounds import table1_rows
from repro.analysis.experiments import ExperimentRecord
from repro.utils.validation import ConfigurationError


def _format_value(value: object) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1e6 or abs(value) < 1e-2:
            return f"{value:.3e}"
        return f"{value:,.2f}"
    if isinstance(value, int):
        return f"{value:,}"
    return str(value)


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Render a list of rows as an aligned monospace table."""
    if not headers:
        raise ConfigurationError("a table needs at least one column")
    rendered_rows = [[_format_value(value) for value in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in rendered_rows:
        if len(row) != len(headers):
            raise ConfigurationError("every row must have one cell per header")
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = []
    header_line = " | ".join(header.ljust(widths[i]) for i, header in enumerate(headers))
    separator = "-+-".join("-" * width for width in widths)
    lines.append(header_line)
    lines.append(separator)
    for row in rendered_rows:
        lines.append(" | ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def render_table1(num_nodes: int) -> str:
    """Regenerate Table 1 (amortized message complexity per token regime) for one n."""
    rows = table1_rows(num_nodes)
    return format_table(
        headers=["tokens (k)", "paper bound", "evaluated amortized bound"],
        rows=[
            [row.label, f"O({row.paper_expression})", row.amortized_bound] for row in rows
        ],
    )


def render_records(
    records: Iterable[ExperimentRecord],
    columns: Sequence[str],
) -> str:
    """Render experiment records, pulling each column from params or the record fields."""
    rows: List[List[object]] = []
    for record in records:
        row: List[object] = []
        for column in columns:
            if column in record.params:
                row.append(record.params[column])
            elif hasattr(record, column):
                row.append(getattr(record, column))
            else:
                row.append("")
        rows.append(row)
    return format_table(columns, rows)


def render_aggregates(rows: Sequence[Mapping[str, object]], columns: Sequence[str]) -> str:
    """Render aggregated sweep rows (dictionaries) as a table."""
    table_rows = [[row.get(column, "") for column in columns] for row in rows]
    return format_table(columns, table_rows)


def render_paper_vs_measured(
    entries: Sequence[Mapping[str, object]],
) -> str:
    """Render a paper-vs-measured comparison table.

    Each entry must provide ``experiment``, ``paper`` and ``measured`` keys and
    may provide ``verdict`` / ``notes``.
    """
    headers = ["experiment", "paper", "measured", "verdict"]
    rows = []
    for entry in entries:
        rows.append(
            [
                entry.get("experiment", ""),
                entry.get("paper", ""),
                entry.get("measured", ""),
                entry.get("verdict", ""),
            ]
        )
    return format_table(headers, rows)
