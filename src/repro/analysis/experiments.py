"""Legacy experiment runner plus record aggregation and scaling fits.

.. deprecated::
    :class:`ExperimentRunner` predates the declarative Scenario API and is
    kept as a thin shim for existing callers.  New code should describe
    experiments as :class:`repro.scenarios.ScenarioSpec` objects and run
    them with :class:`repro.scenarios.ScenarioRunner`, which adds JSON
    serialization, grid sweeps and multiprocessing fan-out.

The analysis helpers remain first-class:

* :func:`aggregate_records` averages records sharing the same parameters;
* :func:`fit_power_law` fits ``y ≈ c · x^α`` on a measured series so the
  *shape* of a bound (the exponent α) can be compared against the paper.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from statistics import mean
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.core.problem import DisseminationProblem
from repro.core.result import ExecutionResult
from repro.utils.rng import derive_seed
from repro.utils.validation import ConfigurationError, require_positive_int

ProblemFactory = Callable[[], DisseminationProblem]
AlgorithmFactory = Callable[[], object]
AdversaryFactory = Callable[[], object]


@dataclass(frozen=True)
class ExperimentRecord:
    """One execution's headline numbers plus the sweep parameters that produced it."""

    params: Dict[str, object]
    completed: bool
    rounds: int
    total_messages: int
    amortized_messages: float
    topological_changes: int
    adversary_competitive: float
    amortized_adversary_competitive: float
    token_learnings: int

    @classmethod
    def from_result(
        cls, result: ExecutionResult, params: Optional[Mapping[str, object]] = None
    ) -> "ExperimentRecord":
        """Build a record from an :class:`ExecutionResult`."""
        merged: Dict[str, object] = dict(result.summary())
        if params:
            merged.update(params)
        return cls(
            params=merged,
            completed=result.completed,
            rounds=result.rounds,
            total_messages=result.total_messages,
            amortized_messages=result.amortized_messages(),
            topological_changes=result.topological_changes,
            adversary_competitive=result.adversary_competitive_messages(),
            amortized_adversary_competitive=result.amortized_adversary_competitive_messages(),
            token_learnings=result.token_learnings(),
        )


class ExperimentRunner:
    """Runs repeated executions of one configuration with derived seeds.

    .. deprecated::
        Use :class:`repro.scenarios.ScenarioRunner` with
        :class:`repro.scenarios.ScenarioSpec` instead; this class remains a
        thin factory-based shim over the same execution path.
    """

    def __init__(self, base_seed: int = 0):
        warnings.warn(
            "ExperimentRunner is deprecated; describe experiments as "
            "repro.scenarios.ScenarioSpec and run them with "
            "repro.scenarios.ScenarioRunner, or use the fluent "
            "repro.Experiment pipeline (grid/seeds/store/run/aggregate)",
            DeprecationWarning,
            stacklevel=2,
        )
        self._base_seed = base_seed

    def run(
        self,
        problem_factory: ProblemFactory,
        algorithm_factory: AlgorithmFactory,
        adversary_factory: AdversaryFactory,
        *,
        repetitions: int = 1,
        max_rounds: Optional[int] = None,
        params: Optional[Mapping[str, object]] = None,
        label: str = "",
    ) -> List[ExperimentRecord]:
        """Run ``repetitions`` independent executions and return their records."""
        from repro.scenarios.runner import execute

        require_positive_int(repetitions, "repetitions")
        records: List[ExperimentRecord] = []
        for repetition in range(repetitions):
            seed = derive_seed(self._base_seed, label, repetition)
            result = execute(
                problem_factory(),
                algorithm_factory(),
                adversary_factory(),
                seed=seed,
                max_rounds=max_rounds,
            )
            merged_params = dict(params or {})
            merged_params["repetition"] = repetition
            records.append(ExperimentRecord.from_result(result, merged_params))
        return records

    def sweep(
        self,
        configurations: Sequence[Mapping[str, object]],
        build: Callable[
            [Mapping[str, object]], Tuple[ProblemFactory, AlgorithmFactory, AdversaryFactory]
        ],
        *,
        repetitions: int = 1,
        max_rounds: Optional[int] = None,
        label: str = "sweep",
    ) -> List[ExperimentRecord]:
        """Run every configuration of a parameter sweep."""
        records: List[ExperimentRecord] = []
        for index, configuration in enumerate(configurations):
            problem_factory, algorithm_factory, adversary_factory = build(configuration)
            records.extend(
                self.run(
                    problem_factory,
                    algorithm_factory,
                    adversary_factory,
                    repetitions=repetitions,
                    max_rounds=max_rounds,
                    params=dict(configuration),
                    label=f"{label}-{index}",
                )
            )
        return records


def aggregate_records(
    records: Iterable[ExperimentRecord],
    group_by: Sequence[str],
    metrics: Sequence[str] = (
        "total_messages",
        "amortized_messages",
        "rounds",
        "topological_changes",
        "amortized_adversary_competitive",
    ),
) -> List[Dict[str, object]]:
    """Average the given metrics over records sharing the same group-by key."""
    groups: Dict[Tuple, List[ExperimentRecord]] = {}
    for record in records:
        key = tuple(record.params.get(name) for name in group_by)
        groups.setdefault(key, []).append(record)
    def sort_key(key: Tuple) -> Tuple:
        # Sort numeric parts numerically and everything else lexicographically.
        return tuple(
            (0, part) if isinstance(part, (int, float)) and not isinstance(part, bool)
            else (1, str(part))
            for part in key
        )

    rows: List[Dict[str, object]] = []
    for key in sorted(groups, key=sort_key):
        group = groups[key]
        row: Dict[str, object] = {name: value for name, value in zip(group_by, key)}
        row["runs"] = len(group)
        row["completed"] = all(record.completed for record in group)
        for metric in metrics:
            row[metric] = mean(getattr(record, metric) for record in group)
        rows.append(row)
    return rows


def fit_power_law(xs: Sequence[float], ys: Sequence[float]) -> Tuple[float, float]:
    """Fit ``y ≈ c · x^α`` by least squares in log-log space; returns ``(α, c)``."""
    if len(xs) != len(ys):
        raise ConfigurationError("xs and ys must have the same length")
    if len(xs) < 2:
        raise ConfigurationError("at least two points are needed for a power-law fit")
    if any(x <= 0 for x in xs) or any(y <= 0 for y in ys):
        raise ConfigurationError("power-law fitting requires strictly positive data")
    log_x = np.log(np.asarray(xs, dtype=float))
    log_y = np.log(np.asarray(ys, dtype=float))
    exponent, intercept = np.polyfit(log_x, log_y, 1)
    return float(exponent), float(np.exp(intercept))


def scaling_exponent(xs: Sequence[float], ys: Sequence[float]) -> float:
    """The fitted power-law exponent α of ``y`` against ``x``."""
    exponent, _ = fit_power_law(xs, ys)
    return exponent
