"""Analysis tools: closed-form bounds, potential tracking, experiments, reports.

This package turns raw :class:`~repro.core.result.ExecutionResult` objects
into the quantities the paper reports:

* :mod:`repro.analysis.bounds` — closed-form evaluations of every bound
  stated in the paper (Theorems 2.3, 3.1, 3.4, 3.5, 3.6, 3.8 and Table 1);
* :mod:`repro.analysis.potential` — the potential function ``Φ(t)`` of the
  Section-2 lower-bound argument;
* :mod:`repro.analysis.experiments` — a small experiment runner with
  parameter sweeps, repetition handling and power-law fitting;
* :mod:`repro.analysis.reporting` — plain-text table renderers used by the
  benchmark harnesses and EXPERIMENTS.md.
"""

from repro.analysis.bounds import (
    log2n,
    flooding_amortized_upper_bound,
    local_broadcast_lower_bound,
    static_spanning_tree_amortized,
    single_source_competitive_bound,
    multi_source_competitive_bound,
    oblivious_total_message_bound,
    oblivious_amortized_bound,
    table1_amortized_bound,
    table1_rows,
    naive_unicast_amortized_upper_bound,
    single_source_round_bound,
)
from repro.analysis.potential import PotentialTracker, potential_of_knowledge
from repro.analysis.experiments import (
    ExperimentRecord,
    ExperimentRunner,
    aggregate_records,
    fit_power_law,
    scaling_exponent,
)
from repro.analysis.reporting import (
    format_table,
    render_table1,
    render_records,
    render_paper_vs_measured,
)

__all__ = [
    "log2n",
    "flooding_amortized_upper_bound",
    "local_broadcast_lower_bound",
    "static_spanning_tree_amortized",
    "single_source_competitive_bound",
    "multi_source_competitive_bound",
    "oblivious_total_message_bound",
    "oblivious_amortized_bound",
    "table1_amortized_bound",
    "table1_rows",
    "naive_unicast_amortized_upper_bound",
    "single_source_round_bound",
    "PotentialTracker",
    "potential_of_knowledge",
    "ExperimentRecord",
    "ExperimentRunner",
    "aggregate_records",
    "fit_power_law",
    "scaling_exponent",
    "format_table",
    "render_table1",
    "render_records",
    "render_paper_vs_measured",
]
