"""The potential function of the Section-2 lower-bound argument.

``Φ(t) = Σ_{v ∈ V} |K_v(t) ∪ K'_v|`` where ``K_v(t)`` is the set of tokens
node ``v`` knows at time ``t`` and ``K'_v`` is the adversary's sampled
"discounted" token set.  The proof of Theorem 2.3 rests on three facts that
:class:`PotentialTracker` lets us check empirically:

* ``Φ(0) ≤ 0.8·nk`` (with high probability over the choice of ``K'_v``);
* ``Φ`` must reach ``nk`` for the dissemination problem to be solved, so it
  has to grow by at least ``0.2·nk``;
* the per-round growth is at most ``2·(ℓ - 1)`` where ``ℓ`` is the number of
  connected components of the free-edge graph — ``O(log n)`` in general and
  0 in rounds with at most ``n/(c log n)`` broadcasting nodes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Mapping, Sequence

from repro.core.events import EventLog
from repro.core.problem import DisseminationProblem
from repro.core.tokens import Token
from repro.utils.ids import NodeId
from repro.utils.validation import ConfigurationError


def potential_of_knowledge(
    knowledge: Mapping[NodeId, FrozenSet[Token]],
    kprime: Mapping[NodeId, FrozenSet[Token]],
) -> int:
    """``Σ_v |K_v ∪ K'_v|`` for explicit knowledge and K' maps."""
    total = 0
    for node, known in knowledge.items():
        extra = kprime.get(node, frozenset())
        total += len(set(known) | set(extra))
    return total


@dataclass(frozen=True)
class PotentialTrajectory:
    """The potential value after every round, plus per-round increases."""

    initial: int
    per_round: List[int]
    increases: List[int]

    @property
    def final(self) -> int:
        """The potential at the end of the recorded execution."""
        return self.per_round[-1] if self.per_round else self.initial

    @property
    def total_increase(self) -> int:
        """``Φ(end) - Φ(0)``."""
        return self.final - self.initial

    @property
    def max_round_increase(self) -> int:
        """The largest single-round potential increase."""
        return max(self.increases, default=0)


class PotentialTracker:
    """Reconstructs the potential trajectory of an execution from its event log.

    The tracker starts from the problem's initial knowledge and the
    adversary's ``K'_v`` sets and replays the token-learning events round by
    round; a learning of a token already in ``K'_v`` does not increase the
    potential, exactly as in the paper's accounting.
    """

    def __init__(
        self,
        problem: DisseminationProblem,
        kprime: Mapping[NodeId, FrozenSet[Token]],
    ) -> None:
        unknown_nodes = set(kprime) - set(problem.nodes)
        if unknown_nodes:
            raise ConfigurationError(f"K' given for unknown nodes: {unknown_nodes}")
        self._problem = problem
        self._kprime = {
            node: frozenset(kprime.get(node, frozenset())) for node in problem.nodes
        }
        self._effective: Dict[NodeId, set] = {
            node: set(problem.initial_knowledge[node]) | set(self._kprime[node])
            for node in problem.nodes
        }
        self._initial = sum(len(tokens) for tokens in self._effective.values())

    @property
    def initial_potential(self) -> int:
        """``Φ(0)``."""
        return self._initial

    def maximum_potential(self) -> int:
        """``n · k`` — the value the potential must reach for dissemination."""
        return self._problem.num_nodes * self._problem.num_tokens

    def replay(self, events: EventLog, num_rounds: int) -> PotentialTrajectory:
        """Replay an event log and return the per-round potential trajectory."""
        effective = {node: set(tokens) for node, tokens in self._effective.items()}
        current = self._initial
        per_round: List[int] = []
        increases: List[int] = []
        events_by_round: Dict[int, List] = {}
        for event in events:
            events_by_round.setdefault(event.round_index, []).append(event)
        for round_index in range(1, num_rounds + 1):
            increase = 0
            for event in events_by_round.get(round_index, []):
                if event.token not in effective[event.node]:
                    effective[event.node].add(event.token)
                    increase += 1
            current += increase
            per_round.append(current)
            increases.append(increase)
        return PotentialTrajectory(
            initial=self._initial, per_round=per_round, increases=increases
        )
