"""Closed-form evaluations of the paper's bounds.

These functions evaluate the asymptotic expressions of the paper at concrete
``(n, k, s)`` values (with all hidden constants set to 1 and ``log = log₂``).
They are used to regenerate Table 1, to sanity-check the *shape* of measured
results, and in EXPERIMENTS.md for the paper-vs-measured comparison.  They
are not meant to predict absolute message counts.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.utils.validation import ConfigurationError, require_positive_int


def log2n(num_nodes: int) -> float:
    """``log₂ n`` clamped below by 1 so that expressions stay finite for tiny n."""
    require_positive_int(num_nodes, "num_nodes")
    return max(1.0, math.log2(num_nodes))


# -- Section 1 / Section 2: local broadcast ---------------------------------------------


def flooding_amortized_upper_bound(num_nodes: int) -> float:
    """Naive flooding upper bound: ``O(n²)`` amortized local broadcasts per token."""
    require_positive_int(num_nodes, "num_nodes")
    return float(num_nodes) ** 2


def local_broadcast_lower_bound(num_nodes: int) -> float:
    """Theorem 2.3: ``Ω(n² / log² n)`` amortized local broadcasts per token."""
    return float(num_nodes) ** 2 / log2n(num_nodes) ** 2


# -- Section 1: static baseline -----------------------------------------------------------


def static_spanning_tree_total(num_nodes: int, num_tokens: int) -> float:
    """Static baseline total: ``O(n² + nk)`` messages (KT0 spanning tree + pipelining)."""
    require_positive_int(num_tokens, "num_tokens")
    return float(num_nodes) ** 2 + float(num_nodes) * num_tokens


def static_spanning_tree_amortized(num_nodes: int, num_tokens: int) -> float:
    """Static baseline amortized: ``O(n²/k + n)`` messages per token."""
    return static_spanning_tree_total(num_nodes, num_tokens) / num_tokens


def naive_unicast_amortized_upper_bound(num_nodes: int) -> float:
    """Naive unicast upper bound: ``O(n²)`` amortized (each token to each node once)."""
    require_positive_int(num_nodes, "num_nodes")
    return float(num_nodes) ** 2


# -- Section 3.1 / 3.2.1: adversary-competitive unicast ------------------------------------


def single_source_competitive_bound(num_nodes: int, num_tokens: int) -> float:
    """Theorem 3.1: 1-adversary-competitive message complexity ``O(n² + nk)``."""
    require_positive_int(num_tokens, "num_tokens")
    return float(num_nodes) ** 2 + float(num_nodes) * num_tokens


def single_source_round_bound(num_nodes: int, num_tokens: int) -> float:
    """Theorem 3.4: ``O(nk)`` rounds on 3-edge-stable dynamic graphs."""
    require_positive_int(num_tokens, "num_tokens")
    return float(num_nodes) * num_tokens


def multi_source_competitive_bound(num_nodes: int, num_tokens: int, num_sources: int) -> float:
    """Theorem 3.5: 1-adversary-competitive message complexity ``O(n²s + nk)``."""
    require_positive_int(num_tokens, "num_tokens")
    require_positive_int(num_sources, "num_sources")
    return float(num_nodes) ** 2 * num_sources + float(num_nodes) * num_tokens


def multi_source_amortized_bound(num_nodes: int, num_tokens: int, num_sources: int) -> float:
    """Amortized version of Theorem 3.5: ``O(n²s/k + n)``."""
    return multi_source_competitive_bound(num_nodes, num_tokens, num_sources) / num_tokens


# -- Section 3.2.2: oblivious adversary -----------------------------------------------------


def oblivious_total_message_bound(num_nodes: int, num_tokens: int) -> float:
    """Theorem 3.8: total message complexity ``O(n^{5/2} k^{1/4} log^{5/4} n)``."""
    require_positive_int(num_tokens, "num_tokens")
    return (
        float(num_nodes) ** 2.5 * float(num_tokens) ** 0.25 * log2n(num_nodes) ** 1.25
    )


def oblivious_amortized_bound(num_nodes: int, num_tokens: int) -> float:
    """Theorem 3.8, amortized: ``O(n^{5/2} log^{5/4} n / k^{3/4})``."""
    return oblivious_total_message_bound(num_nodes, num_tokens) / num_tokens


# -- Table 1 -----------------------------------------------------------------------------------


@dataclass(frozen=True)
class Table1Row:
    """One row of Table 1: token count regime and the resulting amortized bound."""

    label: str
    num_tokens: int
    paper_expression: str
    amortized_bound: float


def table1_amortized_bound(num_nodes: int, num_tokens: int) -> float:
    """The amortized bound the paper states for a given k (oblivious algorithm).

    For ``k`` at the lower edge of the admissible range the bound saturates at
    ``O(n²)`` (the Multi-Source-Unicast fallback); otherwise it is the
    Theorem 3.8 expression.
    """
    bound = oblivious_amortized_bound(num_nodes, num_tokens)
    return min(bound, float(num_nodes) ** 2)


def table1_rows(num_nodes: int) -> List[Table1Row]:
    """Regenerate the four rows of Table 1 for a concrete ``n``.

    The paper's rows are (k, amortized bound):

    * ``k = O(n^{2/3} log^{5/3} n)``  →  ``O(n²)``
    * ``k = O(n)``                    →  ``O(n^{7/4} log^{5/4} n)``
    * ``k = O(n^{3/2})``              →  ``O(n^{11/8} log^{5/4} n)``
    * ``k = O(n²)``                   →  ``O(n log^{5/4} n)``
    """
    require_positive_int(num_nodes, "num_nodes")
    log_n = log2n(num_nodes)
    regimes = [
        ("k = n^(2/3) log^(5/3) n", int(round(num_nodes ** (2 / 3) * log_n ** (5 / 3))), "n^2"),
        ("k = n", num_nodes, "n^(7/4) log^(5/4) n"),
        ("k = n^(3/2)", int(round(num_nodes**1.5)), "n^(11/8) log^(5/4) n"),
        ("k = n^2", num_nodes**2, "n log^(5/4) n"),
    ]
    rows: List[Table1Row] = []
    for label, k, expression in regimes:
        k = max(1, k)
        rows.append(
            Table1Row(
                label=label,
                num_tokens=k,
                paper_expression=expression,
                amortized_bound=table1_amortized_bound(num_nodes, k),
            )
        )
    return rows


def table1_paper_expressions(num_nodes: int) -> Dict[str, float]:
    """Evaluate the paper's closed-form Table 1 entries directly (for cross-checking)."""
    log_n = log2n(num_nodes)
    n = float(num_nodes)
    return {
        "k = n^(2/3) log^(5/3) n": n**2,
        "k = n": n**1.75 * log_n**1.25,
        "k = n^(3/2)": n**1.375 * log_n**1.25,
        "k = n^2": n * log_n**1.25,
    }
