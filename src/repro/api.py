"""The fluent Experiment API: one composable pipeline from grid to report.

This module is the single high-level front door over the three subsystems
that previously had to be stitched together by hand (or via CLI pipes):
:mod:`repro.scenarios` (specs, registries, execution),
:mod:`repro.results` (store, aggregation, bound comparison) and
:mod:`repro.backends` (execution engines).  The whole run → store →
aggregate → compare → report loop is one lazily-evaluated expression::

    from repro import Experiment

    report = (
        Experiment.grid(algorithm="flooding", adversary="static-random",
                        num_nodes=[32, 64, 128], num_tokens=64)
        .seeds(10)
        .backend("bitset")
        .store(".repro-store")
        .run(workers=8)
        .aggregate(by=["n"])
        .compare(bounds=True)
        .report("md")
    )

Every stage returns a typed handle that can also be consumed directly:

* :meth:`Experiment.plan` → :class:`ExperimentPlan` — the expanded
  scenario×repetition cells, split into cached and pending;
* :meth:`Experiment.run` / :meth:`ExperimentPlan.run` → :class:`RunSet` —
  iterable, **streaming** records as executions complete;
* :meth:`RunSet.aggregate` → :class:`Aggregate` — grouped statistic rows;
* :meth:`Aggregate.compare` → :class:`Comparison` — paper-bound verdicts
  plus the full markdown report.

**Incremental runs.**  With a bound store (:meth:`Experiment.store`), the
plan phase consults the :class:`~repro.results.store.RunStore` and skips
every scenario×repetition cell whose record already exists — keyed by
``scenario_key`` (which embeds the base seed, hence the derived
per-repetition seed) plus the repetition index and the current record
schema version.  Enlarging a grid or raising the seed count therefore only
executes the delta, while the :class:`RunSet` still yields the *complete*
record set (cached + fresh), so aggregates and reports are byte-identical
to a cold full run.

**Vectorized groups.**  On the in-process path, consecutive pending cells
of the same spec form one group; when the scenario is vectorizable (the
algorithm has a batch program, the adversary is oblivious) and numpy is
installed, the whole group runs through the vectorized batch backend
(:mod:`repro.batch`) in one pass.  Records are field-identical either way —
an explicit ``.backend("bitset")`` opts out.
"""

from __future__ import annotations

import importlib
import multiprocessing
import time
from dataclasses import dataclass, replace
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.obs.events import (
    CellCached,
    CellCompleted,
    CellStarted,
    ProgressEvent,
    RunFinished,
)
from repro.obs.logs import get_logger

from repro.results.aggregate import (
    DEFAULT_GROUP_BY,
    DEFAULT_METRICS,
    aggregate as _aggregate_records,
    aggregate_columns,
)
from repro.results.compare import compare_to_bounds
from repro.results.records import SCHEMA_VERSION, RunRecord, coerce_record
from repro.results.report import (
    COMPARISON_COLUMNS,
    render_report,
    rows_to_table,
)
from repro.results.store import RunStore, open_source
from repro.scenarios.registry import (
    ADVERSARY_REGISTRY,
    ALGORITHM_REGISTRY,
    PROBLEM_REGISTRY,
)
from repro.scenarios.runner import (
    record_from_result,
    repetition_seed,
    run_scenario,
)
from repro.scenarios.spec import _TOP_LEVEL_SWEEP_FIELDS, ScenarioSpec, sweep
from repro.utils.validation import ConfigurationError, ReproError

__all__ = [
    "Aggregate",
    "Comparison",
    "Experiment",
    "ExperimentError",
    "ExperimentPlan",
    "PlanCell",
    "RunSet",
    "execute_cell",
    "execute_cell_payload",
    "execute_group",
    "execute_group_payload",
    "group_payloads",
    "load_runs",
    "vectorizable_group",
]

#: Path-like accepted wherever a store directory is named.
StorePath = Union[str, "RunStore"]

#: One JSON-ready run record (the runner's currency).
Record = Dict[str, Any]

#: Execution metadata riding alongside each fresh record (never stored):
#: ``{"backend", "seconds", "stage_seconds"}``.
CellMeta = Dict[str, Any]

#: A progress-event observer callback.
Observer = Callable[[ProgressEvent], None]

logger = get_logger(__name__)

_numpy_fallback_warned = False


class ExperimentError(ReproError):
    """Raised when a pipeline stage is used inconsistently at run time."""


def _normalize_dimension_key(key: str) -> str:
    """Bare non-spec-field keys are shorthand for problem parameters."""
    if "." in key or key in _TOP_LEVEL_SWEEP_FIELDS:
        return key
    return f"problem.{key}"


def _is_dimension(value: Any) -> bool:
    """Lists, tuples and ranges sweep; every other value configures."""
    return isinstance(value, (list, tuple, range))


@dataclass(frozen=True)
class Experiment:
    """An immutable, lazily-evaluated description of a batch of scenarios.

    Build one with :meth:`grid` (keyword dimensions), :meth:`from_spec`
    (one base spec plus an optional grid) or :meth:`from_specs` (an
    explicit, already-expanded batch).  Every fluent method returns a new
    ``Experiment``; nothing executes until :meth:`plan` or :meth:`run` —
    and because planning re-reads the bound store, the *same* experiment
    object can be run repeatedly, executing only what is missing each time.
    """

    _base: Optional[ScenarioSpec] = None
    _grid: Tuple[Tuple[str, Tuple[Any, ...]], ...] = ()
    _explicit: Optional[Tuple[ScenarioSpec, ...]] = None
    _store_path: Optional[str] = None
    _extensions: Tuple[str, ...] = ()
    _observers: Tuple[Observer, ...] = ()
    _collect_timings: bool = False

    # -- construction ------------------------------------------------------

    @classmethod
    def grid(
        cls,
        dimensions: Optional[Mapping[str, Any]] = None,
        **kwargs: Any,
    ) -> "Experiment":
        """Build an experiment from keyword dimensions.

        Keys are spec fields (``problem``, ``algorithm``, ``adversary``,
        ``backend``, ``seed``, ...), dotted parameter paths
        (``"adversary.changes_per_round"`` — via the ``dimensions``
        mapping, since dots cannot appear in keyword names) or bare problem
        parameters (``num_nodes`` → ``problem.num_nodes``).  A list, tuple
        or range value becomes a swept grid dimension; any other value
        configures the base scenario::

            Experiment.grid(algorithm="flooding", adversary="static-random",
                            num_nodes=[32, 64, 128], num_tokens=64)
        """
        overlap = sorted(set(dimensions or {}) & set(kwargs))
        if overlap:
            raise ConfigurationError(
                f"grid key(s) {overlap} passed both in the dimensions mapping "
                f"and as keyword arguments; pass each once"
            )
        merged: Dict[str, Any] = dict(dimensions or {})
        merged.update(kwargs)
        spec_fields: Dict[str, Any] = {}
        params: Dict[str, Dict[str, Any]] = {"problem": {}, "algorithm": {}, "adversary": {}}
        grid: Dict[str, List[Any]] = {}
        seen: Dict[str, str] = {}  # normalized key -> raw spelling
        for raw_key, value in merged.items():
            if not isinstance(raw_key, str) or not raw_key:
                raise ConfigurationError(f"grid keys must be non-empty strings, got {raw_key!r}")
            key = _normalize_dimension_key(raw_key)
            if key in seen:
                # E.g. a dotted "problem.num_nodes" in the mapping plus a
                # bare num_nodes kwarg: one would silently win — refuse.
                raise ConfigurationError(
                    f"grid keys {seen[key]!r} and {raw_key!r} both address "
                    f"{key!r}; pass it once"
                )
            seen[key] = raw_key
            if _is_dimension(value):
                values = list(value)
                if not values:
                    raise ConfigurationError(f"grid dimension {raw_key!r} has no values")
                grid[key] = values
            elif key in _TOP_LEVEL_SWEEP_FIELDS:
                spec_fields[key] = value
            else:
                section, _, param = key.partition(".")
                if section not in params or not param:
                    raise ConfigurationError(
                        f"invalid grid key {raw_key!r}: use a spec field "
                        f"{_TOP_LEVEL_SWEEP_FIELDS}, a dotted parameter path or a "
                        f"bare problem parameter"
                    )
                params[section][param] = value
        base = ScenarioSpec(
            problem=spec_fields.pop("problem", "single-source"),
            algorithm=spec_fields.pop("algorithm", "single-source"),
            adversary=spec_fields.pop("adversary", "churn"),
            problem_params=params["problem"],
            algorithm_params=params["algorithm"],
            adversary_params=params["adversary"],
            **spec_fields,
        )
        return cls(_base=base, _grid=tuple((key, tuple(values)) for key, values in grid.items()))

    @classmethod
    def from_spec(
        cls,
        spec: ScenarioSpec,
        grid: Optional[Mapping[str, Sequence[Any]]] = None,
    ) -> "Experiment":
        """Wrap one base spec, optionally crossed with a sweep grid."""
        if not isinstance(spec, ScenarioSpec):
            raise ConfigurationError(f"expected a ScenarioSpec, got {type(spec).__name__}")
        dims = tuple(
            (_normalize_dimension_key(key), tuple(values))
            for key, values in (grid or {}).items()
        )
        return cls(_base=spec, _grid=dims)

    @classmethod
    def from_specs(cls, specs: Iterable[ScenarioSpec]) -> "Experiment":
        """Wrap an explicit, already-expanded batch of specs (the CLI path).

        No grid expansion or parameter autofill is applied: the given specs
        run exactly as written.
        """
        batch = tuple(specs)
        for spec in batch:
            if not isinstance(spec, ScenarioSpec):
                raise ConfigurationError(f"expected a ScenarioSpec, got {type(spec).__name__}")
        if not batch:
            raise ConfigurationError("an experiment needs at least one spec")
        return cls(_explicit=batch)

    # -- fluent configuration ---------------------------------------------

    def _map_specs(self, transform: Any) -> "Experiment":
        if self._explicit is not None:
            return replace(self, _explicit=tuple(transform(spec) for spec in self._explicit))
        return replace(self, _base=transform(self._base))

    def seeds(self, seeds: Union[int, Iterable[int]]) -> "Experiment":
        """Repetition count (``.seeds(10)``) or explicit base seeds to sweep.

        An integer sets ``repetitions`` — repetition ``r`` derives its seed
        from the scenario content, so growing the count later only executes
        the new repetitions.  An iterable of integers sweeps the base
        ``seed`` field instead (one repetition per listed seed).
        """
        if isinstance(seeds, bool):
            raise ConfigurationError(f"seeds must be an int or ints, got {seeds!r}")
        if isinstance(seeds, int):
            return self._map_specs(lambda spec: replace(spec, repetitions=seeds))
        values = list(seeds)
        if not values or any(isinstance(v, bool) or not isinstance(v, int) for v in values):
            raise ConfigurationError(f"seeds must be a non-empty list of ints, got {values!r}")
        return self.vary("seed", values)

    def backend(self, name: str) -> "Experiment":
        """Select the execution backend (an execution detail — never reseeds)."""
        return self._map_specs(lambda spec: replace(spec, backend=name))

    def configure(
        self,
        *,
        problem: Optional[Mapping[str, Any]] = None,
        algorithm: Optional[Mapping[str, Any]] = None,
        adversary: Optional[Mapping[str, Any]] = None,
        **spec_fields: Any,
    ) -> "Experiment":
        """Merge component parameters and/or replace spec fields."""
        return self._map_specs(
            lambda spec: spec.with_params(
                problem=problem, algorithm=algorithm, adversary=adversary, **spec_fields
            )
        )

    def vary(self, key: str, values: Sequence[Any]) -> "Experiment":
        """Add (or replace) one swept grid dimension."""
        if self._explicit is not None:
            raise ExperimentError(
                "cannot add grid dimensions to an experiment built from explicit "
                "specs; use Experiment.grid or Experiment.from_spec"
            )
        values = list(values)
        if not values:
            raise ConfigurationError(f"grid dimension {key!r} has no values")
        key = _normalize_dimension_key(key)
        dims = [(k, v) for k, v in self._grid if k != key]
        dims.append((key, tuple(values)))
        return replace(self, _grid=tuple(dims))

    def store(self, path: StorePath) -> "Experiment":
        """Bind a run-store directory: runs persist into it and re-runs skip
        every cell it already holds."""
        if isinstance(path, RunStore):
            path = str(path.path)
        return replace(self, _store_path=str(path))

    def extensions(self, *modules: str) -> "Experiment":
        """Modules to import in worker processes (third-party registrations)."""
        for module in modules:
            if not isinstance(module, str) or not module:
                raise ConfigurationError(
                    f"extensions must be importable module names, got {module!r}"
                )
        return replace(self, _extensions=self._extensions + tuple(modules))

    def observe(self, *callbacks: Observer, timings: bool = False) -> "Experiment":
        """Register progress-event observers (see :mod:`repro.obs.events`).

        While the resulting :class:`RunSet` streams, each callback receives
        typed ``CellStarted``/``CellCompleted``/``CellCached`` events in
        plan order plus one final ``RunFinished`` — the hook behind the
        CLI's live progress line and ``--trace`` files.  With
        ``timings=True`` every fresh cell additionally runs under a
        per-stage timing tracer, so its ``CellCompleted.stage_seconds``
        breaks the run down by kernel stage (commit/adversary/delivery/
        accounting).  Timings ride on the events only; stored records are
        byte-identical with or without observation.
        """
        for callback in callbacks:
            if not callable(callback):
                raise ConfigurationError(
                    f"observers must be callables, got {callback!r}"
                )
        return replace(
            self,
            _observers=self._observers + tuple(callbacks),
            _collect_timings=self._collect_timings or timings,
        )

    # -- evaluation --------------------------------------------------------

    def specs(self) -> List[ScenarioSpec]:
        """The expanded, validated scenario batch (deterministic order).

        Registry names (problem, algorithm, adversary, backend) are
        validated here — before anything executes — so typos fail fast with
        a did-you-mean suggestion.  Adversaries that require ``num_nodes``
        inherit it from the problem dimensions unless set explicitly.
        """
        if self._explicit is not None:
            batch = list(self._explicit)
        else:
            if self._base is None:
                raise ExperimentError("empty experiment: build one with Experiment.grid(...)")
            batch = sweep(self._base, {key: list(values) for key, values in self._grid})
            batch = [self._autofill_adversary_nodes(spec) for spec in batch]
        for spec in batch:
            self._validate_spec(spec)
        return batch

    @staticmethod
    def _autofill_adversary_nodes(spec: ScenarioSpec) -> ScenarioSpec:
        entry = ADVERSARY_REGISTRY.get(spec.adversary)
        if "num_nodes" in spec.adversary_params:
            return spec
        requires_nodes = any(
            info.name == "num_nodes" and info.required for info in entry.parameters()
        )
        nodes = spec.problem_params.get("num_nodes")
        if requires_nodes and nodes is not None:
            return spec.with_params(adversary={"num_nodes": nodes})
        return spec

    @staticmethod
    def _validate_spec(spec: ScenarioSpec) -> None:
        PROBLEM_REGISTRY.get(spec.problem)
        ALGORITHM_REGISTRY.get(spec.algorithm)
        ADVERSARY_REGISTRY.get(spec.adversary)
        # Imported lazily: repro.backends imports the scenario layer, so a
        # module-level import here would be order-sensitive.
        from repro.backends import BACKEND_REGISTRY

        BACKEND_REGISTRY.get(spec.backend)

    @staticmethod
    def _warehouse_lookup(store: RunStore) -> Optional[Any]:
        """The warehouse query API for ``store``, when an index exists.

        Cache checks over a large store then cost one sqlite lookup per
        scenario instead of a shard read.  Any warehouse trouble (no
        sqlite, no index, corruption, failed sync) falls back to shard
        scans — the plan is always correct, the index only makes it fast.
        The index also attaches to the store, so cells persisted by this
        very run keep it warm.
        """
        from repro.warehouse import open_index

        index = open_index(store.path)
        if index is None:
            return None
        try:
            index.sync()
        except ReproError as error:
            logger.warning("warehouse sync failed (%s); using shard scans", error)
            return None
        index.attach(store)
        return index.query()

    def plan(self) -> "ExperimentPlan":
        """Expand the grid into scenario×repetition cells and split them
        into cached (already in the bound store, current schema) and
        pending (to execute).  Re-planning re-reads the store, so a plan
        always reflects the store's state *now*.
        """
        store = RunStore(self._store_path) if self._store_path is not None else None
        lookup = self._warehouse_lookup(store) if store is not None else None
        cells: List[PlanCell] = []
        for spec in self.specs():
            stored: Mapping[int, Any] = {}
            if store is not None:
                stored = (lookup or store).repetitions_present(
                    spec.scenario_key(), schema_version=SCHEMA_VERSION
                )
            for repetition in range(spec.repetitions):
                record = stored.get(repetition)
                # scenario_key excludes execution-detail fields, but one of
                # them — max_rounds — changes the *result*: a record produced
                # under a different round cap does not satisfy this cell.
                if (
                    record is not None
                    and record.spec.get("max_rounds") != spec.max_rounds
                ):
                    record = None
                cells.append(
                    PlanCell(
                        spec=spec,
                        repetition=repetition,
                        seed=repetition_seed(spec, repetition),
                        cached_record=record.to_dict() if record is not None else None,
                    )
                )
        return ExperimentPlan(
            cells=tuple(cells),
            store=store,
            extensions=self._extensions,
            observers=self._observers,
            collect_timings=self._collect_timings,
        )

    def run(self, workers: int = 1) -> "RunSet":
        """Plan and execute: cached cells are read back, pending cells run
        (optionally across worker processes) and persist through the store
        as they complete.  The returned :class:`RunSet` streams records in
        deterministic batch order."""
        return self.plan().run(workers=workers)


@dataclass(frozen=True)
class PlanCell:
    """One scenario×repetition execution slot of a plan."""

    spec: ScenarioSpec
    repetition: int
    seed: int
    cached_record: Optional[Record] = None

    @property
    def cached(self) -> bool:
        """Whether the bound store already holds this cell's record."""
        return self.cached_record is not None


@dataclass(frozen=True)
class ExperimentPlan:
    """The expanded cells of an experiment, ready to execute.

    Consume it directly (iterate the cells, inspect :attr:`pending` /
    :attr:`cached`) or call :meth:`run` to execute the pending delta.
    """

    cells: Tuple[PlanCell, ...]
    store: Optional[RunStore] = None
    extensions: Tuple[str, ...] = ()
    observers: Tuple[Observer, ...] = ()
    collect_timings: bool = False

    def __iter__(self) -> Iterator[PlanCell]:
        return iter(self.cells)

    def __len__(self) -> int:
        return len(self.cells)

    @property
    def pending(self) -> List[PlanCell]:
        """Cells that must execute (no stored record under the current schema)."""
        return [cell for cell in self.cells if not cell.cached]

    @property
    def cached(self) -> List[PlanCell]:
        """Cells satisfied by the bound store."""
        return [cell for cell in self.cells if cell.cached]

    def specs(self) -> List[ScenarioSpec]:
        """The distinct specs of the plan, in batch order."""
        seen: List[ScenarioSpec] = []
        for cell in self.cells:
            if not seen or seen[-1] != cell.spec:
                seen.append(cell.spec)
        return seen

    def describe(self) -> Dict[str, int]:
        """Counts for logging: total / pending / cached cells and scenarios."""
        return {
            "cells": len(self.cells),
            "pending": len(self.pending),
            "cached": len(self.cached),
            "scenarios": len(self.specs()),
        }

    def run(self, workers: int = 1) -> "RunSet":
        """Execute the pending cells; see :meth:`Experiment.run`."""
        if isinstance(workers, bool) or not isinstance(workers, int) or workers < 1:
            raise ConfigurationError(f"workers must be a positive int, got {workers!r}")
        return RunSet(plan=self, workers=workers)


def _cell_tracer(collect_timings: bool):
    if not collect_timings:
        return None
    from repro.obs.tracing import TimingTracer

    return TimingTracer()


def execute_cell(
    spec: ScenarioSpec, repetition: int, collect_timings: bool = False
) -> Tuple[Record, CellMeta]:
    """Run one plan cell; the record rides with never-stored execution metadata.

    The unit of work behind both the in-process path and every external
    scheduler (worker pools, the :mod:`repro.service` daemon): given a spec
    and a repetition index it derives the repetition seed, runs the
    scenario and returns ``(record, meta)`` where ``meta`` is
    ``{"backend", "seconds", "stage_seconds"}``.
    """
    tracer = _cell_tracer(collect_timings)
    started = time.perf_counter()
    result = run_scenario(spec, repetition, tracer=tracer)
    meta: CellMeta = {
        "backend": spec.backend,
        "seconds": time.perf_counter() - started,
        "stage_seconds": result.timings,
    }
    record = record_from_result(
        spec, repetition, repetition_seed(spec, repetition), result
    )
    return record, meta


def vectorizable_group(spec: ScenarioSpec, count: int) -> bool:
    """Whether ``count`` pending repetitions of one spec should run batched.

    Multi-repetition groups of vectorizable scenarios are dispatched to the
    vectorized batch backend automatically — it produces field-identical
    records, only faster.  An explicit ``.backend("bitset")`` (or any other
    non-default backend) opts out; a missing numpy keeps the serial path
    (with a once-per-process warning, since it silently costs wall-clock).
    """
    if count < 2 or spec.backend not in ("reference", "batch"):
        return False
    from repro.core.state import numpy_available

    if not numpy_available():
        global _numpy_fallback_warned
        if not _numpy_fallback_warned:
            _numpy_fallback_warned = True
            logger.warning(
                "numpy is not installed; multi-repetition sweeps run serially "
                "(install the repro[fast] extra to vectorize them)"
            )
        return False
    # Imported lazily: repro.backends imports the scenario layer.  The
    # package import must come first — in a fresh worker process, importing
    # repro.batch.backend directly would re-enter the half-initialized
    # backends package through the registration cycle between the two.
    import repro.backends  # noqa: F401
    from repro.batch.backend import can_vectorize_spec

    return can_vectorize_spec(spec)


def execute_group(
    spec: ScenarioSpec,
    repetitions: Sequence[int],
    collect_timings: bool = False,
) -> List[Tuple[Record, CellMeta]]:
    """Run a same-spec repetition group, vectorized when possible.

    The group-level unit of work behind both the in-process path and the
    worker pools: a vectorizable group runs all repetitions as lockstep
    lanes of one batch kernel; anything else runs cell by cell through the
    spec's own backend.  Either way the outcome list is in repetition
    order and each record is field-identical to a serial execution.
    """
    if vectorizable_group(spec, len(repetitions)):
        from repro.backends import BatchBackend

        tracer = _cell_tracer(collect_timings)
        started = time.perf_counter()
        results = BatchBackend().run_batch(spec, list(repetitions), tracer=tracer)
        # Lockstep lanes share the wall clock; an even split keeps the
        # per-cell seconds summing back to the group's true cost.
        lane_seconds = (time.perf_counter() - started) / len(repetitions)
        outcomes: List[Tuple[Record, CellMeta]] = []
        for repetition, result in zip(repetitions, results):
            meta: CellMeta = {
                "backend": "batch",
                "seconds": lane_seconds,
                "stage_seconds": result.timings,
            }
            outcomes.append(
                (
                    record_from_result(
                        spec, repetition, repetition_seed(spec, repetition), result
                    ),
                    meta,
                )
            )
        return outcomes
    return [
        execute_cell(spec, repetition, collect_timings) for repetition in repetitions
    ]


def _execute_pending(
    pending: Sequence["PlanCell"], collect_timings: bool = False
) -> Iterator[Tuple[Record, CellMeta]]:
    """Execute pending cells in plan order, vectorizing eligible groups.

    Plan order is spec-major, so consecutive grouping recovers exactly the
    pending repetitions of each grid cell.
    """
    import itertools

    for spec, group in itertools.groupby(pending, key=lambda cell: cell.spec):
        yield from execute_group(
            spec, [cell.repetition for cell in group], collect_timings
        )


def execute_cell_payload(
    payload: Tuple[str, int, Tuple[str, ...], bool]
) -> Tuple[Record, CellMeta]:
    """Worker entry point: rebuild the spec from JSON and run one cell.

    Picklable by module path, so process pools (``RunSet`` workers, the
    service daemon's pool) can ship cells as
    ``(spec_json, repetition, extension_modules, collect_timings)`` tuples.
    """
    spec_json, repetition, extension_modules, collect_timings = payload
    for module_name in extension_modules:
        importlib.import_module(module_name)
    return execute_cell(ScenarioSpec.from_json(spec_json), repetition, collect_timings)


#: A picklable same-spec repetition group:
#: ``(spec_json, repetitions, extension_modules, collect_timings)``.
GroupPayload = Tuple[str, Tuple[int, ...], Tuple[str, ...], bool]


def execute_group_payload(payload: GroupPayload) -> List[Tuple[Record, CellMeta]]:
    """Worker entry point: rebuild the spec and run a whole repetition group.

    The batch-parallel analogue of :func:`execute_cell_payload`: one task
    per *group*, so a worker process runs all lanes of a vectorizable grid
    cell in one batch-kernel pass while other groups occupy other cores.
    """
    spec_json, repetitions, extension_modules, collect_timings = payload
    for module_name in extension_modules:
        importlib.import_module(module_name)
    return execute_group(
        ScenarioSpec.from_json(spec_json), list(repetitions), collect_timings
    )


def group_payloads(
    pending: Sequence["PlanCell"],
    extensions: Tuple[str, ...],
    collect_timings: bool,
) -> List[GroupPayload]:
    """Pack pending cells into worker tasks, one per batch group.

    Vectorizable groups travel whole (one ``run_batch`` per worker task);
    everything else ships as single-cell groups so the pool still spreads
    serial cells across cores.  Flattening the per-task outcome lists in
    task order reproduces plan order exactly.
    """
    import itertools

    payloads: List[GroupPayload] = []
    for spec, group in itertools.groupby(pending, key=lambda cell: cell.spec):
        repetitions = tuple(cell.repetition for cell in group)
        if vectorizable_group(spec, len(repetitions)):
            payloads.append((spec.to_json(), repetitions, extensions, collect_timings))
        else:
            payloads.extend(
                (spec.to_json(), (repetition,), extensions, collect_timings)
                for repetition in repetitions
            )
    return payloads


class RunSet:
    """The (lazily produced) records of one experiment run.

    Iterating a fresh ``RunSet`` *executes* it: records stream out in
    deterministic batch order as cells complete — cached cells are yielded
    from the store, pending cells run (in-process or across workers) and
    persist through the store the moment they finish, so partial progress
    survives interruption.  After one full pass the records are held in
    memory and every later iteration (or :meth:`records`,
    :meth:`aggregate`, :meth:`report`) replays them without re-executing.
    """

    def __init__(
        self,
        plan: Optional[ExperimentPlan] = None,
        *,
        workers: int = 1,
        records: Optional[Iterable[Record]] = None,
    ) -> None:
        if (plan is None) == (records is None):
            raise ConfigurationError("RunSet needs exactly one of plan= or records=")
        self._plan = plan
        self._workers = workers
        self._records: Optional[List[Record]] = None
        #: Progress of an in-flight (or abandoned) streaming pass: records
        #: for the plan-order prefix of cells handled so far.  An abandoned
        #: iterator's work is kept — the next pass replays it and resumes.
        self._collected: List[Record] = []
        self._active: Optional[Iterator[Record]] = None
        self._executed = 0
        self._stored = 0
        if records is not None:
            self._records = [
                record.to_dict()
                if isinstance(record, RunRecord)  # already validated
                else coerce_record(record).to_dict()
                for record in records
            ]

    @classmethod
    def from_records(
        cls, records: Iterable[Union[Record, Any]]
    ) -> "RunSet":
        """Wrap already-available records (a JSONL file, stdin, a query)."""
        return cls(records=records)

    # -- execution / iteration --------------------------------------------

    def __iter__(self) -> Iterator[Record]:
        if self._records is not None:
            return iter(self._records)
        if self._active is not None:
            # Supersede a partially consumed earlier iterator explicitly —
            # close() runs its cleanup now, on every Python implementation,
            # instead of waiting for garbage collection.  Its progress is
            # kept in _collected and replayed, never re-executed.
            self._active.close()  # type: ignore[attr-defined]
            self._active = None
        iterator = self._execute()
        self._active = iterator
        return iterator

    def _execute(self) -> Iterator[Record]:
        started = time.perf_counter()
        # Replay the progress an abandoned earlier pass already made;
        # those cells executed (and persisted) once and are not re-run —
        # and their events are not re-emitted.
        for record in list(self._collected):
            yield record
        yield from self._stream(start=len(self._collected))
        plan = self._plan
        assert plan is not None
        if plan.observers:
            self._notify(
                RunFinished(
                    cells=len(plan.cells),
                    executed=self._executed,
                    cached=len(self._collected) - self._executed,
                    seconds=time.perf_counter() - started,
                )
            )
        self._records = list(self._collected)

    def _notify(self, event: ProgressEvent) -> None:
        assert self._plan is not None
        for observer in self._plan.observers:
            observer(event)

    def _stream(self, start: int = 0) -> Iterator[Record]:
        plan = self._plan
        assert plan is not None
        remaining = plan.cells[start:]
        pending = [cell for cell in remaining if not cell.cached]
        workers = min(self._workers, len(pending)) if pending else 1
        try:
            if workers <= 1:
                yield from self._interleave(
                    remaining,
                    _execute_pending(pending, plan.collect_timings),
                    start=start,
                )
            else:
                payloads = group_payloads(
                    pending, plan.extensions, plan.collect_timings
                )
                workers = min(workers, len(payloads))
                with multiprocessing.Pool(processes=workers) as pool:
                    # imap (not imap_unordered) keeps batch order, which keeps
                    # parallel output byte-identical to the serial path.  Each
                    # task is one batch group; flattening its outcome list in
                    # task order restores the per-cell plan order.
                    task_results = pool.imap(
                        execute_group_payload, payloads, chunksize=1
                    )
                    yield from self._interleave(
                        remaining,
                        (
                            outcome
                            for outcomes in task_results
                            for outcome in outcomes
                        ),
                        start=start,
                    )
        finally:
            # Shard appends are durable per record; the manifest index is
            # deferred to one write per stream (reopening a store whose
            # stream crashed repairs the index from the shards).
            if plan.store is not None:
                plan.store.flush()

    def _interleave(
        self,
        cells: Sequence[PlanCell],
        fresh: Iterator[Tuple[Record, CellMeta]],
        start: int = 0,
    ) -> Iterator[Record]:
        plan = self._plan
        assert plan is not None
        observers = plan.observers
        total = len(plan.cells)
        for offset, cell in enumerate(cells):
            index = start + offset
            if cell.cached:
                record = cell.cached_record  # type: ignore[assignment]
                if observers:
                    self._notify(
                        CellCached(
                            index=index,
                            total=total,
                            scenario=cell.spec.label,
                            repetition=cell.repetition,
                        )
                    )
            else:
                if observers:
                    self._notify(
                        CellStarted(
                            index=index,
                            total=total,
                            scenario=cell.spec.label,
                            repetition=cell.repetition,
                            backend=cell.spec.backend,
                        )
                    )
                record, meta = next(fresh)
                self._executed += 1
                if plan.store is not None:
                    # replace=True: a cell is only pending when the store has
                    # no *valid* record for it — but a stale one (old schema,
                    # different round cap) may occupy the identity and must
                    # be superseded, not silently skipped.  The manifest
                    # write is deferred to the end of the stream.
                    added, _ = plan.store.add(
                        [record], replace=True, save_manifest=False
                    )
                    self._stored += added
                if observers:
                    self._notify(
                        CellCompleted(
                            index=index,
                            total=total,
                            scenario=cell.spec.label,
                            repetition=cell.repetition,
                            backend=meta["backend"],
                            seconds=meta["seconds"],
                            completed=record["completed"],
                            rounds=record["rounds"],
                            total_messages=record["total_messages"],
                            stage_seconds=meta["stage_seconds"],
                        )
                    )
            self._collected.append(record)
            yield record

    # -- materialized views ------------------------------------------------

    def records(self) -> List[Record]:
        """All records (cached + executed), materializing if needed."""
        if self._records is None:
            for _ in iter(self):
                pass
        assert self._records is not None
        return list(self._records)

    def __len__(self) -> int:
        return len(self.records())

    @property
    def executed_count(self) -> int:
        """How many cells actually executed (0 on a fully cached re-run)."""
        self.records()
        return self._executed

    @property
    def cached_count(self) -> int:
        """How many cells were satisfied from the bound store."""
        self.records()
        return len(self._records or []) - self._executed

    @property
    def stored_count(self) -> int:
        """How many fresh records the bound store accepted."""
        self.records()
        return self._stored

    @property
    def completed(self) -> bool:
        """Whether every execution disseminated all tokens in time."""
        return all(record["completed"] for record in self.records())

    # -- pipeline ----------------------------------------------------------

    def aggregate(
        self,
        by: Optional[Sequence[str]] = None,
        metrics: Optional[Sequence[str]] = None,
    ) -> "Aggregate":
        """Group-by statistical summary of the records."""
        return Aggregate(
            self.records(),
            group_by=tuple(by) if by is not None else DEFAULT_GROUP_BY,
            metrics=tuple(metrics) if metrics is not None else DEFAULT_METRICS,
        )

    def compare(self, bounds: bool = True, *, x_axis: str = "n") -> "Comparison":
        """Shortcut for ``.aggregate().compare(...)``."""
        return self.aggregate().compare(bounds, x_axis=x_axis)

    def report(
        self,
        fmt: str = "md",
        *,
        by: Optional[Sequence[str]] = None,
        metrics: Optional[Sequence[str]] = None,
        x_axis: str = "n",
        title: str = "Results report",
    ) -> str:
        """The full paper-vs-measured report document."""
        return self.aggregate(by=by, metrics=metrics).report(
            fmt, x_axis=x_axis, title=title
        )


class Aggregate:
    """Grouped statistic rows over a record set (lazily computed)."""

    def __init__(
        self,
        records: Sequence[Record],
        *,
        group_by: Sequence[str] = DEFAULT_GROUP_BY,
        metrics: Sequence[str] = DEFAULT_METRICS,
    ) -> None:
        self._records = list(records)
        self._group_by = tuple(group_by)
        self._metrics = tuple(metrics)
        self._rows: Optional[List[Dict[str, Any]]] = None

    @property
    def group_by(self) -> Tuple[str, ...]:
        """The grouping axes."""
        return self._group_by

    @property
    def metrics(self) -> Tuple[str, ...]:
        """The summarized metrics."""
        return self._metrics

    @property
    def rows(self) -> List[Dict[str, Any]]:
        """One summary row per group (mean/median/stddev/CI per metric)."""
        if self._rows is None:
            self._rows = _aggregate_records(self._records, self._group_by, self._metrics)
        return list(self._rows)

    def __iter__(self) -> Iterator[Dict[str, Any]]:
        return iter(self.rows)

    def __len__(self) -> int:
        return len(self.rows)

    def table(
        self,
        fmt: str = "md",
        *,
        statistics: Sequence[str] = ("mean", "ci_low", "ci_high"),
    ) -> str:
        """Render the rows as a text / markdown / CSV / JSON table."""
        return rows_to_table(
            self.rows,
            aggregate_columns(self._group_by, self._metrics, statistics=statistics),
            fmt,
        )

    def compare(self, bounds: bool = True, *, x_axis: str = "n") -> "Comparison":
        """Join the measured scaling against the paper's closed-form bounds."""
        return Comparison(
            self._records,
            group_by=self._group_by,
            metrics=self._metrics,
            x_axis=x_axis,
            with_bounds=bounds,
        )

    def report(
        self, fmt: str = "md", *, x_axis: str = "n", title: str = "Results report"
    ) -> str:
        """The full report without an explicit compare step."""
        return self.compare(x_axis=x_axis).report(fmt, title=title)


class Comparison:
    """Paper-bound verdicts over a record set, plus the final report."""

    def __init__(
        self,
        records: Sequence[Record],
        *,
        group_by: Sequence[str] = DEFAULT_GROUP_BY,
        metrics: Sequence[str] = DEFAULT_METRICS,
        x_axis: str = "n",
        with_bounds: bool = True,
    ) -> None:
        self._records = list(records)
        self._group_by = tuple(group_by)
        self._metrics = tuple(metrics)
        self._x_axis = x_axis
        self._with_bounds = with_bounds
        self._rows: Optional[List[Dict[str, Any]]] = None

    @property
    def rows(self) -> List[Dict[str, Any]]:
        """One verdict row per algorithm with a registered bound."""
        if not self._with_bounds:
            return []
        if self._rows is None:
            self._rows = compare_to_bounds(self._records, x_axis=self._x_axis)
        return list(self._rows)

    def __iter__(self) -> Iterator[Dict[str, Any]]:
        return iter(self.rows)

    def __len__(self) -> int:
        return len(self.rows)

    def table(self, fmt: str = "md") -> str:
        """The verdict table (raises if no algorithm has a registered bound)."""
        if not self._with_bounds:
            raise ConfigurationError(
                "this comparison was built with bounds=False and has no "
                "verdicts to render; build it with compare(bounds=True)"
            )
        rows = self.rows  # cached: the log-log fits run once per Comparison
        if not rows:
            raise ConfigurationError(
                "no algorithm in these records has a registered bound; "
                "see repro.results.compare.register_bound"
            )
        return rows_to_table(rows, COMPARISON_COLUMNS, fmt)

    def report(self, fmt: str = "md", *, title: str = "Results report") -> str:
        """The full document: inventory, aggregates, verdicts, Table 1.

        With ``bounds=False`` the bound-comparison sections (including the
        regenerated Table 1) are omitted.
        """
        if fmt != "md":
            raise ConfigurationError(
                f"the full report is a markdown document (got fmt={fmt!r}); "
                f"use .table(fmt=...) for csv/json/text tables"
            )
        return render_report(
            self._records,
            group_by=self._group_by,
            metrics=self._metrics,
            x_axis=self._x_axis,
            title=title,
            with_bounds=self._with_bounds,
        )


def load_runs(source: Union[str, "RunStore"]) -> RunSet:
    """A :class:`RunSet` over an existing JSONL file or run-store directory.

    The entry point for analyzing records produced elsewhere — it plugs
    straight into the same ``.aggregate(...).compare(...).report(...)``
    pipeline an :class:`Experiment` run returns.
    """
    if isinstance(source, RunStore):
        return RunSet.from_records(source.records())
    return RunSet.from_records(open_source(source))
