"""The vectorized batch kernel: many repetitions of one scenario in lockstep.

:class:`BatchKernel` is the many-lane sibling of
:class:`~repro.core.rounds.RoundKernel`.  It runs every pending repetition
("lane") of one grid cell through the staged round loop at once: one shared
problem (per-repetition seeds never touch problem construction), one shared
:class:`~repro.core.state.BatchKnowledgeState`, one
:class:`~repro.batch.programs.BatchRoundProgram`, and *per lane* everything
that diverges between repetitions — the adversary instance with its own RNG
stream, the :class:`~repro.core.rounds.AdversaryStage` (graph trace, ``TC(E)``),
and the token-learning :class:`~repro.core.events.EventLog`.

The contract is strict replay equivalence: for every lane, the assembled
:class:`~repro.core.result.ExecutionResult` is field-identical to running the
same repetition serially through the bitset kernel — same per-lane RNG
derivation order (algorithm stream first, then adversary), same round count,
same message statistics by kind/round/node, same event order, same trace.
Lanes that complete (or go quiescent) early are masked out of the active set;
their adversary stages stop advancing exactly where a serial run would have
stopped, so traces and adversary RNG consumption stay identical.

Only oblivious adversaries are admitted: vectorized lanes never build round
observations, which is precisely the case where lockstep execution cannot
diverge from serial execution.  The batch *backend* (not this kernel) routes
adaptive scenarios to per-lane serial fallback.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.batch.programs import BatchRoundProgram, LaneAccounting
from repro.core.events import EventLog
from repro.core.problem import DisseminationProblem
from repro.core.result import ExecutionResult
from repro.core.rounds import AdversaryStage, default_round_limit
from repro.core.state import BatchKnowledgeState
from repro.utils.rng import SeedLike, ensure_rng, spawn_rng
from repro.utils.validation import ConfigurationError, require_positive_int


class BatchKernel:
    """Drives ``len(seeds)`` repetitions of one scenario in one vectorized loop.

    Args:
        problem: the shared dissemination instance (identical across
            repetitions by construction — the problem seed has no
            repetition component).
        algorithm: an algorithm exposing :meth:`batch_program_factory`.
        adversaries: one adversary instance per lane; all must be oblivious.
        seeds: one base seed per lane, in lane order.
        max_rounds: round limit; defaults to
            :func:`~repro.core.rounds.default_round_limit`.
        require_connected: enforce per-round connectivity per lane.
        keep_trace: when False, per-lane traces drop round-by-round edge ids
            (``TC(E)`` and removals survive), matching the serial kernel.
        tracer: a :class:`repro.obs.Tracer`; when enabled, each lockstep
            stage runs inside a span and every lane's result carries the
            group's stage seconds divided evenly across lanes (so per-lane
            shares sum back to the group totals).
    """

    def __init__(
        self,
        problem: DisseminationProblem,
        algorithm,
        adversaries: Sequence[object],
        seeds: Sequence[SeedLike],
        *,
        max_rounds: Optional[int] = None,
        require_connected: bool = True,
        keep_trace: bool = True,
        tracer=None,
    ) -> None:
        if len(adversaries) != len(seeds):
            raise ConfigurationError(
                f"got {len(adversaries)} adversaries for {len(seeds)} seeds"
            )
        if not seeds:
            raise ConfigurationError("a batch kernel needs at least one lane")
        for adversary in adversaries:
            if not getattr(adversary, "oblivious", False):
                raise ConfigurationError(
                    "the batch kernel only admits oblivious adversaries; "
                    "adaptive scenarios must fall back to per-lane execution"
                )
        factory = algorithm.batch_program_factory()
        if factory is None:
            raise ConfigurationError(
                f"algorithm {algorithm.name!r} has no batch program"
            )

        self.problem = problem
        self.algorithm = algorithm
        self.adversaries = list(adversaries)
        self.lanes = len(seeds)
        if tracer is None:
            from repro.obs.tracing import NULL_TRACER

            tracer = NULL_TRACER
        self.tracer = tracer
        if max_rounds is None:
            max_rounds = default_round_limit(problem)
        self.max_rounds = require_positive_int(max_rounds, "max_rounds")

        # Per lane, mirror the serial kernel's RNG derivation exactly: the
        # algorithm stream is spawned first, then the adversary stream.
        self.algorithm_rngs = []
        self.adversary_rngs = []
        for seed in seeds:
            base_rng = ensure_rng(seed)
            self.algorithm_rngs.append(spawn_rng(base_rng, "algorithm"))
            self.adversary_rngs.append(spawn_rng(base_rng, "adversary"))

        self.state = BatchKnowledgeState(problem, lanes=self.lanes)
        self.np = self.state.np
        self.nodes = self.state.nodes
        self.n = self.state.n
        self.index_of = self.state.index_of
        self.tokens = self.state.tokens
        self.k = self.state.k
        self.token_index = self.state.token_index

        self.accounting = LaneAccounting(
            self.np, algorithm.communication_model, self.nodes, self.lanes
        )
        self.event_logs: List[EventLog] = [EventLog() for _ in range(self.lanes)]
        self.stages: List[AdversaryStage] = [
            AdversaryStage(
                self.nodes,
                self.index_of,
                adversary,
                require_connected=require_connected,
                keep_trace=keep_trace,
            )
            for adversary in self.adversaries
        ]

        #: ``(lanes,)`` bool mask of lanes still playing rounds.  Programs
        #: must not send, count or learn for inactive lanes.
        self.active_lanes = ~self.state.completed_lanes()
        self.rounds_played = self.np.zeros(self.lanes, dtype=self.np.int64)

        # When every lane's adversary promises a steady topology, the
        # per-lane stage loop can stop after the latest steady round; the
        # traces are settled in one catch-up step at the end of the run.
        steadies = [
            getattr(adversary, "steady_after_round", None)
            for adversary in self.adversaries
        ]
        self._steady_round: Optional[int] = (
            max(steadies) if all(s is not None for s in steadies) else None
        )

        self.program: BatchRoundProgram = factory(self)
        #: Dense ``(lanes, n, n)`` float32 adjacency, maintained only when
        #: the program declares ``needs_dense_adjacency``.
        self.dense_adj = (
            self.np.zeros((self.lanes, self.n, self.n), dtype=self.np.float32)
            if getattr(self.program, "needs_dense_adjacency", False)
            else None
        )

    def stages_advanced(self, round_index: int) -> bool:
        """Whether the per-lane adversary stages stepped this round.

        False once every lane's topology has gone steady: from then on
        ``stages[lane].inserted_ids`` / ``removed_ids`` hold stale values
        from the last stepped round, and programs tracking per-edge history
        must not re-consume them.
        """
        return self._steady_round is None or round_index <= self._steady_round

    def _advance_graphs(self, round_index: int) -> None:
        """Advance the adversary stage of every active lane.

        Inactive lanes are frozen: their traces, adjacency and adversary RNG
        stop exactly where the equivalent serial run stopped.
        """
        if not self.stages_advanced(round_index):
            # Every lane's topology (and dense adjacency) is frozen; traces
            # are caught up in bulk after the round loop.
            return
        np = self.np
        dense = self.dense_adj
        n = self.n
        stages = self.stages
        for lane in np.nonzero(self.active_lanes)[0]:
            stage = stages[lane]
            # Oblivious adversaries never observe, so the stage accepts a
            # missing program/commitment.
            stage.advance(round_index, None, None)
            if dense is not None:
                lane_adj = dense[lane]
                for eid in stage.inserted_ids:
                    a, b = divmod(eid, n)
                    lane_adj[a, b] = 1.0
                    lane_adj[b, a] = 1.0
                for eid in stage.removed_ids:
                    a, b = divmod(eid, n)
                    lane_adj[a, b] = 0.0
                    lane_adj[b, a] = 0.0

    def run(self) -> List[ExecutionResult]:
        """Run every lane to completion (or quiescence, or the round limit)."""
        np = self.np
        program = self.program
        state = self.state
        accounting = self.accounting
        event_logs = self.event_logs
        broadcast = self.algorithm.communication_model.is_broadcast

        program.setup()
        for adversary, rng in zip(self.adversaries, self.adversary_rngs):
            adversary.reset(self.problem, rng)

        # One lockstep round does the numpy work of *all* lanes, so four
        # span entries per round are noise — no separate untraced loop is
        # needed here, unlike the serial kernel.
        tracer = self.tracer
        timings_before = tracer.timings() if tracer.enabled else None
        from repro.obs.tracing import (
            STAGE_ACCOUNTING,
            STAGE_ADVERSARY,
            STAGE_COMMIT,
            STAGE_DELIVERY,
        )

        active = self.active_lanes
        rounds_played = self.rounds_played
        round_index = 0
        while bool(active.any()) and round_index < self.max_rounds:
            round_index += 1
            state.begin_round(round_index)
            accounting.begin_round()
            with tracer.span(STAGE_COMMIT, round=round_index, lanes=self.lanes):
                commitment = program.commit(round_index) if broadcast else None
            with tracer.span(STAGE_ADVERSARY, round=round_index, lanes=self.lanes):
                self._advance_graphs(round_index)
            with tracer.span(STAGE_DELIVERY, round=round_index, lanes=self.lanes):
                program.deliver(round_index, commitment)
            with tracer.span(STAGE_ACCOUNTING, round=round_index, lanes=self.lanes):
                accounting.close_round()
            rounds_played[active] = round_index
            completed = state.completed_lanes()
            # A quiescent, not-completed lane will never send again: stop it
            # early, reported as not completed (serial kernel semantics).
            active &= ~completed
            quiescent = program.quiescent_lanes()
            if quiescent is not None:
                active &= ~quiescent

        # Learnings were stamped with their round as they happened, so one
        # drain per lane rebuilds each event log in serial recording order.
        for lane in range(self.lanes):
            event_logs[lane].extend_segments(state.drain_lane_segments(lane))
        if self._steady_round is not None:
            # Settle each lane's trace to the rounds it actually played.
            for lane in range(self.lanes):
                self.stages[lane].catch_up(int(rounds_played[lane]))

        # Lockstep stages serve all lanes at once; dividing the group's
        # stage seconds evenly across lanes keeps per-lane shares summing
        # back to the group totals (what trace summaries aggregate).
        lane_timings = None
        if timings_before is not None:
            from repro.obs.tracing import timing_delta

            group_timings = timing_delta(timings_before, tracer.timings())
            if group_timings:
                lane_timings = {
                    name: seconds / self.lanes
                    for name, seconds in group_timings.items()
                }

        completed = state.completed_lanes()
        results: List[ExecutionResult] = []
        for lane in range(self.lanes):
            lane_rounds = int(rounds_played[lane])
            adversary = self.adversaries[lane]
            results.append(
                ExecutionResult(
                    algorithm_name=self.algorithm.name,
                    communication_model=self.algorithm.communication_model,
                    problem=self.problem,
                    completed=bool(completed[lane]),
                    rounds=lane_rounds,
                    messages=accounting.statistics(lane, lane_rounds),
                    trace=self.stages[lane].trace,
                    events=event_logs[lane],
                    adversary_name=getattr(
                        adversary, "name", type(adversary).__name__
                    ),
                    timings=dict(lane_timings) if lane_timings else None,
                )
            )
        return results
