"""The ``batch`` execution backend: vectorized multi-repetition dispatch.

:class:`BatchBackend` is the third registered :class:`~repro.backends.base.
EngineBackend`.  Its defining operation is :meth:`BatchBackend.run_batch`:
run *all* pending repetitions of one grid cell at once through a
:class:`~repro.batch.engine.BatchKernel` — one shared problem, one numpy
knowledge cube, per-lane adversaries and RNG streams — and return one
:class:`~repro.core.result.ExecutionResult` per repetition, field-identical
to running each repetition serially.

Vectorization requires two things of a scenario: the algorithm must expose a
batch program (:meth:`~repro.algorithms.base.TokenForwardingAlgorithm.
batch_program_factory`) and the adversary must be oblivious (lockstep lanes
never build round observations).  Everything else — adaptive adversaries,
algorithms without a batch program — still runs under this backend, falling
back per lane to the bitset fast-path kernel, so :meth:`supports` accepts
every scenario.

The backend needs numpy (the ``repro[fast]`` extra) even for the fallback
path: asking for ``batch`` without numpy is a configuration error with an
install hint, not a silent downgrade.
"""

from __future__ import annotations

from typing import List, Optional

from repro.backends.base import EngineBackend, register_backend
from repro.batch.engine import BatchKernel
from repro.core.result import ExecutionResult
from repro.core.rounds import RoundKernel
from repro.core.state import BitsetKnowledgeState, numpy_available, require_numpy
from repro.obs.logs import get_logger
from repro.utils.rng import SeedLike

logger = get_logger(__name__)


def can_vectorize(algorithm, adversary) -> bool:
    """True iff this (algorithm, adversary) pair can run in lockstep lanes."""
    return (
        algorithm.batch_program_factory() is not None
        and getattr(adversary, "oblivious", False)
    )


def batch_program_names() -> List[str]:
    """Registry names of the algorithms with a vectorized batch program.

    Capability discovery instead of a hardcoded allowlist, mirroring
    :func:`repro.backends.bitset.fast_path_names`: every registered
    algorithm is instantiated with its registry defaults and probed through
    :meth:`~repro.algorithms.base.TokenForwardingAlgorithm.batch_program_factory`.
    """
    from repro.scenarios.registry import ALGORITHM_REGISTRY

    names = []
    for name in ALGORITHM_REGISTRY.names():
        try:
            algorithm = ALGORITHM_REGISTRY.create(name)
        except Exception:  # pragma: no cover - misconfigured third-party entry
            continue
        if algorithm.batch_program_factory() is not None:
            names.append(name)
    return names


def can_vectorize_spec(spec) -> bool:
    """True iff the scenario named by ``spec`` can run in lockstep lanes.

    Instantiates the algorithm and adversary from the registries (cheap:
    constructors only) to ask them; never raises for unknown names — the
    caller's normal dispatch path will surface those errors.
    """
    from repro.scenarios.registry import ADVERSARY_REGISTRY, ALGORITHM_REGISTRY

    try:
        algorithm = ALGORITHM_REGISTRY.create(spec.algorithm, **spec.algorithm_params)
        adversary = ADVERSARY_REGISTRY.create(spec.adversary, **spec.adversary_params)
    except Exception:
        return False
    return can_vectorize(algorithm, adversary)


@register_backend(
    "batch",
    description=(
        "vectorized numpy kernel running all repetitions of a scenario in "
        "lockstep; falls back to the bitset kernel per repetition for "
        "adaptive or non-vectorizable scenarios (needs the repro[fast] extra)"
    ),
)
class BatchBackend(EngineBackend):
    """Vectorized multi-repetition execution on ``BatchKnowledgeState``."""

    name = "batch"

    def supports(self, problem, algorithm, adversary) -> Optional[str]:
        # Everything runs: non-vectorizable scenarios use the per-lane
        # bitset fallback.  Only the missing optional dependency refuses.
        if not numpy_available():
            return (
                "numpy is not installed; install the repro[fast] extra "
                "(pip install \"repro[fast]\")"
            )
        return None

    def execution_mode(self, algorithm, adversary) -> str:
        """``"vectorized"`` or ``"fallback"`` — how a scenario would execute."""
        return "vectorized" if can_vectorize(algorithm, adversary) else "fallback"

    def run(
        self,
        problem,
        algorithm,
        adversary,
        *,
        max_rounds: Optional[int] = None,
        seed: SeedLike = None,
        require_connected: bool = True,
        keep_trace: bool = True,
        tracer=None,
    ) -> ExecutionResult:
        """Run one execution: a single-lane batch kernel, or the bitset fallback."""
        require_numpy("the batch backend")
        if can_vectorize(algorithm, adversary):
            kernel = BatchKernel(
                problem,
                algorithm,
                [adversary],
                [seed],
                max_rounds=max_rounds,
                require_connected=require_connected,
                keep_trace=keep_trace,
                tracer=tracer,
            )
            return kernel.run()[0]
        return self._run_fallback(
            problem,
            algorithm,
            adversary,
            max_rounds=max_rounds,
            seed=seed,
            require_connected=require_connected,
            keep_trace=keep_trace,
            tracer=tracer,
        )

    def _run_fallback(
        self,
        problem,
        algorithm,
        adversary,
        *,
        max_rounds: Optional[int],
        seed: SeedLike,
        require_connected: bool,
        keep_trace: bool,
        tracer=None,
    ) -> ExecutionResult:
        logger.debug(
            "batch backend falling back to serial bitset execution for "
            "algorithm %r / adversary %r",
            getattr(algorithm, "name", type(algorithm).__name__),
            getattr(adversary, "name", type(adversary).__name__),
        )
        kernel = RoundKernel(
            problem,
            algorithm,
            adversary,
            state_factory=BitsetKnowledgeState,
            allow_fast_programs=True,
            max_rounds=max_rounds,
            seed=seed,
            require_connected=require_connected,
            keep_trace=keep_trace,
            tracer=tracer,
        )
        return kernel.run()

    def run_batch(
        self,
        spec,
        repetitions: Optional[List[int]] = None,
        *,
        keep_trace: bool = True,
        tracer=None,
    ) -> List[ExecutionResult]:
        """Run repetitions of one spec, vectorized when the scenario allows.

        Args:
            spec: the :class:`~repro.scenarios.spec.ScenarioSpec` to run.
            repetitions: which repetition indices to run (default: all of
                ``range(spec.repetitions)``).  Results come back in the same
                order.
            keep_trace: forwarded to the kernels.

        Vectorized path: one shared problem (the problem seed has no
        repetition component, so every repetition's problem is identical by
        construction), one adversary instance and one seed per lane.
        Fallback path: one fully materialized serial execution per
        repetition.
        """
        require_numpy("the batch backend")
        # Imported lazily: the scenario layer imports repro.backends.
        from repro.scenarios.registry import ADVERSARY_REGISTRY
        from repro.scenarios.runner import materialize, repetition_seed

        if repetitions is None:
            repetitions = list(range(spec.repetitions))
        if not repetitions:
            return []
        seeds = [repetition_seed(spec, repetition) for repetition in repetitions]

        scenario = materialize(spec)
        if can_vectorize(scenario.algorithm, scenario.adversary):
            adversaries = [scenario.adversary] + [
                ADVERSARY_REGISTRY.create(spec.adversary, **spec.adversary_params)
                for _ in repetitions[1:]
            ]
            kernel = BatchKernel(
                scenario.problem,
                scenario.algorithm,
                adversaries,
                seeds,
                max_rounds=spec.max_rounds,
                keep_trace=keep_trace,
                tracer=tracer,
            )
            return kernel.run()

        results = []
        for repetition, seed in zip(repetitions, seeds):
            lane = materialize(spec)
            results.append(
                self._run_fallback(
                    lane.problem,
                    lane.algorithm,
                    lane.adversary,
                    max_rounds=spec.max_rounds,
                    seed=seed,
                    require_connected=True,
                    keep_trace=keep_trace,
                    tracer=tracer,
                )
            )
        return results
