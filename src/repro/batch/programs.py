"""The batch program protocol and per-lane accounting.

A :class:`BatchRoundProgram` is the many-repetition analogue of the serial
:class:`~repro.core.rounds.RoundProgram`: one program instance steps *all
lanes* (independently seeded repetitions of the same problem) of a
:class:`~repro.batch.engine.BatchKernel` through each round.  Lanes that
complete early are masked out via the kernel's ``active_lanes`` array, never
resized — a program must not send, count or learn anything for an inactive
lane.

Batch programs live next to their algorithms (exposed through
:meth:`~repro.algorithms.base.TokenForwardingAlgorithm.batch_program_factory`),
exactly like the PR 5 fast programs, and are held to the same bar: the
per-lane results the kernel assembles must be *field-identical* to running
each repetition serially — same rounds, same message statistics by
kind/round/node, same token-learning event order.

:class:`LaneAccounting` is the per-lane counterpart of the serial
:class:`~repro.core.rounds.AccountingStage`: message counters are
``(lanes,)`` / ``(lanes, n)`` arrays, and :meth:`LaneAccounting.statistics`
reconstructs one lane's :class:`~repro.core.metrics.MessageStatistics` with
the exact filtering semantics of the serial stage (kinds with zero messages
omitted, per-node entries only for nodes that sent).

This module is importable without numpy: array allocation happens at
runtime through the module handle the kernel passes in.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.core.comm import CommunicationModel
from repro.core.metrics import MessageStatistics
from repro.utils.ids import NodeId
from repro.utils.validation import ConfigurationError


class LaneAccounting:
    """Vectorized per-lane message counters.

    One column of counters per round, one row per lane.  ``per_node`` is a
    dense ``(lanes, n)`` int array programs may add bool sender matrices to
    directly; per-kind totals live in ``(lanes,)`` arrays created on first
    use.
    """

    def __init__(self, numpy_module, model: CommunicationModel, nodes: Tuple[NodeId, ...], lanes: int) -> None:
        self.np = numpy_module
        self.model = model
        self.nodes = nodes
        self.lanes = lanes
        self.kind_totals: Dict[str, object] = {}
        self.per_node = numpy_module.zeros((lanes, len(nodes)), dtype=numpy_module.int64)
        self.per_round_columns: List[object] = []
        self._current_column = None

    def begin_round(self) -> None:
        if self._current_column is not None:
            raise ConfigurationError("begin_round called while a round is already open")
        self._current_column = self.np.zeros(self.lanes, dtype=self.np.int64)

    def _kind_array(self, kind_value: str):
        totals = self.kind_totals.get(kind_value)
        if totals is None:
            totals = self.kind_totals[kind_value] = self.np.zeros(
                self.lanes, dtype=self.np.int64
            )
        return totals

    def count_lanes(self, kind_value: str, amounts) -> None:
        """Count ``amounts[lane]`` messages of one kind for every lane at once."""
        self._kind_array(kind_value)
        self.kind_totals[kind_value] += amounts
        self._current_column += amounts

    def count_lane(self, lane: int, kind_value: str, amount: int) -> None:
        """Count ``amount`` messages of one kind on a single lane."""
        if amount:
            self._kind_array(kind_value)[lane] += amount
            self._current_column[lane] += amount

    def close_round(self) -> None:
        if self._current_column is None:
            raise ConfigurationError("close_round called without begin_round")
        self.per_round_columns.append(self._current_column)
        self._current_column = None

    def statistics(self, lane: int, rounds: int) -> MessageStatistics:
        """Freeze one lane's counters, mirroring the serial AccountingStage.

        ``rounds`` is the number of rounds the lane actually played: its
        per-round list stops there, exactly where a serial execution of the
        same repetition would have stopped counting.
        """
        messages_by_kind = {
            kind: int(totals[lane])
            for kind, totals in self.kind_totals.items()
            if int(totals[lane])
        }
        per_node = {
            self.nodes[index]: int(count)
            for index, count in enumerate(self.per_node[lane])
            if count
        }
        return MessageStatistics(
            communication_model=self.model,
            total_messages=sum(messages_by_kind.values()),
            messages_by_kind=messages_by_kind,
            per_round_messages=[
                int(column[lane]) for column in self.per_round_columns[:rounds]
            ],
            per_node_messages=per_node,
        )


class BatchRoundProgram:
    """One algorithm's per-round behaviour across all lanes of a batch kernel.

    The kernel guarantees the call order ``commit`` (broadcast model only)
    → ``deliver`` → per-lane event drain, once per round, and only advances
    the adversary/graph state of *active* lanes.  Programs read the active
    mask from ``kernel.active_lanes`` and must leave inactive lanes
    untouched.
    """

    #: Programs that consume the dense ``(lanes, n, n)`` adjacency set this;
    #: the kernel only materializes the array when a program asks for it.
    needs_dense_adjacency = False

    def __init__(self, kernel, algorithm) -> None:
        self.kernel = kernel
        self.algorithm = algorithm
        self.model: CommunicationModel = algorithm.communication_model
        self.state = kernel.state
        self.accounting = kernel.accounting
        self.nodes = kernel.nodes
        self.n = kernel.n
        self.k = kernel.k
        self.np = kernel.np

    def setup(self) -> None:
        """One-time initialization before the first round."""

    def commit(self, round_index: int) -> object:
        """Commit broadcast payloads for every active lane (broadcast model)."""
        raise NotImplementedError

    def deliver(self, round_index: int, commitment) -> None:
        """Select, deliver and count this round's messages on every active lane."""
        raise NotImplementedError

    def quiescent_lanes(self):
        """A ``(lanes,)`` bool array of lanes that will never send again.

        The kernel stops a quiescent, not-completed lane early (reported as
        not completed), mirroring the serial kernel's quiescence check.
        ``None`` (the default) means "no lane is ever quiescent" and lets the
        kernel skip the mask entirely.
        """
        return None
