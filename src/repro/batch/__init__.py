"""Vectorized batch execution: whole sweeps of repetitions in lockstep.

This package holds the numpy-backed batch execution core:

- :class:`~repro.batch.programs.BatchRoundProgram` — the per-round protocol
  batch programs implement (they live next to their algorithms);
- :class:`~repro.batch.programs.LaneAccounting` — vectorized per-lane
  message counters;
- :class:`~repro.batch.engine.BatchKernel` — the many-lane round loop.

The ``batch`` *backend* lives in :mod:`repro.batch.backend` and is imported
by :mod:`repro.backends` for registration; it is deliberately not imported
here so algorithm modules can import this package without cycling through
the backend registry.  None of these modules import numpy at module level —
numpy is an optional dependency, pulled in lazily when a batch kernel is
constructed (install it with ``pip install "repro[fast]"``).
"""

from repro.batch.engine import BatchKernel
from repro.batch.programs import BatchRoundProgram, LaneAccounting

__all__ = [
    "BatchKernel",
    "BatchRoundProgram",
    "LaneAccounting",
]
