"""Declarative scenario specifications.

A :class:`ScenarioSpec` names a complete experiment — problem, algorithm and
adversary, each by registry name plus keyword parameters, together with the
base seed, repetition count and round limit — as plain JSON-serializable
data.  Because a spec carries no live objects it can be written to disk,
shipped to a worker process and rebuilt there, which is what makes the
parallel :class:`~repro.scenarios.runner.ScenarioRunner` possible.

:func:`sweep` expands a base spec and a parameter grid into the cross
product of concrete specs, e.g.::

    specs = sweep(
        ScenarioSpec(problem="single-source",
                     problem_params={"num_nodes": 16, "num_tokens": 32},
                     algorithm="single-source", adversary="churn"),
        {"problem.num_nodes": [16, 32, 64], "seed": [0, 1, 2]},
    )
"""

from __future__ import annotations

import itertools
import json
from dataclasses import dataclass, field, fields, replace
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence

from repro.utils.validation import ConfigurationError, require_positive_int

#: Grid keys that address a whole spec field rather than a nested parameter.
_TOP_LEVEL_SWEEP_FIELDS = (
    "problem",
    "algorithm",
    "adversary",
    "seed",
    "repetitions",
    "max_rounds",
    "name",
    "backend",
)

#: Spec fields that are execution details, not scientific content: they are
#: excluded from :meth:`ScenarioSpec.scenario_key` (and hence from derived
#: seeds), so changing them never reseeds an experiment.
_EXECUTION_FIELDS = ("name", "repetitions", "max_rounds", "backend")

_PARAM_SECTIONS = {
    "problem": "problem_params",
    "algorithm": "algorithm_params",
    "adversary": "adversary_params",
}


def _validated_params(params: Mapping[str, Any], field_name: str) -> Dict[str, Any]:
    if not isinstance(params, Mapping):
        raise ConfigurationError(f"{field_name} must be a mapping, got {type(params).__name__}")
    for key in params:
        if not isinstance(key, str):
            raise ConfigurationError(f"{field_name} keys must be strings, got {key!r}")
    return dict(params)


@dataclass(frozen=True)
class ScenarioSpec:
    """One named, serializable experiment configuration.

    Attributes:
        problem: registry name of the dissemination problem.
        algorithm: registry name of the token-forwarding algorithm.
        adversary: registry name of the dynamic-network adversary.
        problem_params / algorithm_params / adversary_params: keyword
            parameters forwarded to the registered factories (merged over
            the registration defaults).
        seed: base seed; per-repetition seeds are derived from it together
            with the scenario content, so results are reproducible and
            independent of execution order or process placement.
        repetitions: how many independently seeded executions to run.
        max_rounds: optional round limit (defaults to the engine's bound).
        name: optional human-readable label used in records and reports.
        backend: registry name of the execution backend (see
            :mod:`repro.backends`).  An execution detail like ``name``: it
            never changes the derived seeds, so validated backends produce
            identical records under any choice.
    """

    problem: str
    algorithm: str
    adversary: str
    problem_params: Mapping[str, Any] = field(default_factory=dict)
    algorithm_params: Mapping[str, Any] = field(default_factory=dict)
    adversary_params: Mapping[str, Any] = field(default_factory=dict)
    seed: int = 0
    repetitions: int = 1
    max_rounds: Optional[int] = None
    name: str = ""
    backend: str = "reference"

    def __post_init__(self) -> None:
        for field_name in ("problem", "algorithm", "adversary"):
            value = getattr(self, field_name)
            if not value or not isinstance(value, str):
                raise ConfigurationError(f"{field_name} must be a non-empty registry name")
        for field_name in ("problem_params", "algorithm_params", "adversary_params"):
            object.__setattr__(
                self, field_name, _validated_params(getattr(self, field_name), field_name)
            )
        if isinstance(self.seed, bool) or not isinstance(self.seed, int):
            raise ConfigurationError(f"seed must be an int, got {self.seed!r}")
        require_positive_int(self.repetitions, "repetitions")
        if self.max_rounds is not None:
            require_positive_int(self.max_rounds, "max_rounds")
        if not self.backend or not isinstance(self.backend, str):
            raise ConfigurationError(
                f"backend must be a non-empty registry name, got {self.backend!r}"
            )

    # -- identity ----------------------------------------------------------

    @property
    def label(self) -> str:
        """``name`` if given, otherwise ``algorithm-vs-adversary-on-problem``."""
        return self.name or f"{self.algorithm}-vs-{self.adversary}-on-{self.problem}"

    def scenario_key(self) -> str:
        """Canonical JSON of the scientific content.

        Used to derive per-repetition seeds: two specs describing the same
        experiment get the same random streams regardless of how they are
        labelled, batched or distributed over worker processes.  ``name``
        is excluded (a label is not content), and so are ``repetitions``,
        ``max_rounds`` and ``backend``: raising the repetition count,
        adding a round cap or switching the execution backend must not
        reseed the repetitions already run.
        """
        payload = self.to_dict()
        for execution_field in _EXECUTION_FIELDS:
            payload.pop(execution_field, None)
        return json.dumps(payload, sort_keys=True, separators=(",", ":"))

    # -- serialization -----------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """A plain-dict representation with deterministic content."""
        return {
            "problem": self.problem,
            "problem_params": dict(self.problem_params),
            "algorithm": self.algorithm,
            "algorithm_params": dict(self.algorithm_params),
            "adversary": self.adversary,
            "adversary_params": dict(self.adversary_params),
            "seed": self.seed,
            "repetitions": self.repetitions,
            "max_rounds": self.max_rounds,
            "name": self.name,
            "backend": self.backend,
        }

    def to_json(self, *, indent: Optional[int] = None) -> str:
        """Serialize to JSON; ``from_json`` of the result is the identity."""
        return json.dumps(self.to_dict(), sort_keys=True, indent=indent)

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "ScenarioSpec":
        """Rebuild a spec from :meth:`to_dict` output (extra keys rejected)."""
        if not isinstance(payload, Mapping):
            raise ConfigurationError("scenario payload must be a JSON object")
        known = {spec_field.name for spec_field in fields(cls)}
        unknown = set(payload) - known
        if unknown:
            raise ConfigurationError(
                f"unknown scenario field(s) {sorted(unknown)}; known fields: {sorted(known)}"
            )
        return cls(**dict(payload))

    @classmethod
    def from_json(cls, text: str) -> "ScenarioSpec":
        """Parse the JSON produced by :meth:`to_json`."""
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as error:
            raise ConfigurationError(f"invalid scenario JSON: {error}") from error
        return cls.from_dict(payload)

    # -- derivation --------------------------------------------------------

    def with_params(
        self,
        *,
        problem: Optional[Mapping[str, Any]] = None,
        algorithm: Optional[Mapping[str, Any]] = None,
        adversary: Optional[Mapping[str, Any]] = None,
        **spec_fields: Any,
    ) -> "ScenarioSpec":
        """A copy with section parameters merged and/or spec fields replaced."""
        updates: Dict[str, Any] = dict(spec_fields)
        if problem:
            updates["problem_params"] = {**self.problem_params, **problem}
        if algorithm:
            updates["algorithm_params"] = {**self.algorithm_params, **algorithm}
        if adversary:
            updates["adversary_params"] = {**self.adversary_params, **adversary}
        return replace(self, **updates)


def _apply_sweep_assignment(spec: ScenarioSpec, key: str, value: Any) -> ScenarioSpec:
    if key in _TOP_LEVEL_SWEEP_FIELDS:
        return replace(spec, **{key: value})
    section, _, param = key.partition(".")
    if section in _PARAM_SECTIONS and param:
        return spec.with_params(**{section: {param: value}})
    raise ConfigurationError(
        f"invalid sweep key {key!r}: use one of {_TOP_LEVEL_SWEEP_FIELDS} or "
        f"'problem.<param>', 'algorithm.<param>', 'adversary.<param>'"
    )


def sweep(
    base: ScenarioSpec, grid: Mapping[str, Sequence[Any]]
) -> List[ScenarioSpec]:
    """Cross a parameter grid into concrete specs.

    ``grid`` maps sweep keys to the values to try.  Keys are either spec
    fields (``"seed"``, ``"algorithm"``, ...) or dotted parameter paths
    (``"problem.num_nodes"``).  The expansion order is deterministic: keys
    in the grid's iteration order, values in their given order, with the
    last key varying fastest.
    """
    if not grid:
        return [base]
    keys = list(grid)
    value_lists: List[List[Any]] = []
    for key in keys:
        values = list(grid[key])
        if not values:
            raise ConfigurationError(f"sweep key {key!r} has no values")
        value_lists.append(values)
    specs: List[ScenarioSpec] = []
    for combination in itertools.product(*value_lists):
        spec = base
        for key, value in zip(keys, combination):
            spec = _apply_sweep_assignment(spec, key, value)
        specs.append(spec)
    return specs


def load_specs(lines: Iterable[str]) -> List[ScenarioSpec]:
    """Parse one spec per non-empty line (the JSONL convention)."""
    return [ScenarioSpec.from_json(line) for line in lines if line.strip()]
