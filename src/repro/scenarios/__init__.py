"""The declarative Scenario API: the single front door to the simulator.

Everything the CLI, the benchmarks and the examples run goes through three
layers:

* **registries** (:mod:`repro.scenarios.registry`) name every algorithm,
  adversary and problem, with decorator-based extension for third parties;
* **specs** (:mod:`repro.scenarios.spec`) describe a complete experiment as
  JSON-serializable data, with :func:`sweep` expanding parameter grids;
* the **runner** (:mod:`repro.scenarios.runner`) executes batches of specs
  with derived per-repetition seeds, optional multiprocessing fan-out and
  JSONL persistence.

Quickstart::

    from repro.scenarios import ScenarioSpec, ScenarioRunner, sweep

    base = ScenarioSpec(
        problem="single-source",
        problem_params={"num_nodes": 16, "num_tokens": 32},
        algorithm="single-source",
        adversary="churn",
        repetitions=3,
    )
    specs = sweep(base, {"problem.num_nodes": [16, 32, 64]})
    records = ScenarioRunner(workers=2).run(specs, jsonl_path="results.jsonl")
"""

from repro.scenarios.registry import (
    ADVERSARY_REGISTRY,
    ALGORITHM_REGISTRY,
    PROBLEM_REGISTRY,
    ParameterInfo,
    Registry,
    RegistryEntry,
    register_adversary,
    register_algorithm,
    register_problem,
)
from repro.scenarios import builtins as _builtins  # noqa: F401  (populates registries)
from repro.scenarios.spec import ScenarioSpec, load_specs, sweep
from repro.scenarios.runner import (
    MaterializedScenario,
    ScenarioRunner,
    materialize,
    record_from_result,
    record_to_json_line,
    repetition_seed,
    run_scenario,
    run_spec,
)

__all__ = [
    "ADVERSARY_REGISTRY",
    "ALGORITHM_REGISTRY",
    "PROBLEM_REGISTRY",
    "ParameterInfo",
    "Registry",
    "RegistryEntry",
    "register_adversary",
    "register_algorithm",
    "register_problem",
    "ScenarioSpec",
    "load_specs",
    "sweep",
    "MaterializedScenario",
    "ScenarioRunner",
    "materialize",
    "record_from_result",
    "record_to_json_line",
    "repetition_seed",
    "run_scenario",
    "run_spec",
]
