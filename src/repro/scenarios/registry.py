"""Named registries for algorithms, adversaries and problems.

Every component a scenario can reference is registered under a short stable
name.  The CLI, the benchmark harnesses and :mod:`repro.scenarios.spec` all
enumerate and construct components through these registries instead of
hard-coding dictionaries, so adding an algorithm (or plugging in a
third-party one) is a single decorator::

    from repro.scenarios import register_algorithm

    @register_algorithm("my-gossip", defaults={"fanout": 2})
    class MyGossipAlgorithm(UnicastAlgorithm):
        def __init__(self, fanout: int = 1): ...

The registered callable may be a class or a factory function; its signature
is introspected so ``python -m repro list`` can show the tunable parameters
and their defaults, and so unknown parameters are rejected early with a
helpful message.
"""

from __future__ import annotations

import difflib
import inspect
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Mapping, Optional, Tuple

from repro.utils.validation import ConfigurationError


@dataclass(frozen=True)
class ParameterInfo:
    """One constructor parameter of a registered component."""

    name: str
    required: bool
    default: Any = None
    annotation: str = ""

    def describe(self) -> Dict[str, Any]:
        """A JSON-ready summary (used by ``python -m repro list --json``)."""
        info: Dict[str, Any] = {"name": self.name, "required": self.required}
        if not self.required:
            info["default"] = self.default
        if self.annotation:
            info["annotation"] = self.annotation
        return info


@dataclass(frozen=True)
class RegistryEntry:
    """A named component: factory plus registration-time default parameters."""

    name: str
    factory: Callable[..., Any]
    defaults: Mapping[str, Any] = field(default_factory=dict)
    description: str = ""

    def parameters(self) -> List[ParameterInfo]:
        """The factory's parameters with registration defaults applied."""
        parameters: List[ParameterInfo] = []
        for parameter in self._signature_parameters():
            if parameter.kind in (parameter.VAR_POSITIONAL, parameter.VAR_KEYWORD):
                continue
            if parameter.name in self.defaults:
                default = self.defaults[parameter.name]
                required = False
            elif parameter.default is parameter.empty:
                default = None
                required = True
            else:
                default = parameter.default
                required = False
            annotation = (
                "" if parameter.annotation is parameter.empty else str(parameter.annotation)
            )
            parameters.append(
                ParameterInfo(
                    name=parameter.name,
                    required=required,
                    default=default,
                    annotation=annotation,
                )
            )
        return parameters

    def accepts(self, parameter_name: str) -> bool:
        """Whether the factory accepts the given keyword parameter."""
        for parameter in self._signature_parameters():
            if parameter.kind is parameter.VAR_KEYWORD:
                return True
            if parameter.name == parameter_name and parameter.kind is not parameter.VAR_POSITIONAL:
                return True
        return False

    def create(self, **params: Any) -> Any:
        """Instantiate the component with defaults overridden by ``params``."""
        merged = dict(self.defaults)
        merged.update(params)
        unknown = [name for name in merged if not self.accepts(name)]
        if unknown:
            known = ", ".join(info.name for info in self.parameters()) or "(none)"
            raise ConfigurationError(
                f"{self.name!r} does not accept parameter(s) {sorted(unknown)}; "
                f"known parameters: {known}"
            )
        missing = [
            info.name for info in self.parameters() if info.required and info.name not in merged
        ]
        if missing:
            raise ConfigurationError(
                f"{self.name!r} requires parameter(s) {missing}"
            )
        return self.factory(**merged)

    def describe(self) -> Dict[str, Any]:
        """A JSON-ready summary of the entry."""
        return {
            "name": self.name,
            "description": self.description,
            "parameters": [info.describe() for info in self.parameters()],
        }

    def _signature_parameters(self) -> Tuple[inspect.Parameter, ...]:
        try:
            signature = inspect.signature(self.factory)
        except (TypeError, ValueError):  # builtins / C callables
            return ()
        return tuple(signature.parameters.values())


def _first_docstring_line(obj: Any) -> str:
    doc = inspect.getdoc(obj)
    if not doc:
        return ""
    return doc.strip().splitlines()[0].strip()


class Registry:
    """A case-sensitive name → :class:`RegistryEntry` mapping for one kind."""

    def __init__(self, kind: str):
        self._kind = kind
        self._entries: Dict[str, RegistryEntry] = {}

    @property
    def kind(self) -> str:
        """What this registry holds: ``"algorithm"``, ``"adversary"`` or ``"problem"``."""
        return self._kind

    def register(
        self,
        name: str,
        *,
        defaults: Optional[Mapping[str, Any]] = None,
        description: Optional[str] = None,
        replace: bool = False,
    ) -> Callable[[Callable[..., Any]], Callable[..., Any]]:
        """Decorator registering a class or factory function under ``name``."""
        if not name or not isinstance(name, str):
            raise ConfigurationError(f"{self._kind} registry names must be non-empty strings")

        def decorator(factory: Callable[..., Any]) -> Callable[..., Any]:
            if name in self._entries and not replace:
                raise ConfigurationError(
                    f"{self._kind} {name!r} is already registered; "
                    f"pass replace=True to override"
                )
            self._entries[name] = RegistryEntry(
                name=name,
                factory=factory,
                defaults=dict(defaults or {}),
                description=description
                if description is not None
                else _first_docstring_line(factory),
            )
            return factory

        return decorator

    def get(self, name: str) -> RegistryEntry:
        """The entry for ``name``; raises with a suggestion on a miss.

        A lookup miss never escapes as a bare :class:`KeyError`: it becomes
        a :class:`~repro.utils.validation.ConfigurationError` naming the
        closest registered name (did-you-mean) plus the full known list.
        """
        try:
            return self._entries[name]
        except KeyError:
            known = ", ".join(self.names()) or "(none registered)"
            suggestion = ""
            if isinstance(name, str) and self._entries:
                close = difflib.get_close_matches(name, self.names(), n=1, cutoff=0.5)
                if close:
                    suggestion = f" did you mean {close[0]!r}?"
            raise ConfigurationError(
                f"unknown {self._kind} {name!r};{suggestion} "
                f"known {self._kind}s: {known}"
            ) from None

    def create(self, name: str, **params: Any) -> Any:
        """Instantiate the component registered under ``name``."""
        return self.get(name).create(**params)

    def names(self) -> List[str]:
        """All registered names, sorted."""
        return sorted(self._entries)

    def entries(self) -> List[RegistryEntry]:
        """All entries, sorted by name."""
        return [self._entries[name] for name in self.names()]

    def __contains__(self, name: object) -> bool:
        return name in self._entries

    def __iter__(self) -> Iterator[str]:
        return iter(self.names())

    def __len__(self) -> int:
        return len(self._entries)


ALGORITHM_REGISTRY = Registry("algorithm")
ADVERSARY_REGISTRY = Registry("adversary")
PROBLEM_REGISTRY = Registry("problem")

register_algorithm = ALGORITHM_REGISTRY.register
register_adversary = ADVERSARY_REGISTRY.register
register_problem = PROBLEM_REGISTRY.register
