"""Executing scenario specs: materialization, batches and parallel fan-out.

The execution pipeline is spec-in, records-out:

* :func:`materialize` turns a :class:`~repro.scenarios.spec.ScenarioSpec`
  into live ``(problem, algorithm, adversary)`` objects via the registries;
* :func:`run_scenario` runs one repetition and returns the raw
  :class:`~repro.core.result.ExecutionResult` (for code that needs the full
  object, e.g. benchmarks and examples);
* :func:`run_spec` runs all repetitions of one spec and returns plain-dict
  records ready for JSON;
* :class:`ScenarioRunner` runs a batch of specs — serially or fanned out
  over worker processes — with progress callbacks and JSONL persistence.

Determinism: the seed of repetition ``r`` is derived from
``(spec.seed, spec.scenario_key(), r)`` with a cross-process-stable hash,
and workers rebuild every object from the spec's JSON.  A parallel run
therefore produces byte-identical records to a serial run of the same
batch, regardless of worker count or scheduling.
"""

from __future__ import annotations

import importlib
import json
import multiprocessing
import os
from typing import (
    Any,
    Callable,
    Dict,
    IO,
    List,
    NamedTuple,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.core.engine import Simulator
from repro.core.problem import DisseminationProblem
from repro.core.result import ExecutionResult
from repro.scenarios import builtins as _builtins  # noqa: F401  (populates registries)
from repro.scenarios.registry import (
    ADVERSARY_REGISTRY,
    ALGORITHM_REGISTRY,
    PROBLEM_REGISTRY,
)
from repro.scenarios.spec import ScenarioSpec
from repro.utils.rng import derive_seed
from repro.utils.validation import ConfigurationError

#: ``progress(completed, total, spec)`` called after each spec finishes.
ProgressCallback = Callable[[int, int, ScenarioSpec], None]

#: Version stamped into every emitted record; bump on incompatible layout
#: changes so :mod:`repro.results.records` can reject records it cannot read.
#: v2: the embedded spec gained the ``backend`` field.
RECORD_SCHEMA_VERSION = 2


class MaterializedScenario(NamedTuple):
    """Live objects built from a spec, ready to hand to the Simulator."""

    problem: DisseminationProblem
    algorithm: Any
    adversary: Any


def _build_problem(spec: ScenarioSpec) -> DisseminationProblem:
    entry = PROBLEM_REGISTRY.get(spec.problem)
    params = dict(spec.problem_params)
    # Randomized problem constructors must not fall back to nondeterministic
    # seeding: inject a seed derived from the spec unless one is given.
    if "seed" not in params and entry.accepts("seed"):
        params["seed"] = derive_seed(spec.seed, spec.scenario_key(), "problem")
    return entry.create(**params)


def materialize(spec: ScenarioSpec) -> MaterializedScenario:
    """Build fresh problem, algorithm and adversary objects for one execution."""
    return MaterializedScenario(
        problem=_build_problem(spec),
        algorithm=ALGORITHM_REGISTRY.create(spec.algorithm, **spec.algorithm_params),
        adversary=ADVERSARY_REGISTRY.create(spec.adversary, **spec.adversary_params),
    )


def repetition_seed(spec: ScenarioSpec, repetition: int) -> int:
    """The engine seed used for repetition ``repetition`` of ``spec``."""
    return derive_seed(spec.seed, spec.scenario_key(), repetition)


def run_scenario(
    spec: ScenarioSpec, repetition: int = 0, *, keep_trace: bool = True, tracer=None
) -> ExecutionResult:
    """Run one repetition of ``spec`` and return the full execution result.

    The execution is dispatched to the backend named by ``spec.backend``
    (see :mod:`repro.backends`); all validated backends produce structurally
    identical results, so the choice only affects wall-clock and memory.
    ``tracer`` (a :class:`repro.obs.Tracer`) is forwarded only when given,
    so third-party backends that predate the tracer kwarg keep working
    untraced.
    """
    if repetition < 0 or repetition >= spec.repetitions:
        raise ConfigurationError(
            f"repetition {repetition} out of range for a spec with "
            f"{spec.repetitions} repetition(s)"
        )
    # Imported lazily: repro.backends itself imports the scenario layer (for
    # the shared Registry), so a module-level import here would be circular.
    from repro.backends import get_backend

    scenario = materialize(spec)
    backend = get_backend(spec.backend)
    kwargs: Dict[str, Any] = {}
    if tracer is not None:
        kwargs["tracer"] = tracer
    return backend.run(
        scenario.problem,
        scenario.algorithm,
        scenario.adversary,
        seed=repetition_seed(spec, repetition),
        max_rounds=spec.max_rounds,
        keep_trace=keep_trace,
        **kwargs,
    )


def record_from_result(
    spec: ScenarioSpec, repetition: int, seed: int, result: ExecutionResult
) -> Dict[str, Any]:
    """Flatten one execution into a JSON-ready record."""
    return {
        "schema_version": RECORD_SCHEMA_VERSION,
        "scenario": spec.label,
        "spec": spec.to_dict(),
        "repetition": repetition,
        "seed": seed,
        "n": result.num_nodes,
        "k": result.num_tokens,
        "s": result.problem.num_sources,
        "completed": result.completed,
        "rounds": result.rounds,
        "total_messages": result.total_messages,
        "amortized_messages": result.amortized_messages(),
        "topological_changes": result.topological_changes,
        "adversary_competitive": result.adversary_competitive_messages(),
        "amortized_adversary_competitive": (
            result.amortized_adversary_competitive_messages()
        ),
        "token_learnings": result.token_learnings(),
    }


def run_spec(spec: ScenarioSpec) -> List[Dict[str, Any]]:
    """Run every repetition of one spec and return one record per repetition."""
    records: List[Dict[str, Any]] = []
    for repetition in range(spec.repetitions):
        result = run_scenario(spec, repetition)
        records.append(
            record_from_result(spec, repetition, repetition_seed(spec, repetition), result)
        )
    return records


def record_to_json_line(record: Dict[str, Any]) -> str:
    """The canonical JSONL encoding of one record (stable key order)."""
    return json.dumps(record, sort_keys=True)


def _run_spec_payload(payload: Tuple[str, Tuple[str, ...]]) -> List[Dict[str, Any]]:
    """Worker entry point: rebuild everything from the payload and run it.

    Going through JSON (rather than pickling the dataclass) keeps the
    contract honest: anything a worker needs must round-trip through the
    spec serialization.  ``extension_modules`` are imported first so that
    third-party registrations exist in the worker even under the ``spawn``
    start method, where module-level registration in the parent's script
    is not inherited.
    """
    spec_json, extension_modules = payload
    for module_name in extension_modules:
        importlib.import_module(module_name)
    return run_spec(ScenarioSpec.from_json(spec_json))


class ScenarioRunner:
    """Runs batches of scenario specs, optionally across worker processes.

    Args:
        workers: number of worker processes; ``1`` (default) runs in-process.
        progress: optional callback invoked as ``progress(completed, total,
            spec)`` after each spec's repetitions finish (in batch order).
        extension_modules: importable module names that perform third-party
            registry registrations; workers import them before running any
            spec.  Required for specs referencing non-built-in components
            whenever the multiprocessing start method is ``spawn`` or
            ``forkserver`` (the default on macOS and Windows).
    """

    def __init__(
        self,
        *,
        workers: int = 1,
        progress: Optional[ProgressCallback] = None,
        extension_modules: Sequence[str] = (),
    ) -> None:
        if isinstance(workers, bool) or not isinstance(workers, int) or workers < 1:
            raise ConfigurationError(f"workers must be a positive int, got {workers!r}")
        for module_name in extension_modules:
            if not isinstance(module_name, str) or not module_name:
                raise ConfigurationError(
                    f"extension_modules must be importable module names, got {module_name!r}"
                )
        self._workers = workers
        self._progress = progress
        self._extension_modules = tuple(extension_modules)

    def run(
        self,
        specs: Sequence[ScenarioSpec],
        *,
        jsonl_path: Optional[Union[str, "os.PathLike[str]"]] = None,
    ) -> List[Dict[str, Any]]:
        """Run the batch and return all records in deterministic batch order.

        Records are also appended to ``jsonl_path`` (one JSON object per
        line, created/truncated first) as each spec completes, so partial
        output survives interruption.
        """
        specs = list(specs)
        for spec in specs:
            if not isinstance(spec, ScenarioSpec):
                raise ConfigurationError(f"expected a ScenarioSpec, got {type(spec).__name__}")
        sink: Optional[IO[str]] = None
        records: List[Dict[str, Any]] = []
        try:
            if jsonl_path is not None:
                sink = open(jsonl_path, "w", encoding="utf-8")
            for index, spec_records in enumerate(self._iter_batches(specs)):
                records.extend(spec_records)
                if sink is not None:
                    for record in spec_records:
                        sink.write(record_to_json_line(record) + "\n")
                    sink.flush()
                if self._progress is not None:
                    self._progress(index + 1, len(specs), specs[index])
        finally:
            if sink is not None:
                sink.close()
        return records

    def _iter_batches(self, specs: Sequence[ScenarioSpec]):
        if self._workers == 1 or len(specs) <= 1:
            for spec in specs:
                yield run_spec(spec)
            return
        workers = min(self._workers, len(specs))
        payloads = [(spec.to_json(), self._extension_modules) for spec in specs]
        with multiprocessing.Pool(processes=workers) as pool:
            # imap (not imap_unordered) preserves batch order, which keeps
            # parallel output byte-identical to the serial path.
            for spec_records in pool.imap(_run_spec_payload, payloads, chunksize=1):
                yield spec_records


def execute(
    problem: DisseminationProblem,
    algorithm: Any,
    adversary: Any,
    *,
    seed: int,
    max_rounds: Optional[int] = None,
) -> ExecutionResult:
    """Run one already-materialized execution (shared by the legacy runner)."""
    return Simulator(
        problem, algorithm, adversary, seed=seed, max_rounds=max_rounds
    ).run()
