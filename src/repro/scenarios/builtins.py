"""Registration of every built-in algorithm, adversary and problem.

Importing this module (done automatically by :mod:`repro.scenarios`)
populates the three registries with the components shipped by the library.
The registrations are centralized here — rather than decorating each class
in its home module — so the core packages stay import-order independent;
third-party extensions should use the decorators from
:mod:`repro.scenarios.registry` directly.

The registered names and defaults deliberately match the historical CLI
spellings (``python -m repro run --algorithm oblivious`` keeps meaning a
forced two-phase run with ``center_probability=0.2``).
"""

from __future__ import annotations

from repro.adversaries.adaptive import (
    AdaptiveRewiringAdversary,
    RequestCuttingAdversary,
    StarRecenterAdversary,
)
from repro.adversaries.lower_bound import LowerBoundAdversary
from repro.adversaries.oblivious import (
    ControlledChurnAdversary,
    RandomChurnObliviousAdversary,
    ScheduleAdversary,
)
from repro.algorithms.flooding import FloodingAlgorithm, OneShotFloodingAlgorithm
from repro.algorithms.multi_source import MultiSourceUnicastAlgorithm
from repro.algorithms.naive_unicast import NaiveUnicastAlgorithm
from repro.algorithms.oblivious_multi_source import ObliviousMultiSourceAlgorithm
from repro.algorithms.single_source import SingleSourceUnicastAlgorithm
from repro.algorithms.spanning_tree import SpanningTreeAlgorithm
from repro.core.problem import (
    n_gossip_problem,
    random_assignment_problem,
    single_source_problem,
    uniform_multi_source_problem,
)
from repro.dynamics.generators import static_random_schedule
from repro.scenarios.registry import (
    register_adversary,
    register_algorithm,
    register_problem,
)

# -- algorithms ------------------------------------------------------------

register_algorithm("flooding")(FloodingAlgorithm)
register_algorithm("one-shot-flooding")(OneShotFloodingAlgorithm)
register_algorithm("naive-unicast")(NaiveUnicastAlgorithm)
register_algorithm("spanning-tree")(SpanningTreeAlgorithm)
register_algorithm("single-source")(SingleSourceUnicastAlgorithm)
register_algorithm("multi-source")(MultiSourceUnicastAlgorithm)
register_algorithm(
    "oblivious",
    defaults={"force_two_phase": True, "center_probability": 0.2},
)(ObliviousMultiSourceAlgorithm)

# -- adversaries -----------------------------------------------------------

register_adversary(
    "churn",
    defaults={"changes_per_round": 5, "edge_probability": 0.25},
    description="Oblivious adversary applying a fixed number of edge changes per round.",
)(ControlledChurnAdversary)
register_adversary(
    "static",
    defaults={"changes_per_round": 0, "edge_probability": 0.25, "name": "static"},
    description="A fixed random connected graph (controlled churn with zero changes).",
)(ControlledChurnAdversary)
register_adversary(
    "random",
    defaults={"edge_probability": 0.25},
    description="Oblivious adversary redrawing a random connected graph every period.",
)(RandomChurnObliviousAdversary)
register_adversary("lower-bound")(LowerBoundAdversary)
register_adversary(
    "request-cutting", defaults={"cut_fraction": 0.7}
)(RequestCuttingAdversary)
register_adversary("star-recenter")(StarRecenterAdversary)
register_adversary("adaptive-rewiring")(AdaptiveRewiringAdversary)


@register_adversary(
    "static-random",
    description="A static Erdős–Rényi-style connected graph fixed for the whole run.",
)
def static_random_adversary(
    num_nodes: int, edge_probability: float = 0.35, seed: int = 0
) -> ScheduleAdversary:
    """A :class:`ScheduleAdversary` replaying one static random graph."""
    schedule = static_random_schedule(num_nodes, edge_probability=edge_probability, seed=seed)
    return ScheduleAdversary(schedule, name="static-random")


# -- problems --------------------------------------------------------------

register_problem(
    "single-source",
    description="All k tokens start at one source node (Section 3.1).",
)(single_source_problem)
register_problem(
    "multi-source",
    description="k tokens spread evenly over s random source nodes (Section 3.2).",
)(uniform_multi_source_problem)
register_problem(
    "n-gossip",
    description="One token per node: k = n, s = n.",
)(n_gossip_problem)
register_problem(
    "random-placement",
    description="Each token given to each node independently (Section-2 distribution).",
)(random_assignment_problem)
