"""Registration of every built-in algorithm, adversary and problem.

Importing this module (done automatically by :mod:`repro.scenarios`)
populates the three registries with the components shipped by the library.
The registrations are centralized here — rather than decorating each class
in its home module — so the core packages stay import-order independent;
third-party extensions should use the decorators from
:mod:`repro.scenarios.registry` directly.

The registered names and defaults deliberately match the historical CLI
spellings (``python -m repro run --algorithm oblivious`` keeps meaning a
forced two-phase run with ``center_probability=0.2``).
"""

from __future__ import annotations

from repro.adversaries.adaptive import (
    AdaptiveRewiringAdversary,
    RequestCuttingAdversary,
    StarRecenterAdversary,
)
from repro.adversaries.lower_bound import LowerBoundAdversary
from repro.adversaries.oblivious import (
    ControlledChurnAdversary,
    RandomChurnObliviousAdversary,
    ScheduleAdversary,
)
from repro.algorithms.flooding import FloodingAlgorithm, OneShotFloodingAlgorithm
from repro.algorithms.multi_source import MultiSourceUnicastAlgorithm
from repro.algorithms.naive_unicast import NaiveUnicastAlgorithm
from repro.algorithms.oblivious_multi_source import ObliviousMultiSourceAlgorithm
from repro.algorithms.single_source import SingleSourceUnicastAlgorithm
from repro.algorithms.spanning_tree import SpanningTreeAlgorithm
from repro.core.problem import (
    n_gossip_problem,
    random_assignment_problem,
    single_source_problem,
    uniform_multi_source_problem,
)
from repro.dynamics.generators import (
    churn_schedule,
    edge_markovian_schedule,
    geometric_mobility_schedule,
    path_shuffle_schedule,
    rewiring_regular_schedule,
    star_oscillator_schedule,
    static_random_schedule,
)
from repro.scenarios.registry import (
    register_adversary,
    register_algorithm,
    register_problem,
)

# -- algorithms ------------------------------------------------------------

register_algorithm("flooding")(FloodingAlgorithm)
register_algorithm("one-shot-flooding")(OneShotFloodingAlgorithm)
register_algorithm("naive-unicast")(NaiveUnicastAlgorithm)
register_algorithm("spanning-tree")(SpanningTreeAlgorithm)
register_algorithm("single-source")(SingleSourceUnicastAlgorithm)
register_algorithm("multi-source")(MultiSourceUnicastAlgorithm)
register_algorithm(
    "oblivious",
    defaults={"force_two_phase": True, "center_probability": 0.2},
)(ObliviousMultiSourceAlgorithm)

# -- adversaries -----------------------------------------------------------

register_adversary(
    "churn",
    defaults={"changes_per_round": 5, "edge_probability": 0.25},
    description="Oblivious adversary applying a fixed number of edge changes per round.",
)(ControlledChurnAdversary)
register_adversary(
    "static",
    defaults={"changes_per_round": 0, "edge_probability": 0.25, "name": "static"},
    description="A fixed random connected graph (controlled churn with zero changes).",
)(ControlledChurnAdversary)
register_adversary(
    "random",
    defaults={"edge_probability": 0.25},
    description="Oblivious adversary redrawing a random connected graph every period.",
)(RandomChurnObliviousAdversary)
register_adversary("lower-bound")(LowerBoundAdversary)
register_adversary(
    "request-cutting", defaults={"cut_fraction": 0.7}
)(RequestCuttingAdversary)
register_adversary("star-recenter")(StarRecenterAdversary)
register_adversary("adaptive-rewiring")(AdaptiveRewiringAdversary)


@register_adversary(
    "static-random",
    description="A static Erdős–Rényi-style connected graph fixed for the whole run.",
)
def static_random_adversary(
    num_nodes: int, edge_probability: float = 0.35, seed: int = 0
) -> ScheduleAdversary:
    """A :class:`ScheduleAdversary` replaying one static random graph."""
    schedule = static_random_schedule(num_nodes, edge_probability=edge_probability, seed=seed)
    return ScheduleAdversary(schedule, name="static-random")


# Every dynamics generator is registered as a schedule-replaying adversary so
# its parameters are sweepable (``--grid adversary.churn_fraction=...``) and
# ``python -m repro list`` shows it.  ``num_rounds`` bounds the pre-committed
# schedule; past its end the last round graph repeats (ScheduleAdversary).

_DEFAULT_SCHEDULE_ROUNDS = 512


@register_adversary(
    "churn-schedule",
    description="Pre-committed steady churn: a fraction of edges rewired every round.",
)
def churn_schedule_adversary(
    num_nodes: int,
    num_rounds: int = _DEFAULT_SCHEDULE_ROUNDS,
    edge_probability: float = 0.1,
    churn_fraction: float = 0.3,
    seed: int = 0,
) -> ScheduleAdversary:
    schedule = churn_schedule(
        num_nodes,
        num_rounds,
        edge_probability=edge_probability,
        churn_fraction=churn_fraction,
        seed=seed,
    )
    return ScheduleAdversary(schedule, name="churn-schedule")


@register_adversary(
    "edge-markovian",
    description="Edge-Markovian evolving graph: per-edge birth/death chains.",
)
def edge_markovian_adversary(
    num_nodes: int,
    num_rounds: int = _DEFAULT_SCHEDULE_ROUNDS,
    birth_probability: float = 0.02,
    death_probability: float = 0.2,
    seed: int = 0,
) -> ScheduleAdversary:
    schedule = edge_markovian_schedule(
        num_nodes,
        num_rounds,
        birth_probability=birth_probability,
        death_probability=death_probability,
        seed=seed,
    )
    return ScheduleAdversary(schedule, name="edge-markovian")


@register_adversary(
    "rewiring-regular",
    description="Approximately regular expander-like graphs with per-round chord rewiring.",
)
def rewiring_regular_adversary(
    num_nodes: int,
    num_rounds: int = _DEFAULT_SCHEDULE_ROUNDS,
    degree: int = 4,
    rewire_probability: float = 0.5,
    seed: int = 0,
) -> ScheduleAdversary:
    schedule = rewiring_regular_schedule(
        num_nodes,
        num_rounds,
        degree=degree,
        rewire_probability=rewire_probability,
        seed=seed,
    )
    return ScheduleAdversary(schedule, name="rewiring-regular")


@register_adversary(
    "star-oscillator",
    description="A star whose center moves every period rounds (Θ(n) changes per move).",
)
def star_oscillator_adversary(
    num_nodes: int,
    num_rounds: int = _DEFAULT_SCHEDULE_ROUNDS,
    period: int = 1,
    seed: int = 0,
) -> ScheduleAdversary:
    schedule = star_oscillator_schedule(num_nodes, num_rounds, period=period, seed=seed)
    return ScheduleAdversary(schedule, name="star-oscillator")


@register_adversary(
    "path-shuffle",
    description="A Hamiltonian path reshuffled every period rounds (sparsest churn).",
)
def path_shuffle_adversary(
    num_nodes: int,
    num_rounds: int = _DEFAULT_SCHEDULE_ROUNDS,
    period: int = 1,
    seed: int = 0,
) -> ScheduleAdversary:
    schedule = path_shuffle_schedule(num_nodes, num_rounds, period=period, seed=seed)
    return ScheduleAdversary(schedule, name="path-shuffle")


@register_adversary(
    "geometric-mobility",
    description="Random-waypoint mobility on the unit square with a distance radius.",
)
def geometric_mobility_adversary(
    num_nodes: int,
    num_rounds: int = _DEFAULT_SCHEDULE_ROUNDS,
    radius: float = 0.35,
    speed: float = 0.05,
    seed: int = 0,
) -> ScheduleAdversary:
    schedule = geometric_mobility_schedule(
        num_nodes, num_rounds, radius=radius, speed=speed, seed=seed
    )
    return ScheduleAdversary(schedule, name="geometric-mobility")


# -- problems --------------------------------------------------------------

register_problem(
    "single-source",
    description="All k tokens start at one source node (Section 3.1).",
)(single_source_problem)
register_problem(
    "multi-source",
    description="k tokens spread evenly over s random source nodes (Section 3.2).",
)(uniform_multi_source_problem)
register_problem(
    "n-gossip",
    description="One token per node: k = n, s = n.",
)(n_gossip_problem)
register_problem(
    "random-placement",
    description="Each token given to each node independently (Section-2 distribution).",
)(random_assignment_problem)
