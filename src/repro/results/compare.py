"""Joining measured aggregates against the paper's closed-form bounds.

Every built-in algorithm is bound to the theorem that covers it (a
:class:`BoundSpec`): the metric it constrains, the closed-form evaluator
from :mod:`repro.analysis.bounds` and the paper's expression string.  The
comparison has two parts:

* **pointwise**: at each measured ``(n, k, s)`` the bound is evaluated and a
  ratio-to-bound column is computed (constants in the bounds are 1, so the
  ratio is meaningful up to a constant factor);
* **shape**: the measured means are fitted in log-log space against the
  sweep axis (:func:`repro.analysis.experiments.fit_power_law`) and the
  resulting scaling exponent is compared against the exponent of the bound
  evaluated at the same points.  The verdict is ``within bound`` when the
  measured exponent does not exceed the bound's exponent by more than
  ``slack`` — asymptotic claims survive constant factors, so the exponent,
  not the ratio, decides.

Third-party algorithms join the comparison with :func:`register_bound`.
"""

from __future__ import annotations

from dataclasses import dataclass
from statistics import mean
from typing import Any, Callable, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple, Union

from repro.analysis.bounds import (
    flooding_amortized_upper_bound,
    multi_source_amortized_bound,
    naive_unicast_amortized_upper_bound,
    oblivious_amortized_bound,
    single_source_competitive_bound,
    static_spanning_tree_amortized,
)
from repro.analysis.experiments import fit_power_law
from repro.results.records import RunRecord, coerce_record
from repro.utils.validation import ConfigurationError

#: Verdict strings emitted by the comparison.
VERDICT_WITHIN = "within bound"
VERDICT_ABOVE = "above bound"
VERDICT_INSUFFICIENT = "insufficient data"

#: Allowed excess of the measured scaling exponent over the bound's exponent.
DEFAULT_SLACK = 0.35


@dataclass(frozen=True)
class BoundSpec:
    """The paper bound an algorithm's measurements are compared against."""

    expression: str
    evaluate: Callable[[int, int, int], float]
    metric: str = "amortized_messages"
    source: str = ""

    def __post_init__(self) -> None:
        if not self.expression:
            raise ConfigurationError("a bound needs its paper expression string")
        if not callable(self.evaluate):
            raise ConfigurationError("a bound's evaluate must be callable(n, k, s)")


_ALGORITHM_BOUNDS: Dict[str, BoundSpec] = {}


def register_bound(algorithm: str, bound: BoundSpec, *, replace: bool = False) -> BoundSpec:
    """Attach a bound to an algorithm registry name (extension hook)."""
    if not algorithm or not isinstance(algorithm, str):
        raise ConfigurationError("algorithm must be a non-empty registry name")
    if algorithm in _ALGORITHM_BOUNDS and not replace:
        raise ConfigurationError(
            f"algorithm {algorithm!r} already has a bound; pass replace=True to override"
        )
    _ALGORITHM_BOUNDS[algorithm] = bound
    return bound


def bound_for_algorithm(algorithm: str) -> Optional[BoundSpec]:
    """The registered bound for an algorithm, or ``None``."""
    return _ALGORITHM_BOUNDS.get(algorithm)


def registered_bounds() -> Dict[str, BoundSpec]:
    """A copy of the algorithm → bound mapping."""
    return dict(_ALGORITHM_BOUNDS)


# -- built-in bounds (Section 1 bounds table + Theorems 3.1 / 3.5 / 3.8) ----

register_bound("flooding", BoundSpec(
    expression="n^2",
    evaluate=lambda n, k, s: flooding_amortized_upper_bound(n),
    source="Section 1 (flooding upper bound)",
))
register_bound("one-shot-flooding", BoundSpec(
    expression="n^2",
    evaluate=lambda n, k, s: flooding_amortized_upper_bound(n),
    source="Section 1 (flooding upper bound)",
))
register_bound("naive-unicast", BoundSpec(
    expression="n^2",
    evaluate=lambda n, k, s: naive_unicast_amortized_upper_bound(n),
    source="Section 1 (naive unicast baseline)",
))
register_bound("spanning-tree", BoundSpec(
    expression="n^2/k + n",
    evaluate=lambda n, k, s: static_spanning_tree_amortized(n, k),
    source="Section 1 (static spanning-tree baseline)",
))
register_bound("single-source", BoundSpec(
    expression="(n^2 + nk)/k",
    evaluate=lambda n, k, s: single_source_competitive_bound(n, k) / k,
    metric="amortized_adversary_competitive",
    source="Theorem 3.1",
))
register_bound("multi-source", BoundSpec(
    expression="(n^2 s + nk)/k",
    evaluate=multi_source_amortized_bound,
    metric="amortized_adversary_competitive",
    source="Theorem 3.5",
))
register_bound("oblivious", BoundSpec(
    expression="n^(5/2) log^(5/4) n / k^(3/4)",
    evaluate=lambda n, k, s: oblivious_amortized_bound(n, k),
    source="Theorem 3.8",
))


# -- measured series --------------------------------------------------------


def measured_series(
    records: Iterable[Union[RunRecord, Mapping[str, Any]]],
    *,
    metric: str,
    algorithm: Optional[str] = None,
) -> List[Dict[str, Any]]:
    """Mean metric per (algorithm, n, k, s) point, sorted by dimensions."""
    groups: Dict[Tuple[str, int, int, int], List[float]] = {}
    for raw in records:
        record = coerce_record(raw)
        if algorithm is not None and record.algorithm != algorithm:
            continue
        key = (record.algorithm, record.n, record.k, record.s)
        groups.setdefault(key, []).append(record.metric_value(metric))
    series = []
    for (algorithm_name, n, k, s), values in sorted(groups.items()):
        series.append(
            {
                "algorithm": algorithm_name,
                "n": n,
                "k": k,
                "s": s,
                "runs": len(values),
                "measured": mean(sorted(values)),
            }
        )
    return series


def fit_scaling_exponent(
    points: Sequence[Mapping[str, Any]],
    *,
    x_axis: str = "n",
    y_key: str = "measured",
) -> Optional[float]:
    """The log-log slope of ``y_key`` against ``x_axis``, or ``None``.

    Points sharing an x value are averaged first; at least two distinct,
    strictly positive x values (with positive y) are required for a fit.
    """
    by_x: Dict[float, List[float]] = {}
    for point in points:
        x = float(point[x_axis])
        y = float(point[y_key])
        if x <= 0 or y <= 0:
            continue
        by_x.setdefault(x, []).append(y)
    if len(by_x) < 2:
        return None
    xs = sorted(by_x)
    ys = [mean(sorted(by_x[x])) for x in xs]
    exponent, _ = fit_power_law(xs, ys)
    return exponent


# -- comparison -------------------------------------------------------------


def bound_ratio_rows(
    records: Iterable[Union[RunRecord, Mapping[str, Any]]],
) -> List[Dict[str, Any]]:
    """Pointwise comparison rows: measured mean, bound value and their ratio.

    Algorithms without a registered bound are omitted.
    """
    records = [coerce_record(record) for record in records]
    rows: List[Dict[str, Any]] = []
    for algorithm in sorted({record.algorithm for record in records}):
        bound = bound_for_algorithm(algorithm)
        if bound is None:
            continue
        for point in measured_series(records, metric=bound.metric, algorithm=algorithm):
            value = bound.evaluate(point["n"], point["k"], point["s"])
            rows.append(
                {
                    "algorithm": algorithm,
                    "metric": bound.metric,
                    "n": point["n"],
                    "k": point["k"],
                    "s": point["s"],
                    "runs": point["runs"],
                    "measured": point["measured"],
                    "bound": value,
                    "ratio": (point["measured"] / value) if value > 0 else float("inf"),
                }
            )
    return rows


def compare_to_bounds(
    records: Iterable[Union[RunRecord, Mapping[str, Any]]],
    *,
    x_axis: str = "n",
    slack: float = DEFAULT_SLACK,
) -> List[Dict[str, Any]]:
    """Per-algorithm paper-vs-measured verdict rows.

    Each row carries the bound expression, the fitted measured exponent, the
    bound's own exponent over the same points, the worst ratio-to-bound and
    the verdict.  With fewer than two distinct x values no exponent can be
    fitted and the verdict falls back to the pointwise ratio (within iff the
    measured mean never exceeds the bound by more than a constant factor).
    """
    records = [coerce_record(record) for record in records]
    ratio_rows = bound_ratio_rows(records)
    comparisons: List[Dict[str, Any]] = []
    for algorithm in sorted({row["algorithm"] for row in ratio_rows}):
        bound = _ALGORITHM_BOUNDS[algorithm]
        points = [row for row in ratio_rows if row["algorithm"] == algorithm]
        measured_exponent = fit_scaling_exponent(points, x_axis=x_axis, y_key="measured")
        bound_exponent = fit_scaling_exponent(points, x_axis=x_axis, y_key="bound")
        max_ratio = max(row["ratio"] for row in points)
        if measured_exponent is None or bound_exponent is None:
            # One sweep point: the shape cannot be checked, only the level.
            verdict = VERDICT_INSUFFICIENT if not points else (
                VERDICT_WITHIN if max_ratio <= _RATIO_FALLBACK_FACTOR else VERDICT_ABOVE
            )
        elif measured_exponent <= bound_exponent + slack:
            verdict = VERDICT_WITHIN
        else:
            verdict = VERDICT_ABOVE
        comparisons.append(
            {
                "algorithm": algorithm,
                "metric": bound.metric,
                "paper_bound": f"O({bound.expression})",
                "source": bound.source,
                "points": len(points),
                "runs": sum(row["runs"] for row in points),
                "measured_exponent": measured_exponent,
                "bound_exponent": bound_exponent,
                "max_ratio": max_ratio,
                "verdict": verdict,
            }
        )
    return comparisons


#: Constant-factor allowance when only the level (not the shape) is checkable.
_RATIO_FALLBACK_FACTOR = 8.0
