"""Group-by aggregation of run records with bootstrap confidence intervals.

:func:`aggregate` groups records along any spec axis (record fields,
component names, or dotted component parameters — see
:meth:`repro.results.records.RunRecord.axis_value`) and summarizes each
metric with mean / median / stddev / min / max plus a percentile-bootstrap
confidence interval for the mean.

Everything is deterministic **and order-independent**: group values are
sorted before any statistic is computed and the bootstrap generator is
seeded from the group key and metric name, so aggregating records produced
by a parallel sweep yields byte-identical rows to aggregating the serial
run — or the same records shuffled.
"""

from __future__ import annotations

import json
import random
from statistics import mean, median, pstdev
from typing import Any, Dict, Iterable, List, Mapping, Sequence, Tuple, Union

from repro.results.records import RunRecord, coerce_record
from repro.utils.rng import derive_seed
from repro.utils.validation import ConfigurationError

#: Metrics summarized when the caller does not choose.
DEFAULT_METRICS: Tuple[str, ...] = (
    "total_messages",
    "amortized_messages",
    "rounds",
    "topological_changes",
    "amortized_adversary_competitive",
)

#: Group-by axes used when the caller does not choose.
DEFAULT_GROUP_BY: Tuple[str, ...] = ("algorithm", "adversary", "n", "k")

#: Bootstrap resamples for the confidence interval of the mean.
DEFAULT_RESAMPLES = 200


def bootstrap_ci(
    values: Sequence[float],
    *,
    confidence: float = 0.95,
    resamples: int = DEFAULT_RESAMPLES,
    rng: random.Random,
) -> Tuple[float, float]:
    """A percentile-bootstrap confidence interval for the mean of ``values``."""
    if not values:
        raise ConfigurationError("cannot bootstrap an empty sample")
    if not 0.0 < confidence < 1.0:
        raise ConfigurationError(f"confidence must lie in (0, 1), got {confidence}")
    if len(values) == 1:
        return (values[0], values[0])
    means = sorted(
        mean(rng.choices(values, k=len(values))) for _ in range(resamples)
    )
    tail = (1.0 - confidence) / 2.0
    low_index = int(tail * (resamples - 1))
    high_index = int((1.0 - tail) * (resamples - 1))
    return (means[low_index], means[high_index])


def _group_sort_key(key: Tuple[Any, ...]) -> Tuple:
    # Numbers sort numerically among themselves, everything else as strings,
    # mirroring analysis.experiments.aggregate_records.
    return tuple(
        (0, "", part) if isinstance(part, (int, float)) and not isinstance(part, bool)
        else (1, str(part), 0)
        for part in key
    )


def group_records(
    records: Iterable[Union[RunRecord, Mapping[str, Any]]],
    group_by: Sequence[str] = DEFAULT_GROUP_BY,
) -> Dict[Tuple[Any, ...], List[RunRecord]]:
    """Partition records by the values of the group-by axes.

    Within each group, records are sorted by ``(scenario_key, repetition)``
    so downstream statistics never depend on input order.
    """
    if not group_by:
        raise ConfigurationError("group_by needs at least one axis")
    groups: Dict[Tuple[Any, ...], List[RunRecord]] = {}
    for raw in records:
        record = coerce_record(raw)
        key = tuple(record.axis_value(axis) for axis in group_by)
        groups.setdefault(key, []).append(record)
    for members in groups.values():
        members.sort(key=lambda record: (record.scenario_key(), record.repetition))
    return groups


def aggregate(
    records: Iterable[Union[RunRecord, Mapping[str, Any]]],
    group_by: Sequence[str] = DEFAULT_GROUP_BY,
    metrics: Sequence[str] = DEFAULT_METRICS,
    *,
    confidence: float = 0.95,
    resamples: int = DEFAULT_RESAMPLES,
) -> List[Dict[str, Any]]:
    """Summarize metrics per group; returns one row dictionary per group.

    Each row holds the group-by columns, ``runs`` (the repetition count),
    ``completed`` (whether every member completed) and, for every metric
    ``m``: ``m_mean``, ``m_median``, ``m_std``, ``m_min``, ``m_max``,
    ``m_ci_low`` and ``m_ci_high``.
    """
    groups = group_records(records, group_by)
    rows: List[Dict[str, Any]] = []
    for key in sorted(groups, key=_group_sort_key):
        members = groups[key]
        row: Dict[str, Any] = dict(zip(group_by, key))
        row["runs"] = len(members)
        row["completed"] = all(record.completed for record in members)
        key_json = json.dumps([str(part) for part in key], sort_keys=True)
        for metric in metrics:
            values = sorted(record.metric_value(metric) for record in members)
            rng = random.Random(derive_seed(0, "bootstrap", key_json, metric))
            ci_low, ci_high = bootstrap_ci(
                values, confidence=confidence, resamples=resamples, rng=rng
            )
            row[f"{metric}_mean"] = mean(values)
            row[f"{metric}_median"] = median(values)
            row[f"{metric}_std"] = pstdev(values) if len(values) > 1 else 0.0
            row[f"{metric}_min"] = values[0]
            row[f"{metric}_max"] = values[-1]
            row[f"{metric}_ci_low"] = ci_low
            row[f"{metric}_ci_high"] = ci_high
        rows.append(row)
    return rows


def aggregate_columns(
    group_by: Sequence[str] = DEFAULT_GROUP_BY,
    metrics: Sequence[str] = DEFAULT_METRICS,
    *,
    statistics: Sequence[str] = ("mean", "ci_low", "ci_high"),
) -> List[str]:
    """The column order for rendering :func:`aggregate` rows as a table."""
    columns = list(group_by) + ["runs", "completed"]
    for metric in metrics:
        columns.extend(f"{metric}_{statistic}" for statistic in statistics)
    return columns
