"""Rendering aggregates and bound comparisons as text, markdown, CSV or JSON.

Built on :mod:`repro.analysis.reporting`: the monospace ``format_table`` is
reused for terminal output, and the markdown renderer applies the same value
formatting so numbers look identical across formats.  :func:`render_report`
assembles the full paper-bound report — record inventory, grouped aggregates
with confidence intervals, per-algorithm verdicts and a regenerated
paper-vs-measured Table 1.
"""

from __future__ import annotations

import csv
import io
import json
from statistics import mean
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Union

from repro.analysis.bounds import table1_rows
from repro.analysis.reporting import format_table
from repro.results.aggregate import (
    DEFAULT_GROUP_BY,
    DEFAULT_METRICS,
    aggregate,
    aggregate_columns,
)
from repro.results.compare import bound_ratio_rows, compare_to_bounds
from repro.results.records import RunRecord, coerce_record
from repro.utils.validation import ConfigurationError

#: Formats accepted by every renderer in this module.
FORMATS = ("text", "md", "csv", "json")

#: Column order for the per-algorithm comparison table.
COMPARISON_COLUMNS = (
    "algorithm", "metric", "paper_bound", "points", "runs",
    "measured_exponent", "bound_exponent", "max_ratio", "verdict",
)

#: Column order for the pointwise ratio table.
RATIO_COLUMNS = ("algorithm", "n", "k", "s", "runs", "measured", "bound", "ratio")


def _format_cell(value: Any) -> str:
    if value is None:
        return "—"
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1e6 or abs(value) < 1e-2:
            return f"{value:.3e}"
        return f"{value:,.2f}"
    return str(value)


def render_markdown_table(
    headers: Sequence[str], rows: Sequence[Sequence[Any]]
) -> str:
    """A GitHub-flavoured markdown table."""
    if not headers:
        raise ConfigurationError("a table needs at least one column")
    lines = [
        "| " + " | ".join(headers) + " |",
        "| " + " | ".join("---" for _ in headers) + " |",
    ]
    for row in rows:
        if len(row) != len(headers):
            raise ConfigurationError("every row must have one cell per header")
        lines.append("| " + " | ".join(_format_cell(cell) for cell in row) + " |")
    return "\n".join(lines)


def render_csv_table(headers: Sequence[str], rows: Sequence[Sequence[Any]]) -> str:
    """CSV with a header row (raw values, no display formatting)."""
    buffer = io.StringIO()
    writer = csv.writer(buffer, lineterminator="\n")
    writer.writerow(headers)
    for row in rows:
        writer.writerow(["" if cell is None else cell for cell in row])
    return buffer.getvalue().rstrip("\n")


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
    fmt: str = "md",
) -> str:
    """Dispatch to the text / markdown / CSV / JSON renderer."""
    if fmt == "text":
        return format_table(headers, [[_format_cell(cell) for cell in row] for row in rows])
    if fmt == "md":
        return render_markdown_table(headers, rows)
    if fmt == "csv":
        return render_csv_table(headers, rows)
    if fmt == "json":
        return json.dumps(
            [dict(zip(headers, row)) for row in rows], indent=2, sort_keys=True
        )
    raise ConfigurationError(f"unknown format {fmt!r}; use one of {FORMATS}")


def rows_to_table(
    row_dicts: Sequence[Mapping[str, Any]],
    columns: Sequence[str],
    fmt: str = "md",
) -> str:
    """Render dictionaries through :func:`render_table` with a fixed column order."""
    return render_table(
        columns, [[row.get(column) for column in columns] for row in row_dicts], fmt
    )


def render_aggregates(
    records: Iterable[Union[RunRecord, Mapping[str, Any]]],
    *,
    group_by: Sequence[str] = DEFAULT_GROUP_BY,
    metrics: Sequence[str] = DEFAULT_METRICS,
    fmt: str = "md",
    statistics: Sequence[str] = ("mean", "ci_low", "ci_high"),
) -> str:
    """Aggregate records and render the rows in the requested format."""
    rows = aggregate(records, group_by, metrics)
    return rows_to_table(rows, aggregate_columns(group_by, metrics, statistics=statistics), fmt)


def render_comparison(
    records: Iterable[Union[RunRecord, Mapping[str, Any]]],
    *,
    fmt: str = "md",
    x_axis: str = "n",
) -> str:
    """Render the per-algorithm paper-vs-measured verdict table."""
    rows = compare_to_bounds(records, x_axis=x_axis)
    if not rows:
        raise ConfigurationError(
            "no algorithm in these records has a registered bound; "
            "see repro.results.compare.register_bound"
        )
    return rows_to_table(rows, COMPARISON_COLUMNS, fmt)


def render_table1_vs_measured(
    records: Sequence[RunRecord],
    *,
    fmt: str = "md",
) -> str:
    """Regenerate Table 1 at the largest measured n, with a measured column.

    For each of the paper's k regimes the analytic amortized bound is shown
    next to the mean measured amortized cost of the oblivious-algorithm runs
    whose k is closest to the regime's k (only exact-n runs participate);
    regimes with no nearby measurement show an em dash.
    """
    if not records:
        raise ConfigurationError("no records to compare against Table 1")
    # Anchor n on the oblivious runs when any exist — Table 1 is about the
    # oblivious algorithm, and another algorithm's larger sweep must not
    # push n past every measurement.
    oblivious_ns = [record.n for record in records if record.algorithm == "oblivious"]
    n = max(oblivious_ns) if oblivious_ns else max(record.n for record in records)
    oblivious = [
        record for record in records
        if record.algorithm == "oblivious" and record.n == n
    ]
    rows = []
    for table_row in table1_rows(n):
        measured: Optional[float] = None
        if oblivious:
            nearest_k = min(
                (record.k for record in oblivious),
                key=lambda k: (abs(k - table_row.num_tokens), k),
            )
            if 0.5 <= nearest_k / table_row.num_tokens <= 2.0:
                measured = mean(
                    sorted(
                        record.amortized_messages
                        for record in oblivious
                        if record.k == nearest_k
                    )
                )
        rows.append(
            [
                table_row.label,
                f"O({table_row.paper_expression})",
                table_row.amortized_bound,
                measured,
            ]
        )
    headers = ["tokens (k)", "paper bound", "evaluated bound", "measured amortized"]
    return render_table(headers, rows, fmt)


def render_report(
    records: Iterable[Union[RunRecord, Mapping[str, Any]]],
    *,
    group_by: Sequence[str] = DEFAULT_GROUP_BY,
    metrics: Sequence[str] = DEFAULT_METRICS,
    x_axis: str = "n",
    title: str = "Results report",
    with_bounds: bool = True,
) -> str:
    """The full markdown report: inventory, aggregates, verdicts, Table 1.

    ``with_bounds=False`` omits the paper-bound comparison sections (and
    the Table 1 regeneration, which is itself a bound comparison).
    """
    records = [coerce_record(record) for record in records]
    if not records:
        raise ConfigurationError("no records to report on")
    algorithms = sorted({record.algorithm for record in records})
    adversaries = sorted({record.adversary for record in records})
    sections = [
        f"# {title}",
        "",
        f"- records: **{len(records)}** "
        f"({sum(1 for record in records if record.completed)} completed)",
        f"- algorithms: {', '.join(f'`{name}`' for name in algorithms)}",
        f"- adversaries: {', '.join(f'`{name}`' for name in adversaries)}",
        f"- n range: {min(record.n for record in records)}"
        f"–{max(record.n for record in records)}, "
        f"k range: {min(record.k for record in records)}"
        f"–{max(record.k for record in records)}",
        "",
        f"## Aggregates (grouped by {', '.join(group_by)})",
        "",
        render_aggregates(records, group_by=group_by, metrics=metrics, fmt="md"),
        "",
    ]
    ratio_rows = bound_ratio_rows(records) if with_bounds else []
    if ratio_rows:
        sections += [
            "## Paper bounds vs measured",
            "",
            rows_to_table(compare_to_bounds(records, x_axis=x_axis), COMPARISON_COLUMNS, "md"),
            "",
            "### Pointwise ratio to bound",
            "",
            rows_to_table(ratio_rows, RATIO_COLUMNS, "md"),
            "",
        ]
    if with_bounds:
        sections += [
            "## Table 1 (paper vs measured)",
            "",
            render_table1_vs_measured(records, fmt="md"),
            "",
        ]
    return "\n".join(sections)
