"""An append-only on-disk store of run records, sharded by scenario.

Layout::

    <store>/
        manifest.json           # shard index keyed by scenario_key hash
        shards/<shard_id>.jsonl # one shard per scenario_key, append-only

Each shard holds every repetition of one scenario (one
:meth:`~repro.scenarios.spec.ScenarioSpec.scenario_key`).  The manifest keeps
per-shard metadata — the scenario key itself plus the algorithm / adversary /
problem names and the repetition count — so queries can skip shards without
opening them.

Writes are idempotent: a record's identity is ``(scenario_key, repetition)``,
and re-adding an identity that is already present is a no-op.  That makes
merging the outputs of parallel workers (or re-running the same sweep) safe:
the store converges to the same contents regardless of how many times and in
which order the same records arrive.

``add(..., replace=True)`` upgrades an existing identity instead of
skipping it: the new record is appended and reads take the **last**
occurrence per repetition (last-wins), which is how the incremental
runner (:mod:`repro.api`) refreshes records written under an older schema
without breaking the append-only layout.
"""

from __future__ import annotations

import contextlib
import hashlib
import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import (
    Any,
    Callable,
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Tuple,
    Union,
)

try:  # Advisory multi-writer locking; absent on non-POSIX platforms.
    import fcntl
except ImportError:  # pragma: no cover - windows
    fcntl = None  # type: ignore[assignment]

from repro.results.records import RunRecord, coerce_record, iter_records
from repro.utils.validation import ConfigurationError

_MANIFEST_NAME = "manifest.json"
_SHARD_DIR = "shards"
_LOCK_NAME = ".lock"
_MANIFEST_VERSION = 1


def shard_id_for_key(scenario_key: str) -> str:
    """The stable shard identifier (hex digest prefix) of a scenario key."""
    return hashlib.sha256(scenario_key.encode("utf-8")).hexdigest()[:16]


@dataclass(frozen=True)
class StoreAppendEvent:
    """One shard append, as delivered to registered store listeners.

    Emitted under the store's writer lock immediately after the shard file
    grows, so a listener sees the append atomically with respect to other
    writers.  ``before``/``after`` are ``(mtime_ns, size_bytes)`` watermarks
    of the shard file around the append (``before`` is ``None`` for a brand
    new shard) — derived indexes compare ``before`` against their recorded
    watermark to decide whether they may fold ``records`` in directly or
    must re-read the shard.
    """

    shard_id: str
    scenario_key: str
    records: Tuple[RunRecord, ...]
    #: Repetitions that were already present and are superseded (last-wins).
    replaced: FrozenSet[int]
    before: Optional[Tuple[int, int]]
    after: Tuple[int, int]


#: A store append listener (see :meth:`RunStore.add_listener`).
StoreListener = Callable[[StoreAppendEvent], None]


class RunStore:
    """A directory of JSONL shards plus a manifest, with dedup on ingest."""

    def __init__(self, path: Union[str, "os.PathLike[str]"]):
        self._path = Path(path)
        self._manifest_path = self._path / _MANIFEST_NAME
        self._shard_dir = self._path / _SHARD_DIR
        if self._path.exists() and not self._path.is_dir():
            raise ConfigurationError(f"store path {self._path} exists and is not a directory")
        self._path.mkdir(parents=True, exist_ok=True)
        self._shard_dir.mkdir(exist_ok=True)
        self._manifest = self._load_manifest()
        # Per-shard repetition sets already seen, filled lazily from the
        # shard files; assumes this instance is the only writer while open.
        self._known: Dict[str, set] = {}
        # Per-shard latest JSON line per repetition, kept in sync by this
        # writer; populated lazily on the first replace-mode add to a shard
        # so upgrades do not re-read the shard on every call.
        self._latest_lines: Dict[str, Dict[int, str]] = {}
        # True when in-memory manifest changes have not been saved to disk
        # (add(..., save_manifest=False)); flush() persists them.
        self._manifest_dirty = False
        # Append listeners (e.g. the warehouse index keeping itself warm);
        # notified under the writer lock right after each shard append.
        self._listeners: List[StoreListener] = []
        self._recover_orphan_shards()

    # -- manifest ----------------------------------------------------------

    @property
    def path(self) -> Path:
        """The store's root directory."""
        return self._path

    def _load_manifest(self) -> Dict[str, Any]:
        if not self._manifest_path.exists():
            return {"version": _MANIFEST_VERSION, "shards": {}}
        try:
            with open(self._manifest_path, "r", encoding="utf-8") as handle:
                manifest = json.load(handle)
        except (OSError, json.JSONDecodeError) as error:
            raise ConfigurationError(
                f"unreadable store manifest {self._manifest_path}: {error}"
            ) from error
        version = manifest.get("version")
        if version != _MANIFEST_VERSION:
            raise ConfigurationError(
                f"store manifest {self._manifest_path} has version {version!r}; "
                f"this build reads version {_MANIFEST_VERSION}"
            )
        if not isinstance(manifest.get("shards"), dict):
            raise ConfigurationError(
                f"store manifest {self._manifest_path} is missing its shard index"
            )
        return manifest

    @contextlib.contextmanager
    def _write_lock(self) -> Iterator[None]:
        """Advisory exclusive lock serialising writers across processes.

        The service daemon and a concurrent ``repro sweep --store`` may
        append to the same store; the lock keeps shard appends and the
        manifest replace from interleaving mid-write.  Best effort: where
        ``fcntl`` is unavailable the store falls back to unlocked writes
        (single-writer semantics, as before).
        """
        if fcntl is None:
            yield
            return
        with open(self._path / _LOCK_NAME, "a+b") as handle:
            fcntl.flock(handle.fileno(), fcntl.LOCK_EX)
            try:
                yield
            finally:
                fcntl.flock(handle.fileno(), fcntl.LOCK_UN)

    def _save_manifest(self) -> None:
        # Write-then-rename so a crash mid-write never corrupts the index.
        # The temporary name carries the pid so concurrent writers never
        # stage into (and replace from) the same file.
        temporary = self._manifest_path.with_suffix(f".json.{os.getpid()}.tmp")
        with self._write_lock():
            with open(temporary, "w", encoding="utf-8") as handle:
                json.dump(self._manifest, handle, indent=2, sort_keys=True)
                handle.write("\n")
            os.replace(temporary, self._manifest_path)

    def _shard_path(self, shard_id: str) -> Path:
        return self._shard_dir / f"{shard_id}.jsonl"

    def _recover_orphan_shards(self) -> None:
        """Re-index shard files a crash left out of the manifest.

        Shard appends land before the manifest save, so a crash in between
        leaves a complete shard with no (or a stale) index entry.  Recovery
        rebuilds those entries from the shard contents, making the data
        visible again and keeping dedup exact.
        """
        recovered = False
        for path in sorted(self._shard_dir.glob("*.jsonl")):
            shard_id = path.stem
            if shard_id in self._manifest["shards"]:
                continue
            records = list(self._iter_shard(shard_id))
            if not records:
                continue
            self._known[shard_id] = {record.repetition for record in records}
            self._manifest["shards"][shard_id] = self._shard_entry(records[0], shard_id)
            recovered = True
        if recovered:
            self._save_manifest()

    def _shard_entry(self, sample: RunRecord, shard_id: str) -> Dict[str, Any]:
        return {
            "scenario_key": sample.scenario_key(),
            "scenario": sample.scenario,
            "algorithm": sample.algorithm,
            "adversary": sample.adversary,
            "problem": sample.problem,
            "count": len(self._known[shard_id]),
        }

    # -- listeners ---------------------------------------------------------

    def add_listener(self, listener: StoreListener) -> None:
        """Register a callback for every shard append this writer performs.

        The callback runs synchronously under the store's writer lock (so
        it observes the append atomically w.r.t. other processes) and must
        not write to this store.  Registering the same callable twice is a
        no-op.
        """
        if listener not in self._listeners:
            self._listeners.append(listener)

    def remove_listener(self, listener: StoreListener) -> None:
        """Deregister a callback registered with :meth:`add_listener`."""
        with contextlib.suppress(ValueError):
            self._listeners.remove(listener)

    # -- ingest ------------------------------------------------------------

    def add(
        self,
        records: Iterable[Union[RunRecord, Mapping[str, Any]]],
        *,
        replace: bool = False,
        save_manifest: bool = True,
    ) -> Tuple[int, int]:
        """Append new records, skipping known identities.

        Returns ``(added, skipped)``.  Accepts both :class:`RunRecord`
        objects and the plain dictionaries :class:`ScenarioRunner` emits.
        With ``replace=True`` a record whose identity is already present
        but whose **content differs** is appended anyway and supersedes
        the stored one (last-wins on read); identical re-adds still skip.

        ``save_manifest=False`` defers the manifest write (call
        :meth:`flush` when done) so a stream of many small adds does not
        rewrite the index per record.  The shard appends themselves are
        always immediate, and a crash before the flush only leaves the
        index behind the shards — the same state an interrupted batched
        add can leave, which reopening repairs (orphan shards re-indexed,
        stale counts refreshed on the next add)."""
        by_shard: Dict[str, List[RunRecord]] = {}
        keys: Dict[str, str] = {}
        for raw in records:
            record = coerce_record(raw)
            key = record.scenario_key()
            shard_id = shard_id_for_key(key)
            existing_key = keys.setdefault(shard_id, key)
            if existing_key != key:
                raise ConfigurationError(
                    f"scenario-key hash collision in shard {shard_id}: "
                    f"{existing_key!r} vs {key!r}"
                )
            by_shard.setdefault(shard_id, []).append(record)
        added = skipped = 0
        manifest_changed = False
        for shard_id in sorted(by_shard):
            shard_added, shard_skipped, shard_changed = self._append_to_shard(
                shard_id, keys[shard_id], by_shard[shard_id], replace=replace
            )
            added += shard_added
            skipped += shard_skipped
            manifest_changed = manifest_changed or shard_changed
        if manifest_changed:
            if save_manifest:
                self._save_manifest()
                self._manifest_dirty = False
            else:
                self._manifest_dirty = True
        return added, skipped

    def flush(self) -> None:
        """Persist a manifest deferred by ``add(..., save_manifest=False)``."""
        if self._manifest_dirty:
            self._save_manifest()
            self._manifest_dirty = False

    def _append_to_shard(
        self,
        shard_id: str,
        scenario_key: str,
        records: List[RunRecord],
        *,
        replace: bool = False,
    ) -> Tuple[int, int, bool]:
        entry = self._manifest["shards"].get(shard_id)
        if entry is not None and entry.get("scenario_key") != scenario_key:
            raise ConfigurationError(
                f"shard {shard_id} already holds a different scenario key"
            )
        # Dedup against the shard file itself, not the manifest: a crash
        # between shard append and manifest save must not allow duplicates.
        known = self._known.get(shard_id)
        if known is None:
            known = {record.repetition for record in self._iter_shard(shard_id)}
            self._known[shard_id] = known
        fresh: List[RunRecord] = []
        replaced: set = set()
        for record in sorted(records, key=lambda record: record.repetition):
            if record.repetition in known:
                if not replace:
                    continue
                current = self._latest_lines.get(shard_id)
                if current is None:
                    # One shard read, then kept in sync by this writer.
                    current = {
                        stored.repetition: stored.to_json_line()
                        for stored in self._latest_records(shard_id)
                    }
                    self._latest_lines[shard_id] = current
                if current.get(record.repetition) == record.to_json_line():
                    continue  # identical content: a replace is still idempotent
                current[record.repetition] = record.to_json_line()
                replaced.add(record.repetition)
                fresh.append(record)
                continue
            known.add(record.repetition)
            fresh.append(record)
        skipped = len(records) - len(fresh)
        if fresh:
            path = self._shard_path(shard_id)
            with self._write_lock():
                before: Optional[Tuple[int, int]] = None
                if self._listeners and path.exists():
                    stat = path.stat()
                    before = (stat.st_mtime_ns, stat.st_size)
                with open(path, "a", encoding="utf-8") as handle:
                    for record in fresh:
                        handle.write(record.to_json_line() + "\n")
                if self._listeners:
                    stat = path.stat()
                    event = StoreAppendEvent(
                        shard_id=shard_id,
                        scenario_key=scenario_key,
                        records=tuple(fresh),
                        replaced=frozenset(replaced),
                        before=before,
                        after=(stat.st_mtime_ns, stat.st_size),
                    )
                    for listener in list(self._listeners):
                        listener(event)
            cache = self._latest_lines.get(shard_id)
            if cache is not None:
                for record in fresh:
                    cache[record.repetition] = record.to_json_line()
        # Refresh the index entry even without new records: a previous crash
        # may have left its count behind the shard contents.
        new_entry = self._shard_entry(records[0], shard_id)
        changed = new_entry != entry
        if changed:
            self._manifest["shards"][shard_id] = new_entry
        return len(fresh), skipped, changed

    def ingest_jsonl(
        self, path: Union[str, "os.PathLike[str]"], *, on_error: str = "raise"
    ) -> Tuple[int, int]:
        """Merge a runner-produced JSONL file into the store."""
        with open(path, "r", encoding="utf-8") as handle:
            return self.add(iter_records(handle, source=str(path), on_error=on_error))

    def merge(self, other: Union["RunStore", str, "os.PathLike[str]"]) -> Tuple[int, int]:
        """Merge another store (e.g. a parallel worker's output directory)."""
        if not isinstance(other, RunStore):
            other = RunStore(other)
        return self.add(other.records())

    # -- queries -----------------------------------------------------------

    def scenario_keys(self) -> List[str]:
        """All scenario keys in the store, sorted."""
        return sorted(
            entry["scenario_key"] for entry in self._manifest["shards"].values()
        )

    def records_for_key(self, scenario_key: str) -> List[RunRecord]:
        """Every stored record of one scenario, sorted by repetition.

        The lookup goes straight to the scenario's shard via the manifest,
        so planning an incremental run over a large store only opens the
        shards it actually needs.
        """
        shard_id = shard_id_for_key(scenario_key)
        entry = self._manifest["shards"].get(shard_id)
        if entry is None or entry.get("scenario_key") != scenario_key:
            return []
        return self._latest_records(shard_id)

    def repetitions_present(
        self, scenario_key: str, *, schema_version: Optional[int] = None
    ) -> Dict[int, RunRecord]:
        """Map ``repetition -> stored record`` for one scenario.

        With ``schema_version`` given, records written under a different
        schema are omitted — they do not satisfy an incremental-run cell
        and must be re-executed (see :meth:`repro.api.Experiment.plan`).
        """
        return {
            record.repetition: record
            for record in self.records_for_key(scenario_key)
            if schema_version is None or record.schema_version == schema_version
        }

    def __len__(self) -> int:
        return sum(entry.get("count", 0) for entry in self._manifest["shards"].values())

    def _iter_shard(self, shard_id: str) -> Iterator[RunRecord]:
        path = self._shard_path(shard_id)
        if not path.exists():
            return
        with open(path, "r", encoding="utf-8") as handle:
            yield from iter_records(handle, source=str(path))

    def _latest_records(self, shard_id: str) -> List[RunRecord]:
        """One record per repetition — the last occurrence wins.

        A shard normally holds each repetition once; ``add(replace=True)``
        appends superseding versions, and this is the canonical read that
        resolves them.
        """
        latest: Dict[int, RunRecord] = {}
        for record in self._iter_shard(shard_id):
            latest[record.repetition] = record
        return [latest[repetition] for repetition in sorted(latest)]

    def records(self) -> List[RunRecord]:
        """Every record, in deterministic (scenario_key, repetition) order."""
        return self.query()

    def query(
        self,
        *,
        algorithm: Optional[str] = None,
        adversary: Optional[str] = None,
        problem: Optional[str] = None,
        where: Optional[Mapping[str, Any]] = None,
    ) -> List[RunRecord]:
        """Records filtered by component names and/or axis values.

        ``where`` maps group-by axes (see :meth:`RunRecord.axis_value`) to
        required values, e.g. ``{"problem.num_nodes": 16, "seed": 0}``.
        The result is sorted by ``(scenario_key, repetition)``, so query
        output is independent of ingestion order.
        """
        shard_ids = []
        for shard_id, entry in self._manifest["shards"].items():
            if algorithm is not None and entry.get("algorithm") != algorithm:
                continue
            if adversary is not None and entry.get("adversary") != adversary:
                continue
            if problem is not None and entry.get("problem") != problem:
                continue
            shard_ids.append((entry["scenario_key"], shard_id))
        results: List[RunRecord] = []
        for _, shard_id in sorted(shard_ids):
            for record in self._latest_records(shard_id):
                if where and any(
                    record.axis_value(axis) != value for axis, value in where.items()
                ):
                    continue
                results.append(record)
        results.sort(key=lambda record: (record.scenario_key(), record.repetition))
        return results


def is_store_path(path: Union[str, "os.PathLike[str]"]) -> bool:
    """Whether ``path`` looks like a run-store directory."""
    path = Path(path)
    return path.is_dir() and (path / _MANIFEST_NAME).exists()


def open_source(
    path: Union[str, "os.PathLike[str]"]
) -> List[RunRecord]:
    """Load records from either a store directory or a JSONL file."""
    path = Path(path)
    if path.is_dir():
        if not is_store_path(path):
            raise ConfigurationError(
                f"{path} is a directory but has no {_MANIFEST_NAME}; "
                f"expected a run store or a JSONL file"
            )
        return RunStore(path).records()
    if not path.exists():
        raise ConfigurationError(f"no such records source: {path}")
    with open(path, "r", encoding="utf-8") as handle:
        return list(iter_records(handle, source=str(path)))
