"""Typed run records with schema-versioned JSONL serialization.

A :class:`RunRecord` is the persistent form of one scenario repetition — the
same flat dictionary :func:`repro.scenarios.runner.record_from_result` emits,
promoted to a typed object with an identity, a scenario key and tolerant
streaming parsing.  Records are the currency of the results warehouse: the
:class:`~repro.results.store.RunStore` shards them by scenario, the
aggregators group them, and the bound comparison joins them against
:mod:`repro.analysis.bounds`.

The JSONL layout is versioned via the ``schema_version`` field (see
:data:`SCHEMA_VERSION`).  Records written before the field existed are read
as version 1; records from a *newer* schema are rejected so stale readers
fail loudly instead of silently misinterpreting fields.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from typing import Any, Dict, IO, Iterable, Iterator, List, Mapping, Optional, Tuple, Union

from repro.scenarios.runner import RECORD_SCHEMA_VERSION
from repro.scenarios.spec import ScenarioSpec
from repro.utils.validation import ReproError

#: The JSONL schema version this module reads and writes.
SCHEMA_VERSION = RECORD_SCHEMA_VERSION


class RecordValidationError(ReproError, ValueError):
    """Raised when a persisted record cannot be parsed or fails validation.

    The message always names the source (file path or stream label) and the
    1-based line number of the offending record.  Subclasses
    :class:`ValueError` as well as :class:`~repro.utils.validation.ReproError`
    so both ``except ReproError`` (the unified hierarchy) and legacy
    ``except ValueError`` callers catch it.
    """

    def __init__(self, message: str, *, source: str = "", line_number: Optional[int] = None):
        location = ""
        if source or line_number is not None:
            where = source or "<records>"
            if line_number is not None:
                where = f"{where}:{line_number}"
            location = f"{where}: "
        super().__init__(f"{location}{message}")
        self.source = source
        self.line_number = line_number


#: field name -> (required, acceptable types); bool is excluded from the int
#: fields explicitly because ``isinstance(True, int)`` holds in Python.
_INT_FIELDS = ("repetition", "seed", "n", "k", "s", "rounds", "total_messages",
               "topological_changes", "token_learnings")
_FLOAT_FIELDS = ("amortized_messages", "adversary_competitive",
                 "amortized_adversary_competitive")


def _require_int(payload: Mapping[str, Any], name: str) -> int:
    value = payload.get(name)
    if isinstance(value, bool) or not isinstance(value, int):
        raise RecordValidationError(f"field {name!r} must be an int, got {value!r}")
    return value


def _require_float(payload: Mapping[str, Any], name: str) -> float:
    value = payload.get(name)
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise RecordValidationError(f"field {name!r} must be a number, got {value!r}")
    return float(value)


@dataclass(frozen=True)
class RunRecord:
    """One scenario repetition's headline numbers plus the spec that produced it."""

    scenario: str
    spec: Dict[str, Any]
    repetition: int
    seed: int
    n: int
    k: int
    s: int
    completed: bool
    rounds: int
    total_messages: int
    amortized_messages: float
    topological_changes: int
    adversary_competitive: float
    amortized_adversary_competitive: float
    token_learnings: int
    schema_version: int = SCHEMA_VERSION

    def __post_init__(self) -> None:
        # Validate the embedded spec eagerly: a record whose spec does not
        # round-trip cannot be sharded or re-run, so it must not enter a store.
        spec = ScenarioSpec.from_dict(self.spec)
        object.__setattr__(self, "spec", spec.to_dict())
        # Cached here because stores and aggregators key/sort on it per record;
        # not a dataclass field, so equality and serialization are unaffected.
        object.__setattr__(self, "_scenario_key", spec.scenario_key())

    # -- identity ----------------------------------------------------------

    def scenario_key(self) -> str:
        """Canonical JSON of the producing spec's scientific content."""
        return self._scenario_key

    def identity(self) -> Tuple[str, int]:
        """The dedup key: same scenario content + repetition = same record."""
        return (self.scenario_key(), self.repetition)

    # -- axis access -------------------------------------------------------

    @property
    def algorithm(self) -> str:
        """The registry name of the algorithm that produced this record."""
        return str(self.spec["algorithm"])

    @property
    def adversary(self) -> str:
        """The registry name of the adversary."""
        return str(self.spec["adversary"])

    @property
    def problem(self) -> str:
        """The registry name of the problem."""
        return str(self.spec["problem"])

    def axis_value(self, axis: str) -> Any:
        """Resolve a group-by axis against this record.

        Axes are record fields (``"n"``, ``"seed"``, ``"completed"``, ...),
        component names (``"algorithm"``, ``"adversary"``, ``"problem"``,
        ``"scenario"``) or dotted component parameters
        (``"problem.num_nodes"``, ``"adversary.changes_per_round"``).
        """
        section, _, param = axis.partition(".")
        if param:
            params_field = f"{section}_params"
            if params_field not in self.spec:
                raise RecordValidationError(
                    f"unknown axis {axis!r}: section must be one of "
                    f"'problem', 'algorithm', 'adversary'"
                )
            return self.spec[params_field].get(param)
        if axis in ("algorithm", "adversary", "problem"):
            return self.spec[axis]
        if axis in _RECORD_AXES:
            return getattr(self, axis)
        raise RecordValidationError(
            f"unknown axis {axis!r}; use a record field {sorted(_RECORD_AXES)}, "
            f"a component name ('algorithm', 'adversary', 'problem') or a dotted "
            f"parameter path like 'problem.num_nodes'"
        )

    def metric_value(self, metric: str) -> float:
        """The numeric value of a measured metric, for aggregation."""
        if metric not in _METRIC_FIELDS:
            raise RecordValidationError(
                f"unknown metric {metric!r}; known metrics: {sorted(_METRIC_FIELDS)}"
            )
        return float(getattr(self, metric))

    # -- serialization -----------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """The flat JSON-ready dictionary (the runner's record layout)."""
        return {
            "schema_version": self.schema_version,
            "scenario": self.scenario,
            "spec": dict(self.spec),
            "repetition": self.repetition,
            "seed": self.seed,
            "n": self.n,
            "k": self.k,
            "s": self.s,
            "completed": self.completed,
            "rounds": self.rounds,
            "total_messages": self.total_messages,
            "amortized_messages": self.amortized_messages,
            "topological_changes": self.topological_changes,
            "adversary_competitive": self.adversary_competitive,
            "amortized_adversary_competitive": self.amortized_adversary_competitive,
            "token_learnings": self.token_learnings,
        }

    def to_json_line(self) -> str:
        """The canonical one-line JSON encoding (stable key order)."""
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "RunRecord":
        """Build a record from a parsed JSON object, validating every field."""
        if not isinstance(payload, Mapping):
            raise RecordValidationError(
                f"record must be a JSON object, got {type(payload).__name__}"
            )
        version = payload.get("schema_version", SCHEMA_VERSION)
        if isinstance(version, bool) or not isinstance(version, int):
            raise RecordValidationError(f"schema_version must be an int, got {version!r}")
        if version > SCHEMA_VERSION:
            raise RecordValidationError(
                f"record has schema_version {version}, but this build reads "
                f"at most {SCHEMA_VERSION}; upgrade the library to read it"
            )
        spec = payload.get("spec")
        if not isinstance(spec, Mapping):
            raise RecordValidationError(f"field 'spec' must be a JSON object, got {spec!r}")
        completed = payload.get("completed")
        if not isinstance(completed, bool):
            raise RecordValidationError(
                f"field 'completed' must be a boolean, got {completed!r}"
            )
        scenario = payload.get("scenario")
        if not isinstance(scenario, str):
            raise RecordValidationError(f"field 'scenario' must be a string, got {scenario!r}")
        values: Dict[str, Any] = {
            "schema_version": version,
            "scenario": scenario,
            "spec": dict(spec),
            "completed": completed,
        }
        for name in _INT_FIELDS:
            values[name] = _require_int(payload, name)
        for name in _FLOAT_FIELDS:
            values[name] = _require_float(payload, name)
        return cls(**values)

    @classmethod
    def from_json_line(cls, line: str) -> "RunRecord":
        """Parse one JSONL line."""
        return cls.from_dict(json.loads(line))


#: Record fields usable as group-by axes.
_RECORD_AXES = frozenset(
    ("scenario", "repetition", "seed", "n", "k", "s", "completed", "rounds")
)

#: Record fields usable as aggregation metrics.
_METRIC_FIELDS = frozenset(
    ("rounds", "total_messages", "amortized_messages", "topological_changes",
     "adversary_competitive", "amortized_adversary_competitive",
     "token_learnings")
)


def coerce_record(record: Union[RunRecord, Mapping[str, Any]]) -> RunRecord:
    """Accept either a :class:`RunRecord` or the runner's plain dict."""
    if isinstance(record, RunRecord):
        return record
    try:
        return RunRecord.from_dict(record)
    except (ValueError, ReproError) as error:
        raise RecordValidationError(f"invalid run record: {error}") from error


def iter_records(
    lines: Iterable[str],
    *,
    source: str = "<records>",
    on_error: str = "raise",
) -> Iterator[RunRecord]:
    """Stream records from JSONL lines without materializing the file.

    Blank lines are skipped.  Malformed lines raise a
    :class:`RecordValidationError` naming ``source`` and the 1-based line
    number; pass ``on_error="skip"`` to drop them instead (tolerant reads of
    partially written shards, e.g. after an interrupted sweep).
    """
    if on_error not in ("raise", "skip"):
        raise RecordValidationError(
            f"on_error must be 'raise' or 'skip', got {on_error!r}"
        )
    for line_number, line in enumerate(lines, start=1):
        if not line.strip():
            continue
        try:
            yield RunRecord.from_json_line(line)
        except (json.JSONDecodeError, ValueError, ReproError) as error:
            if on_error == "skip":
                continue
            raise RecordValidationError(
                str(error), source=source, line_number=line_number
            ) from error


def load_records(
    path: Union[str, "os.PathLike[str]"],
    *,
    on_error: str = "raise",
) -> List[RunRecord]:
    """Read every record of a JSONL file (see :func:`iter_records`)."""
    with open(path, "r", encoding="utf-8") as handle:
        return list(iter_records(handle, source=str(path), on_error=on_error))


def dump_records(
    records: Iterable[Union[RunRecord, Mapping[str, Any]]],
    sink: Union[str, "os.PathLike[str]", IO[str]],
) -> int:
    """Write records as canonical JSONL; returns the number written."""
    if hasattr(sink, "write"):
        return _dump_to_handle(records, sink)  # type: ignore[arg-type]
    with open(sink, "w", encoding="utf-8") as handle:
        return _dump_to_handle(records, handle)


def _dump_to_handle(
    records: Iterable[Union[RunRecord, Mapping[str, Any]]], handle: IO[str]
) -> int:
    count = 0
    for record in records:
        handle.write(coerce_record(record).to_json_line() + "\n")
        count += 1
    return count
