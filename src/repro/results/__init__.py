"""The results warehouse: run records → store → aggregates → paper verdicts.

This package is the back half of the spec-in/records-out architecture.  The
:class:`~repro.scenarios.runner.ScenarioRunner` emits flat JSONL records;
here they become first-class:

* **records** (:mod:`repro.results.records`) — the typed, schema-versioned
  :class:`RunRecord` with tolerant streaming JSONL reads;
* **store** (:mod:`repro.results.store`) — :class:`RunStore`, an append-only
  directory of per-scenario shards with idempotent dedup, merge of parallel
  worker outputs and filtered queries;
* **aggregate** (:mod:`repro.results.aggregate`) — deterministic group-by
  summaries (mean/median/stddev/min/max + bootstrap confidence intervals);
* **compare** (:mod:`repro.results.compare`) — log-log slope fits of the
  measured scaling joined against :mod:`repro.analysis.bounds`, with
  within-bound verdicts and an extension hook for custom bounds;
* **report** (:mod:`repro.results.report`) — markdown / CSV / JSON tables
  and the full paper-vs-measured report, including Table 1.

Quickstart::

    from repro.results import RunStore, aggregate, compare_to_bounds

    store = RunStore("results-store")
    store.ingest_jsonl("results.jsonl")      # idempotent: re-ingest is a no-op
    rows = aggregate(store.records(), group_by=("algorithm", "n"))
    verdicts = compare_to_bounds(store.records())

The same pipeline from the shell::

    python -m repro sweep ... --json | python -m repro analyze --bounds
    python -m repro report results-store/ --output report.md
"""

from repro.results.records import (
    SCHEMA_VERSION,
    RecordValidationError,
    RunRecord,
    dump_records,
    iter_records,
    load_records,
)
from repro.results.store import RunStore, open_source
from repro.results.aggregate import (
    DEFAULT_GROUP_BY,
    DEFAULT_METRICS,
    aggregate,
    aggregate_columns,
    bootstrap_ci,
    group_records,
)
from repro.results.compare import (
    BoundSpec,
    bound_for_algorithm,
    bound_ratio_rows,
    compare_to_bounds,
    fit_scaling_exponent,
    measured_series,
    register_bound,
    registered_bounds,
)
from repro.results.report import (
    render_aggregates,
    render_comparison,
    render_markdown_table,
    render_report,
    render_table,
    render_table1_vs_measured,
    rows_to_table,
)

__all__ = [
    "SCHEMA_VERSION",
    "RecordValidationError",
    "RunRecord",
    "dump_records",
    "iter_records",
    "load_records",
    "RunStore",
    "open_source",
    "DEFAULT_GROUP_BY",
    "DEFAULT_METRICS",
    "aggregate",
    "aggregate_columns",
    "bootstrap_ci",
    "group_records",
    "BoundSpec",
    "bound_for_algorithm",
    "bound_ratio_rows",
    "compare_to_bounds",
    "fit_scaling_exponent",
    "measured_series",
    "register_bound",
    "registered_bounds",
    "render_aggregates",
    "render_comparison",
    "render_markdown_table",
    "render_report",
    "render_table",
    "render_table1_vs_measured",
    "rows_to_table",
]
