"""Consolidated cross-experiment reports over a whole run store.

A single store accumulates many experiments — different algorithms,
adversaries, problem grids, runs submitted over weeks through the service
daemon.  :func:`render_consolidated_report` reads everything the
warehouse index holds and renders one artifact: an inventory of the
store, a per-``algorithm × adversary`` overview, and for each such pair
the full aggregate table plus the paper-bound verdicts.  Everything goes
through the existing :mod:`repro.results.report` renderers, so ``md`` /
``csv`` / ``json`` all work (non-markdown formats render the overview
table alone — the natural machine-readable cross-experiment summary).
"""

from __future__ import annotations

from statistics import mean
from typing import Any, Dict, List, Sequence, Tuple

from repro.results.aggregate import (
    DEFAULT_GROUP_BY,
    DEFAULT_METRICS,
    aggregate,
    aggregate_columns,
)
from repro.results.compare import compare_to_bounds
from repro.results.records import RunRecord
from repro.results.report import COMPARISON_COLUMNS, rows_to_table
from repro.utils.validation import ConfigurationError

__all__ = ["consolidated_overview_rows", "render_consolidated_report"]

#: Column order of the per-(algorithm, adversary) overview table.
OVERVIEW_COLUMNS = (
    "algorithm", "adversary", "problems", "scenarios", "runs",
    "n_range", "k_range", "completed",
    "mean_rounds", "mean_total_messages", "mean_amortized_messages",
)


def _span(values: Sequence[int]) -> str:
    low, high = min(values), max(values)
    return str(low) if low == high else f"{low}..{high}"


def consolidated_overview_rows(
    records: Sequence[RunRecord],
) -> List[Dict[str, Any]]:
    """One overview row per ``(algorithm, adversary)`` pair in the store."""
    pairs: Dict[Tuple[str, str], List[RunRecord]] = {}
    for record in records:
        pairs.setdefault((record.algorithm, record.adversary), []).append(record)
    rows: List[Dict[str, Any]] = []
    for algorithm, adversary in sorted(pairs):
        members = pairs[(algorithm, adversary)]
        rows.append({
            "algorithm": algorithm,
            "adversary": adversary,
            "problems": ", ".join(sorted({r.problem for r in members})),
            "scenarios": len({r.scenario_key() for r in members}),
            "runs": len(members),
            "n_range": _span([r.n for r in members]),
            "k_range": _span([r.k for r in members]),
            "completed": all(r.completed for r in members),
            "mean_rounds": mean(r.rounds for r in members),
            "mean_total_messages": mean(r.total_messages for r in members),
            "mean_amortized_messages": mean(r.amortized_messages for r in members),
        })
    return rows


def render_consolidated_report(
    records: Sequence[RunRecord],
    *,
    fmt: str = "md",
    group_by: Sequence[str] = DEFAULT_GROUP_BY,
    metrics: Sequence[str] = DEFAULT_METRICS,
    x_axis: str = "n",
    title: str = "Consolidated warehouse report",
) -> str:
    """The cross-experiment report (see the module docstring).

    ``fmt="md"`` renders the full document; ``csv`` / ``json`` / ``text``
    render the overview table alone.
    """
    if not records:
        raise ConfigurationError("the store holds no records to consolidate")
    overview = consolidated_overview_rows(records)
    if fmt != "md":
        return rows_to_table(overview, OVERVIEW_COLUMNS, fmt)
    sections: List[str] = [
        f"# {title}",
        "",
        f"Records: {len(records)} across {len(overview)} "
        f"algorithm × adversary pair(s).",
        "",
        "## Overview",
        "",
        rows_to_table(overview, OVERVIEW_COLUMNS, "md"),
        "",
    ]
    pairs: Dict[Tuple[str, str], List[RunRecord]] = {}
    for record in records:
        pairs.setdefault((record.algorithm, record.adversary), []).append(record)
    for algorithm, adversary in sorted(pairs):
        members = pairs[(algorithm, adversary)]
        sections += [
            f"## {algorithm} × {adversary}",
            "",
            rows_to_table(
                aggregate(members, group_by, metrics),
                aggregate_columns(group_by, metrics),
                "md",
            ),
            "",
        ]
        verdicts = compare_to_bounds(members, x_axis=x_axis)
        if verdicts:
            sections += [
                "### Paper-bound verdicts",
                "",
                rows_to_table(verdicts, COMPARISON_COLUMNS, "md"),
                "",
            ]
        else:
            sections += [
                f"_No registered paper bound covers `{algorithm}`._",
                "",
            ]
    return "\n".join(sections)
