"""Typed queries over the warehouse index.

:class:`WarehouseQuery` mirrors the read API of
:class:`~repro.results.store.RunStore` — ``records_for_key``,
``repetitions_present``, ``query``-style filtered record lists — but
answers from sqlite instead of shard scans, so a cache check over a
million-record store touches one B-tree lookup instead of a JSONL file.
Records reconstruct from the canonical JSON column, so every result is a
full :class:`~repro.results.records.RunRecord`, bit-identical to what a
shard scan would have produced, and in the same ``(scenario_key,
repetition)`` order.

Aggregation (:meth:`WarehouseQuery.aggregate`) delegates to the
incrementally cached group-by layer in :mod:`repro.warehouse.incremental`.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.results.aggregate import (
    DEFAULT_GROUP_BY,
    DEFAULT_METRICS,
    DEFAULT_RESAMPLES,
)
from repro.results.records import _METRIC_FIELDS, RunRecord
from repro.utils.validation import ConfigurationError
from repro.warehouse.index import WarehouseIndex

__all__ = ["WarehouseQuery"]

#: Component-name filters answered by indexed SQL columns.
_COLUMN_FILTERS = ("algorithm", "adversary", "problem")


def _record_from_row(line: str) -> RunRecord:
    return RunRecord.from_dict(json.loads(line))


class WarehouseQuery:
    """Store-shaped reads answered by the sqlite index."""

    def __init__(self, index: WarehouseIndex) -> None:
        self._index = index
        self._conn = index.connection

    @property
    def index(self) -> WarehouseIndex:
        return self._index

    # -- lookups mirroring RunStore ---------------------------------------

    def scenario_keys(self) -> List[str]:
        """All indexed scenario keys, sorted."""
        return [
            key
            for (key,) in self._conn.execute(
                "SELECT DISTINCT scenario_key FROM runs ORDER BY scenario_key"
            )
        ]

    def records_for_key(self, scenario_key: str) -> List[RunRecord]:
        """Every indexed record of one scenario, sorted by repetition."""
        return [
            _record_from_row(line)
            for (line,) in self._conn.execute(
                "SELECT json FROM runs WHERE scenario_key = ? ORDER BY repetition",
                (scenario_key,),
            )
        ]

    def repetitions_present(
        self, scenario_key: str, *, schema_version: Optional[int] = None
    ) -> Dict[int, RunRecord]:
        """``repetition -> record`` for one scenario, like the store's."""
        sql = "SELECT json FROM runs WHERE scenario_key = ?"
        params: Tuple[Any, ...] = (scenario_key,)
        if schema_version is not None:
            sql += " AND schema_version = ?"
            params += (schema_version,)
        return {
            record.repetition: record
            for record in (
                _record_from_row(line)
                for (line,) in self._conn.execute(sql + " ORDER BY repetition", params)
            )
        }

    def count(
        self,
        *,
        algorithm: Optional[str] = None,
        adversary: Optional[str] = None,
        problem: Optional[str] = None,
    ) -> int:
        """Indexed record count under the component-name filters."""
        sql, params = self._filter_clause(algorithm, adversary, problem)
        return int(
            self._conn.execute(f"SELECT COUNT(*) FROM runs{sql}", params).fetchone()[0]
        )

    def records(
        self,
        *,
        algorithm: Optional[str] = None,
        adversary: Optional[str] = None,
        problem: Optional[str] = None,
        where: Optional[Mapping[str, Any]] = None,
    ) -> List[RunRecord]:
        """Filtered records, matching :meth:`RunStore.query` semantics.

        Component names filter in SQL; arbitrary ``where`` axes (dotted
        parameters, record fields) filter in python via
        :meth:`RunRecord.axis_value`, exactly like the shard-scan path.
        Sorted by ``(scenario_key, repetition)``.
        """
        sql, params = self._filter_clause(algorithm, adversary, problem)
        results = []
        for (line,) in self._conn.execute(
            f"SELECT json FROM runs{sql} ORDER BY scenario_key, repetition", params
        ):
            record = _record_from_row(line)
            if where and any(
                record.axis_value(axis) != value for axis, value in where.items()
            ):
                continue
            results.append(record)
        return results

    @staticmethod
    def _filter_clause(
        algorithm: Optional[str], adversary: Optional[str], problem: Optional[str]
    ) -> Tuple[str, Tuple[Any, ...]]:
        clauses: List[str] = []
        params: List[Any] = []
        for column, value in zip(_COLUMN_FILTERS, (algorithm, adversary, problem)):
            if value is not None:
                clauses.append(f"{column} = ?")
                params.append(value)
        sql = f" WHERE {' AND '.join(clauses)}" if clauses else ""
        return sql, tuple(params)

    # -- statistics --------------------------------------------------------

    def percentile(
        self,
        metric: str,
        q: float,
        *,
        algorithm: Optional[str] = None,
        adversary: Optional[str] = None,
        problem: Optional[str] = None,
    ) -> float:
        """The ``q``-th percentile (0..100, linear interpolation) of a
        metric column across the filtered records."""
        if not 0.0 <= q <= 100.0:
            raise ConfigurationError(f"percentile must lie in [0, 100], got {q}")
        if metric not in _METRIC_FIELDS:
            raise ConfigurationError(
                f"unknown metric {metric!r}; choose from "
                f"{', '.join(sorted(_METRIC_FIELDS))}"
            )
        sql, params = self._filter_clause(algorithm, adversary, problem)
        values = [
            float(value)
            for (value,) in self._conn.execute(
                f"SELECT {metric} FROM runs{sql} ORDER BY {metric}", params
            )
        ]
        if not values:
            raise ConfigurationError("no records match the percentile query")
        if len(values) == 1:
            return values[0]
        position = (q / 100.0) * (len(values) - 1)
        lower = int(position)
        upper = min(lower + 1, len(values) - 1)
        fraction = position - lower
        return values[lower] + (values[upper] - values[lower]) * fraction

    def aggregate(
        self,
        group_by: Sequence[str] = DEFAULT_GROUP_BY,
        metrics: Sequence[str] = DEFAULT_METRICS,
        *,
        confidence: float = 0.95,
        resamples: int = DEFAULT_RESAMPLES,
    ) -> List[Dict[str, Any]]:
        """Group-by summary rows, byte-identical to
        :func:`repro.results.aggregate.aggregate` over the same records,
        served from the incrementally maintained group cache."""
        from repro.warehouse.incremental import cached_aggregate

        return cached_aggregate(
            self._index,
            group_by,
            metrics,
            confidence=confidence,
            resamples=resamples,
        )
