"""repro.warehouse — a columnar SQL layer over the JSONL run store.

The JSONL shards of :class:`repro.results.store.RunStore` stay the single
source of truth; this package derives a rebuildable sqlite index from
them (:mod:`~repro.warehouse.index`), answers store-shaped queries from
it (:mod:`~repro.warehouse.query`), maintains incrementally folded
group-by aggregates whose output is byte-identical to the shard-scan
path (:mod:`~repro.warehouse.incremental`), and renders consolidated
cross-experiment reports (:mod:`~repro.warehouse.consolidated`).
Exposed on the command line as ``repro warehouse [sync|rebuild|query|report]``.
"""

from repro.warehouse.consolidated import (
    consolidated_overview_rows,
    render_consolidated_report,
)
from repro.warehouse.incremental import cached_aggregate
from repro.warehouse.index import (
    INDEX_FILENAME,
    INDEX_SCHEMA_VERSION,
    SyncStats,
    WarehouseIndex,
    open_index,
    rebuild_index,
    sqlite_available,
)
from repro.warehouse.query import WarehouseQuery

__all__ = [
    "INDEX_FILENAME",
    "INDEX_SCHEMA_VERSION",
    "SyncStats",
    "WarehouseIndex",
    "WarehouseQuery",
    "cached_aggregate",
    "consolidated_overview_rows",
    "open_index",
    "rebuild_index",
    "render_consolidated_report",
    "sqlite_available",
]
