"""Incrementally maintained group-by aggregation over the warehouse index.

The shard-scan path (:func:`repro.results.aggregate.aggregate`) regroups
every record on every call.  This module persists per-group state in the
index — ``runs`` / ``completed`` plus, per metric, ``count`` / ``sum`` /
``sum-of-squares`` moments and the **sorted value list** — and folds only
rows appended since the last call (tracked by a sqlite ``rowid``
watermark) into that state.  Rendering then replays the exact recipe of
:func:`~repro.results.aggregate.aggregate` over the cached sorted values:
same group ordering, same seeded bootstrap, same ``statistics`` calls.
The output is **byte-identical** to a cold shard scan — the PR-2
invariant — while a steady-state call touches only the handful of rows
that are actually new.

The sorted value list (not just the moments) is what makes exactness
possible: medians, percentile bootstraps and ``statistics.mean``'s
exact-fraction arithmetic all depend on the individual values.  The
moments ride along as cheap cross-checks and for future moment-only
consumers.

Caches invalidate wholesale when the index's **mutation counter** moves —
any supersede/delete of an existing row (``add(replace=True)``, shard
truncation) bumps it, because folding can only ever *add* values.
"""

from __future__ import annotations

import json
import random
from bisect import insort
from statistics import mean, median, pstdev
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.results.aggregate import (
    DEFAULT_GROUP_BY,
    DEFAULT_METRICS,
    DEFAULT_RESAMPLES,
    _group_sort_key,
    bootstrap_ci,
)
from repro.results.records import RunRecord
from repro.utils.rng import derive_seed
from repro.warehouse.index import WarehouseIndex

__all__ = ["cached_aggregate"]


def _encode_key(key: Tuple[Any, ...]) -> str:
    return json.dumps(list(key))


def _decode_key(encoded: str) -> Tuple[Any, ...]:
    return tuple(json.loads(encoded))


class _GroupState:
    """The in-memory image of one group's cached state."""

    __slots__ = ("runs", "all_completed", "values", "moments", "dirty")

    def __init__(self, runs: int = 0, all_completed: bool = True) -> None:
        self.runs = runs
        self.all_completed = all_completed
        #: metric -> sorted value list
        self.values: Dict[str, List[float]] = {}
        #: metric -> (count, total, total_sq)
        self.moments: Dict[str, Tuple[int, float, float]] = {}
        self.dirty = False


def _load_cache(
    index: WarehouseIndex, group_key_json: str, metrics: Sequence[str]
) -> Dict[Tuple[Any, ...], _GroupState]:
    conn = index.connection
    groups: Dict[Tuple[Any, ...], _GroupState] = {}
    for encoded, runs, all_completed in conn.execute(
        "SELECT group_key, runs, all_completed FROM group_cache_groups "
        "WHERE group_by = ?",
        (group_key_json,),
    ):
        groups[_decode_key(encoded)] = _GroupState(int(runs), bool(all_completed))
    for encoded, metric, count, total, total_sq, values_json in conn.execute(
        "SELECT group_key, metric, count, total, total_sq, values_json "
        "FROM group_cache_stats WHERE group_by = ?",
        (group_key_json,),
    ):
        state = groups.get(_decode_key(encoded))
        if state is None or metric not in metrics:
            continue
        state.values[metric] = json.loads(values_json)
        state.moments[metric] = (int(count), float(total), float(total_sq))
    return groups


def _fold(
    groups: Dict[Tuple[Any, ...], _GroupState],
    record: RunRecord,
    group_by: Sequence[str],
    metrics: Sequence[str],
) -> None:
    key = tuple(record.axis_value(axis) for axis in group_by)
    state = groups.get(key)
    if state is None:
        state = groups[key] = _GroupState()
        for metric in metrics:
            state.values[metric] = []
            state.moments[metric] = (0, 0.0, 0.0)
    state.runs += 1
    state.all_completed = state.all_completed and record.completed
    state.dirty = True
    for metric in metrics:
        value = record.metric_value(metric)
        insort(state.values[metric], value)
        count, total, total_sq = state.moments[metric]
        state.moments[metric] = (count + 1, total + value, total_sq + value * value)


def _persist(
    index: WarehouseIndex,
    group_key_json: str,
    metrics_json: str,
    groups: Dict[Tuple[Any, ...], _GroupState],
    watermark: int,
    mutation: int,
    *,
    full: bool,
) -> None:
    conn = index.connection
    with conn:
        if full:
            conn.execute(
                "DELETE FROM group_cache_groups WHERE group_by = ?", (group_key_json,)
            )
            conn.execute(
                "DELETE FROM group_cache_stats WHERE group_by = ?", (group_key_json,)
            )
            conn.execute(
                "DELETE FROM group_cache_rows WHERE group_by = ?", (group_key_json,)
            )
        for key, state in groups.items():
            if not (full or state.dirty):
                continue
            encoded = _encode_key(key)
            if not full:
                # The group's membership changed: every rendered row cached
                # for it (any confidence/resamples/metrics) is stale.
                conn.execute(
                    "DELETE FROM group_cache_rows "
                    "WHERE group_by = ? AND group_key = ?",
                    (group_key_json, encoded),
                )
            conn.execute(
                "INSERT OR REPLACE INTO group_cache_groups "
                "(group_by, group_key, runs, all_completed) VALUES (?, ?, ?, ?)",
                (group_key_json, encoded, state.runs, 1 if state.all_completed else 0),
            )
            for metric in state.values:
                count, total, total_sq = state.moments[metric]
                conn.execute(
                    "INSERT OR REPLACE INTO group_cache_stats "
                    "(group_by, group_key, metric, count, total, total_sq, "
                    "values_json) VALUES (?, ?, ?, ?, ?, ?, ?)",
                    (
                        group_key_json,
                        encoded,
                        metric,
                        count,
                        total,
                        total_sq,
                        json.dumps(state.values[metric]),
                    ),
                )
        conn.execute(
            "INSERT OR REPLACE INTO group_cache_meta "
            "(group_by, metrics, row_watermark, mutation) VALUES (?, ?, ?, ?)",
            (group_key_json, metrics_json, watermark, mutation),
        )


def _serve_cached_rows(
    index: WarehouseIndex,
    group_key_json: str,
    confidence: float,
    resamples: int,
    metrics_json: str,
) -> Optional[List[Dict[str, Any]]]:
    """All groups' rendered rows straight from the row cache, in aggregate
    order — or ``None`` when any group lacks a cached row for this exact
    (confidence, resamples, metrics) combination."""
    conn = index.connection
    row_cache = {
        encoded: row_json
        for encoded, row_json in conn.execute(
            "SELECT group_key, row_json FROM group_cache_rows "
            "WHERE group_by = ? AND confidence = ? AND resamples = ? "
            "AND metrics = ?",
            (group_key_json, confidence, resamples, metrics_json),
        )
    }
    keys = [
        _decode_key(encoded)
        for (encoded,) in conn.execute(
            "SELECT group_key FROM group_cache_groups WHERE group_by = ?",
            (group_key_json,),
        )
    ]
    rows: List[Dict[str, Any]] = []
    for key in sorted(keys, key=_group_sort_key):
        cached = row_cache.get(_encode_key(key))
        if cached is None:
            return None
        rows.append(json.loads(cached))
    return rows


def cached_aggregate(
    index: WarehouseIndex,
    group_by: Sequence[str] = DEFAULT_GROUP_BY,
    metrics: Sequence[str] = DEFAULT_METRICS,
    *,
    confidence: float = 0.95,
    resamples: int = DEFAULT_RESAMPLES,
) -> List[Dict[str, Any]]:
    """Aggregate the indexed records, folding only rows the cache has not
    seen; byte-identical to the shard-scan :func:`aggregate`."""
    conn = index.connection
    group_key_json = json.dumps(list(group_by))
    metrics_json = json.dumps(sorted(metrics))
    mutation = index.mutation()
    meta = conn.execute(
        "SELECT metrics, row_watermark, mutation FROM group_cache_meta "
        "WHERE group_by = ?",
        (group_key_json,),
    ).fetchone()
    full_rebuild = (
        meta is None
        or int(meta[2]) != mutation
        or not set(metrics) <= set(json.loads(meta[0]))
    )
    if not full_rebuild:
        watermark = int(meta[1])
        has_new = conn.execute(
            "SELECT 1 FROM runs WHERE rowid > ? LIMIT 1", (watermark,)
        ).fetchone()
        if has_new is None:
            # Nothing changed since the cache was written: serve entirely
            # from the rendered-row cache if it covers every group — no
            # value lists loaded, no bootstrap run.
            served = _serve_cached_rows(
                index, group_key_json, confidence, resamples, metrics_json
            )
            if served is not None:
                return served
    if full_rebuild:
        groups: Dict[Tuple[Any, ...], _GroupState] = {}
        watermark = 0
        fold_metrics: Sequence[str] = list(metrics)
    else:
        # Fold every *cached* metric (a superset of the request), so stats
        # for metrics not asked about this call never go stale.
        fold_metrics = json.loads(meta[0])
        groups = _load_cache(index, group_key_json, fold_metrics)
        watermark = int(meta[1])
    new_watermark = watermark
    for rowid, line in conn.execute(
        "SELECT rowid, json FROM runs WHERE rowid > ? ORDER BY rowid", (watermark,)
    ):
        _fold(groups, RunRecord.from_dict(json.loads(line)), group_by, fold_metrics)
        new_watermark = max(new_watermark, int(rowid))
    if full_rebuild or new_watermark != watermark:
        _persist(
            index,
            group_key_json,
            metrics_json if full_rebuild else meta[0],
            groups,
            new_watermark,
            mutation,
            full=full_rebuild,
        )
    # Render exactly as repro.results.aggregate.aggregate does: same group
    # ordering, same seeded bootstrap, same statistics calls on the same
    # sorted value lists.  Clean groups serve their fully rendered row from
    # the row cache — the bootstrap (the dominant cost at scale) only runs
    # for groups whose membership actually changed this call.
    row_cache: Dict[str, str] = {
        encoded: row_json
        for encoded, row_json in conn.execute(
            "SELECT group_key, row_json FROM group_cache_rows "
            "WHERE group_by = ? AND confidence = ? AND resamples = ? "
            "AND metrics = ?",
            (group_key_json, confidence, resamples, metrics_json),
        )
    }
    rows: List[Dict[str, Any]] = []
    fresh_rows: List[Tuple[str, str]] = []
    for key in sorted(groups, key=_group_sort_key):
        state = groups[key]
        encoded = _encode_key(key)
        if not (full_rebuild or state.dirty):
            cached_row = row_cache.get(encoded)
            if cached_row is not None:
                rows.append(json.loads(cached_row))
                continue
        row: Dict[str, Any] = dict(zip(group_by, key))
        row["runs"] = state.runs
        row["completed"] = state.all_completed
        key_json = json.dumps([str(part) for part in key], sort_keys=True)
        for metric in metrics:
            values = state.values[metric]
            rng = random.Random(derive_seed(0, "bootstrap", key_json, metric))
            ci_low, ci_high = bootstrap_ci(
                values, confidence=confidence, resamples=resamples, rng=rng
            )
            row[f"{metric}_mean"] = mean(values)
            row[f"{metric}_median"] = median(values)
            row[f"{metric}_std"] = pstdev(values) if len(values) > 1 else 0.0
            row[f"{metric}_min"] = values[0]
            row[f"{metric}_max"] = values[-1]
            row[f"{metric}_ci_low"] = ci_low
            row[f"{metric}_ci_high"] = ci_high
        rows.append(row)
        fresh_rows.append((encoded, json.dumps(row)))
    if fresh_rows:
        with conn:
            for encoded, row_json in fresh_rows:
                conn.execute(
                    "INSERT OR REPLACE INTO group_cache_rows "
                    "(group_by, group_key, confidence, resamples, metrics, "
                    "row_json) VALUES (?, ?, ?, ?, ?, ?)",
                    (group_key_json, encoded, confidence, resamples,
                     metrics_json, row_json),
                )
    return rows
