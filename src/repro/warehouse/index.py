"""A rebuildable sqlite index over the JSONL run store.

The :class:`~repro.results.store.RunStore`'s JSONL shards stay the single
source of truth; :class:`WarehouseIndex` maintains ``<store>/warehouse.sqlite``
as a derived, disposable view:

* one ``runs`` row per run record — scenario key, component names, the n/k/s
  dimensions, every metric column, the record schema version and the
  canonical JSON line (so records reconstruct exactly);
* a ``shards`` table of per-shard ``(mtime_ns, size_bytes)`` watermarks, so
  :meth:`WarehouseIndex.sync` re-reads only shards that actually changed
  (the store is append-only: any write grows the file);
* a ``meta`` table carrying the index schema version and a **mutation
  counter** that invalidates incremental aggregation caches whenever an
  existing row is superseded (``add(replace=True)``) rather than appended
  (see :mod:`repro.warehouse.incremental`).

:func:`rebuild_index` deletes the database and re-derives everything from
the shards — the recovery path for a corrupt or stale index, and the proof
that nothing lives only in sqlite.

A live :class:`~repro.results.store.RunStore` writer can :meth:`attach` the
index: every shard append then lands in sqlite in the same breath (under
the store's writer lock), keeping the index warm with zero re-reads — the
service daemon uses this so consolidated queries over its store are always
current.
"""

from __future__ import annotations

import contextlib
import json
import os
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Tuple, Union

try:  # Gated: minimal python builds may omit the sqlite3 extension module.
    import sqlite3
except ImportError:  # pragma: no cover - exercised via sqlite_available()
    sqlite3 = None  # type: ignore[assignment]

try:  # Advisory locking shared with the store; absent on non-POSIX platforms.
    import fcntl
except ImportError:  # pragma: no cover - windows
    fcntl = None  # type: ignore[assignment]

from repro.obs.logs import get_logger
from repro.obs.metrics import MetricsRegistry
from repro.results.records import RunRecord, iter_records
from repro.results.store import RunStore, StoreAppendEvent
from repro.utils.validation import ConfigurationError

__all__ = [
    "INDEX_FILENAME",
    "INDEX_SCHEMA_VERSION",
    "SyncStats",
    "WarehouseIndex",
    "open_index",
    "rebuild_index",
    "sqlite_available",
]

logger = get_logger(__name__)

#: The index database file, inside the store directory it indexes.
INDEX_FILENAME = "warehouse.sqlite"

#: Bumped whenever the table layout changes; mismatching indexes must be
#: rebuilt (cheap — the JSONL shards hold everything).
INDEX_SCHEMA_VERSION = 1

_LOCK_NAME = ".lock"
_BUSY_TIMEOUT_MS = 5000

_SCHEMA = """
CREATE TABLE IF NOT EXISTS meta (
    key   TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS shards (
    shard_id     TEXT PRIMARY KEY,
    scenario_key TEXT NOT NULL,
    mtime_ns     INTEGER NOT NULL,
    size_bytes   INTEGER NOT NULL,
    line_count   INTEGER NOT NULL
);
CREATE TABLE IF NOT EXISTS runs (
    scenario_key TEXT NOT NULL,
    repetition   INTEGER NOT NULL,
    shard_id     TEXT NOT NULL,
    scenario     TEXT NOT NULL,
    algorithm    TEXT NOT NULL,
    adversary    TEXT NOT NULL,
    problem      TEXT NOT NULL,
    n            INTEGER NOT NULL,
    k            INTEGER NOT NULL,
    s            INTEGER NOT NULL,
    seed         INTEGER NOT NULL,
    completed    INTEGER NOT NULL,
    rounds       INTEGER NOT NULL,
    total_messages INTEGER NOT NULL,
    amortized_messages REAL NOT NULL,
    topological_changes INTEGER NOT NULL,
    adversary_competitive REAL NOT NULL,
    amortized_adversary_competitive REAL NOT NULL,
    token_learnings INTEGER NOT NULL,
    schema_version INTEGER NOT NULL,
    max_rounds   INTEGER,
    json         TEXT NOT NULL,
    PRIMARY KEY (scenario_key, repetition)
);
CREATE INDEX IF NOT EXISTS runs_by_shard ON runs (shard_id);
CREATE INDEX IF NOT EXISTS runs_by_components ON runs (algorithm, adversary, problem);
CREATE TABLE IF NOT EXISTS group_cache_meta (
    group_by      TEXT PRIMARY KEY,
    metrics       TEXT NOT NULL,
    row_watermark INTEGER NOT NULL,
    mutation      INTEGER NOT NULL
);
CREATE TABLE IF NOT EXISTS group_cache_groups (
    group_by      TEXT NOT NULL,
    group_key     TEXT NOT NULL,
    runs          INTEGER NOT NULL,
    all_completed INTEGER NOT NULL,
    PRIMARY KEY (group_by, group_key)
);
CREATE TABLE IF NOT EXISTS group_cache_stats (
    group_by    TEXT NOT NULL,
    group_key   TEXT NOT NULL,
    metric      TEXT NOT NULL,
    count       INTEGER NOT NULL,
    total       REAL NOT NULL,
    total_sq    REAL NOT NULL,
    values_json TEXT NOT NULL,
    PRIMARY KEY (group_by, group_key, metric)
);
CREATE TABLE IF NOT EXISTS group_cache_rows (
    group_by   TEXT NOT NULL,
    group_key  TEXT NOT NULL,
    confidence REAL NOT NULL,
    resamples  INTEGER NOT NULL,
    metrics    TEXT NOT NULL,
    row_json   TEXT NOT NULL,
    PRIMARY KEY (group_by, group_key, confidence, resamples, metrics)
);
"""

_RUN_COLUMNS = (
    "scenario_key", "repetition", "shard_id", "scenario", "algorithm",
    "adversary", "problem", "n", "k", "s", "seed", "completed", "rounds",
    "total_messages", "amortized_messages", "topological_changes",
    "adversary_competitive", "amortized_adversary_competitive",
    "token_learnings", "schema_version", "max_rounds", "json",
)

_INSERT_RUN = (
    f"INSERT OR REPLACE INTO runs ({', '.join(_RUN_COLUMNS)}) "
    f"VALUES ({', '.join('?' * len(_RUN_COLUMNS))})"
)


def sqlite_available() -> bool:
    """Whether this python build ships the ``sqlite3`` extension module."""
    return sqlite3 is not None


@dataclass
class SyncStats:
    """What one :meth:`WarehouseIndex.sync` actually did."""

    shards_read: int = 0
    shards_skipped: int = 0
    rows_added: int = 0
    rows_updated: int = 0
    rows_removed: int = 0
    seconds: float = 0.0

    def summary(self, store: Union[str, "os.PathLike[str]"]) -> str:
        """The one-line human rendering the CLI prints."""
        return (
            f"warehouse {store}: {self.shards_read} shard(s) read, "
            f"{self.shards_skipped} skipped via watermarks, "
            f"{self.rows_added} row(s) added in {self.seconds:.2f}s"
        )


def _run_row(record: RunRecord, shard_id: str) -> Tuple[Any, ...]:
    return (
        record.scenario_key(),
        record.repetition,
        shard_id,
        record.scenario,
        record.algorithm,
        record.adversary,
        record.problem,
        record.n,
        record.k,
        record.s,
        record.seed,
        1 if record.completed else 0,
        record.rounds,
        record.total_messages,
        record.amortized_messages,
        record.topological_changes,
        record.adversary_competitive,
        record.amortized_adversary_competitive,
        record.token_learnings,
        record.schema_version,
        record.spec.get("max_rounds"),
        record.to_json_line(),
    )


def _require_store(path: Path) -> None:
    """Refuse paths that are clearly not run stores (no silent mkdir)."""
    if not path.is_dir():
        raise ConfigurationError(f"{path} is not a run-store directory")
    if not (path / "manifest.json").exists() and not (path / "shards").is_dir():
        raise ConfigurationError(
            f"{path} does not look like a run store (no manifest.json or shards/)"
        )


class WarehouseIndex:
    """The sqlite index of one run store (see the module docstring)."""

    def __init__(
        self,
        store_path: Union[str, "os.PathLike[str]"],
        *,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        if sqlite3 is None:
            raise ConfigurationError(
                "the warehouse index needs the stdlib sqlite3 module, which "
                "this python build does not provide"
            )
        self._store_path = Path(store_path)
        _require_store(self._store_path)
        self._db_path = self._store_path / INDEX_FILENAME
        self._metrics = metrics
        self._attached: Optional[RunStore] = None
        try:
            self._conn = sqlite3.connect(str(self._db_path))
            self._conn.execute(f"PRAGMA busy_timeout = {_BUSY_TIMEOUT_MS}")
            with self._conn:
                self._conn.executescript(_SCHEMA)
                row = self._conn.execute(
                    "SELECT value FROM meta WHERE key = 'index_schema_version'"
                ).fetchone()
                if row is None:
                    self._conn.execute(
                        "INSERT INTO meta (key, value) VALUES "
                        "('index_schema_version', ?), ('mutation', '0')",
                        (str(INDEX_SCHEMA_VERSION),),
                    )
                elif row[0] != str(INDEX_SCHEMA_VERSION):
                    raise ConfigurationError(
                        f"warehouse index {self._db_path} has schema version "
                        f"{row[0]}, this build writes {INDEX_SCHEMA_VERSION}; "
                        f"run 'repro warehouse rebuild {self._store_path}'"
                    )
        except sqlite3.DatabaseError as error:
            raise ConfigurationError(
                f"warehouse index {self._db_path} is unreadable ({error}); "
                f"run 'repro warehouse rebuild {self._store_path}' to re-derive "
                f"it from the JSONL shards"
            ) from error

    # -- plumbing ----------------------------------------------------------

    @property
    def store_path(self) -> Path:
        """The indexed store's root directory."""
        return self._store_path

    @property
    def path(self) -> Path:
        """The sqlite database file."""
        return self._db_path

    @property
    def connection(self) -> "sqlite3.Connection":
        """The underlying connection (for the query/aggregation layers)."""
        return self._conn

    @classmethod
    def exists(cls, store_path: Union[str, "os.PathLike[str]"]) -> bool:
        """Whether ``store_path`` carries an index file."""
        return (Path(store_path) / INDEX_FILENAME).exists()

    def close(self) -> None:
        """Detach from any store and close the connection."""
        self.detach()
        if self._conn is not None:
            self._conn.close()

    def __enter__(self) -> "WarehouseIndex":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    @contextlib.contextmanager
    def _store_lock(self) -> Iterator[None]:
        """The store's advisory writer lock, so shard reads never race an
        in-flight append (best effort where fcntl is unavailable)."""
        if fcntl is None:
            yield
            return
        with open(self._store_path / _LOCK_NAME, "a+b") as handle:
            fcntl.flock(handle.fileno(), fcntl.LOCK_EX)
            try:
                yield
            finally:
                fcntl.flock(handle.fileno(), fcntl.LOCK_UN)

    def mutation(self) -> int:
        """The mutation counter (bumps whenever existing rows change)."""
        row = self._conn.execute(
            "SELECT value FROM meta WHERE key = 'mutation'"
        ).fetchone()
        return int(row[0]) if row is not None else 0

    def _bump_mutation(self) -> None:
        self._conn.execute(
            "UPDATE meta SET value = CAST(CAST(value AS INTEGER) + 1 AS TEXT) "
            "WHERE key = 'mutation'"
        )

    def max_rowid(self) -> int:
        """The current append watermark of the ``runs`` table."""
        row = self._conn.execute("SELECT MAX(rowid) FROM runs").fetchone()
        return int(row[0]) if row and row[0] is not None else 0

    def count(self) -> int:
        """Total indexed run records."""
        return int(self._conn.execute("SELECT COUNT(*) FROM runs").fetchone()[0])

    def query(self) -> "Any":
        """The typed query API over this index (lazy import avoids a cycle)."""
        from repro.warehouse.query import WarehouseQuery

        return WarehouseQuery(self)

    # -- sync --------------------------------------------------------------

    def sync(self) -> SyncStats:
        """Fold shard changes into the index; watermark-skip the rest.

        Each shard is stat'd under the store's writer lock; a shard whose
        ``(mtime_ns, size_bytes)`` matches the recorded watermark is not
        opened at all.  Changed shards are re-read with last-wins
        semantics, then diffed against the indexed rows: fresh repetitions
        insert, superseded ones update (bumping the mutation counter so
        cached aggregations rebuild), and rows whose shard file vanished
        are dropped.
        """
        started = time.perf_counter()
        stats = SyncStats()
        mutated = False
        shard_dir = self._store_path / "shards"
        seen: List[str] = []
        try:
            paths = sorted(shard_dir.glob("*.jsonl")) if shard_dir.is_dir() else []
            for path in paths:
                shard_id = path.stem
                seen.append(shard_id)
                with self._store_lock():
                    stat = path.stat()
                    watermark = (stat.st_mtime_ns, stat.st_size)
                    row = self._conn.execute(
                        "SELECT mtime_ns, size_bytes FROM shards WHERE shard_id = ?",
                        (shard_id,),
                    ).fetchone()
                    if row is not None and (row[0], row[1]) == watermark:
                        stats.shards_skipped += 1
                        continue
                    latest, line_count = self._read_shard(path)
                stats.shards_read += 1
                if not latest:
                    continue
                scenario_key = next(iter(latest.values())).scenario_key()
                with self._conn:
                    existing = {
                        repetition: line
                        for repetition, line in self._conn.execute(
                            "SELECT repetition, json FROM runs WHERE shard_id = ?",
                            (shard_id,),
                        )
                    }
                    for repetition in sorted(latest):
                        record = latest[repetition]
                        line = record.to_json_line()
                        stored = existing.get(repetition)
                        if stored == line:
                            continue
                        self._conn.execute(_INSERT_RUN, _run_row(record, shard_id))
                        if stored is None:
                            stats.rows_added += 1
                        else:
                            stats.rows_updated += 1
                            mutated = True
                    for repetition in set(existing) - set(latest):
                        self._conn.execute(
                            "DELETE FROM runs WHERE shard_id = ? AND repetition = ?",
                            (shard_id, repetition),
                        )
                        stats.rows_removed += 1
                        mutated = True
                    self._conn.execute(
                        "INSERT OR REPLACE INTO shards "
                        "(shard_id, scenario_key, mtime_ns, size_bytes, line_count) "
                        "VALUES (?, ?, ?, ?, ?)",
                        (shard_id, scenario_key, watermark[0], watermark[1], line_count),
                    )
            with self._conn:
                for (shard_id,) in self._conn.execute(
                    "SELECT shard_id FROM shards"
                ).fetchall():
                    if shard_id in seen:
                        continue
                    removed = self._conn.execute(
                        "DELETE FROM runs WHERE shard_id = ?", (shard_id,)
                    ).rowcount
                    self._conn.execute(
                        "DELETE FROM shards WHERE shard_id = ?", (shard_id,)
                    )
                    stats.rows_removed += max(removed, 0)
                    mutated = True
                if mutated:
                    self._bump_mutation()
        except sqlite3.DatabaseError as error:
            raise ConfigurationError(
                f"warehouse index {self._db_path} failed during sync ({error}); "
                f"run 'repro warehouse rebuild {self._store_path}'"
            ) from error
        stats.seconds = time.perf_counter() - started
        self._record_sync_metrics(stats)
        return stats

    @staticmethod
    def _read_shard(path: Path) -> Tuple[Dict[int, RunRecord], int]:
        """Last-wins records of one shard plus its record-line count."""
        latest: Dict[int, RunRecord] = {}
        lines = 0
        with open(path, "r", encoding="utf-8") as handle:
            for record in iter_records(handle, source=str(path)):
                latest[record.repetition] = record
                lines += 1
        return latest, lines

    def _record_sync_metrics(self, stats: SyncStats) -> None:
        if self._metrics is None:
            return
        self._metrics.counter("warehouse.sync.calls").inc()
        self._metrics.counter("warehouse.sync.shards_read").inc(stats.shards_read)
        self._metrics.counter("warehouse.sync.shards_skipped").inc(stats.shards_skipped)
        self._metrics.counter("warehouse.sync.rows_added").inc(stats.rows_added)
        self._metrics.histogram("warehouse.sync.seconds").observe(stats.seconds)

    # -- live writer attachment -------------------------------------------

    def attach(self, store: RunStore) -> None:
        """Mirror every append ``store`` performs into the index, eagerly.

        The listener runs under the store's writer lock.  When the index's
        shard watermark matches the pre-append state it folds the fresh
        records in directly and advances the watermark — a no-op ``sync``
        afterwards re-reads nothing.  When the index was behind (or sqlite
        errors out) the shard watermark is dropped instead, so the next
        ``sync`` re-reads that shard and reconciles.
        """
        if self._attached is store:
            return
        self.detach()
        store.add_listener(self._on_store_append)
        self._attached = store

    def detach(self) -> None:
        """Stop mirroring the attached store's appends."""
        if self._attached is not None:
            self._attached.remove_listener(self._on_store_append)
            self._attached = None

    def _on_store_append(self, event: StoreAppendEvent) -> None:
        try:
            with self._conn:
                row = self._conn.execute(
                    "SELECT mtime_ns, size_bytes, line_count FROM shards "
                    "WHERE shard_id = ?",
                    (event.shard_id,),
                ).fetchone()
                current = (
                    (row is None and event.before is None)
                    or (row is not None and (row[0], row[1]) == event.before)
                )
                for record in event.records:
                    self._conn.execute(_INSERT_RUN, _run_row(record, event.shard_id))
                if event.replaced:
                    self._bump_mutation()
                if current:
                    line_count = (row[2] if row is not None else 0) + len(event.records)
                    self._conn.execute(
                        "INSERT OR REPLACE INTO shards "
                        "(shard_id, scenario_key, mtime_ns, size_bytes, line_count) "
                        "VALUES (?, ?, ?, ?, ?)",
                        (
                            event.shard_id,
                            event.scenario_key,
                            event.after[0],
                            event.after[1],
                            line_count,
                        ),
                    )
                else:
                    # The index missed earlier lines of this shard: drop the
                    # watermark so the next sync re-reads and reconciles.
                    self._conn.execute(
                        "DELETE FROM shards WHERE shard_id = ?", (event.shard_id,)
                    )
        except sqlite3.Error as error:
            logger.warning(
                "warehouse index %s could not mirror a store append (%s); "
                "detaching — run 'repro warehouse sync' to catch up",
                self._db_path,
                error,
            )
            self.detach()


def open_index(
    store_path: Union[str, "os.PathLike[str]"],
    *,
    metrics: Optional[MetricsRegistry] = None,
) -> Optional[WarehouseIndex]:
    """Open an **existing** index, or ``None`` for transparent fallback.

    Returns ``None`` when sqlite is unavailable, when the store has no
    index file, or when the index is unreadable (logged as a warning) —
    callers then fall back to plain shard scans.
    """
    if sqlite3 is None or not WarehouseIndex.exists(store_path):
        return None
    try:
        return WarehouseIndex(store_path, metrics=metrics)
    except ConfigurationError as error:
        logger.warning("%s; falling back to shard scans", error)
        return None


def rebuild_index(
    store_path: Union[str, "os.PathLike[str]"],
    *,
    metrics: Optional[MetricsRegistry] = None,
) -> Tuple[WarehouseIndex, SyncStats]:
    """Delete the index database and re-derive it from the JSONL shards.

    The recovery path for corruption and schema bumps: nothing the index
    holds is authoritative, so dropping it is always safe.
    """
    if sqlite3 is None:
        raise ConfigurationError(
            "the warehouse index needs the stdlib sqlite3 module, which "
            "this python build does not provide"
        )
    store_path = Path(store_path)
    _require_store(store_path)
    db_path = store_path / INDEX_FILENAME
    for suffix in ("", "-journal", "-wal", "-shm"):
        with contextlib.suppress(FileNotFoundError):
            os.remove(f"{db_path}{suffix}")
    index = WarehouseIndex(store_path, metrics=metrics)
    stats = index.sync()
    return index, stats
