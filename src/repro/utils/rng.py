"""Deterministic random number generator helpers.

All randomness in the library flows through :class:`random.Random` instances
that are created from explicit seeds.  This keeps simulations reproducible:
the same seed always produces the same dynamic graph sequence, the same
adversary choices and the same algorithm behaviour.
"""

from __future__ import annotations

import random
import zlib
from typing import Iterable, List, Optional, Sequence, TypeVar, Union

T = TypeVar("T")

SeedLike = Union[None, int, random.Random]


def stable_hash(label: object) -> int:
    """A 32-bit hash of ``str(label)`` that is stable across processes.

    Python's built-in ``hash`` of strings is randomized per interpreter
    (PYTHONHASHSEED), so it cannot be used to derive seeds that must agree
    between a parent process and its worker processes (or between two runs
    of the same command).  CRC32 is deterministic everywhere.
    """
    return zlib.crc32(str(label).encode("utf-8")) & 0xFFFFFFFF


def ensure_rng(seed: SeedLike = None) -> random.Random:
    """Return a :class:`random.Random` for ``seed``.

    ``seed`` may be ``None`` (fresh nondeterministic generator), an integer
    seed, or an existing generator (returned unchanged).
    """
    if isinstance(seed, random.Random):
        return seed
    if seed is None:
        return random.Random()
    if isinstance(seed, bool) or not isinstance(seed, int):
        raise TypeError(f"seed must be None, an int or a random.Random, got {seed!r}")
    return random.Random(seed)


def spawn_rng(rng: random.Random, label: str = "") -> random.Random:
    """Derive an independent child generator from ``rng``.

    The child is seeded from the parent's stream together with ``label`` so
    that distinct components (adversary, algorithm, workload) receive
    decorrelated but reproducible randomness.
    """
    base = rng.getrandbits(64)
    mix = stable_hash(label)
    return random.Random(base ^ (mix << 16))


def random_subset(rng: random.Random, items: Sequence[T], probability: float) -> List[T]:
    """Return the items selected independently with the given probability."""
    if not 0.0 <= probability <= 1.0:
        raise ValueError(f"probability must be in [0, 1], got {probability}")
    return [item for item in items if rng.random() < probability]


def sample_without_replacement(
    rng: random.Random, items: Sequence[T], count: int
) -> List[T]:
    """Sample ``count`` distinct items (all of them if ``count`` exceeds the size)."""
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    count = min(count, len(items))
    return rng.sample(list(items), count)


def shuffled(rng: random.Random, items: Iterable[T]) -> List[T]:
    """Return a new shuffled list of ``items`` without mutating the input."""
    out = list(items)
    rng.shuffle(out)
    return out


def weighted_choice(rng: random.Random, items: Sequence[T], weights: Sequence[float]) -> T:
    """Pick one item with probability proportional to its weight."""
    if len(items) != len(weights):
        raise ValueError("items and weights must have the same length")
    if not items:
        raise ValueError("cannot choose from an empty sequence")
    total = float(sum(weights))
    if total <= 0:
        raise ValueError("total weight must be positive")
    target = rng.random() * total
    cumulative = 0.0
    for item, weight in zip(items, weights):
        if weight < 0:
            raise ValueError("weights must be non-negative")
        cumulative += weight
        if target < cumulative:
            return item
    return items[-1]


def derive_seed(seed: Optional[int], *labels: object) -> int:
    """Combine a base seed with labels into a stable derived integer seed."""
    base = 0 if seed is None else int(seed)
    value = base & 0xFFFFFFFFFFFFFFFF
    for label in labels:
        value = (value * 1000003) ^ stable_hash(label)
        value &= 0xFFFFFFFFFFFFFFFF
    return value
