"""Node identifiers and edge normalization.

Nodes are identified by integers (the paper assumes unique O(log n)-bit IDs).
Undirected edges are represented as sorted 2-tuples so that ``(u, v)`` and
``(v, u)`` compare equal throughout the library.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple

from repro.utils.validation import ConfigurationError

NodeId = int
Edge = Tuple[NodeId, NodeId]


def normalize_edge(u: NodeId, v: NodeId) -> Edge:
    """Return the canonical (sorted) representation of the undirected edge ``{u, v}``."""
    if u == v:
        raise ConfigurationError(f"self-loop edges are not allowed: ({u}, {v})")
    return (u, v) if u < v else (v, u)


def normalize_edges(edges: Iterable[Sequence[NodeId]]) -> frozenset:
    """Normalize an iterable of edge pairs into a frozenset of canonical edges."""
    return frozenset(normalize_edge(u, v) for (u, v) in edges)


def validate_nodes(nodes: Iterable[NodeId]) -> List[NodeId]:
    """Validate a node collection: integer IDs, no duplicates, at least one node."""
    node_list = list(nodes)
    if not node_list:
        raise ConfigurationError("the node set must not be empty")
    seen = set()
    for node in node_list:
        if isinstance(node, bool) or not isinstance(node, int):
            raise ConfigurationError(f"node identifiers must be ints, got {node!r}")
        if node in seen:
            raise ConfigurationError(f"duplicate node identifier: {node}")
        seen.add(node)
    return sorted(node_list)


def validate_edges(nodes: Iterable[NodeId], edges: Iterable[Edge]) -> frozenset:
    """Validate that every edge endpoint belongs to ``nodes`` and normalize the set."""
    node_set = set(nodes)
    normalized = set()
    for u, v in edges:
        if u not in node_set or v not in node_set:
            raise ConfigurationError(f"edge ({u}, {v}) has an endpoint outside the node set")
        normalized.add(normalize_edge(u, v))
    return frozenset(normalized)
