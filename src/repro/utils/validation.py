"""Validation helpers and the library's exception hierarchy."""

from __future__ import annotations

from typing import Any, Tuple, Type, Union


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class ConfigurationError(ReproError):
    """Raised when a component is constructed with invalid parameters."""


class SimulationError(ReproError):
    """Raised when an execution violates a model invariant at run time."""


class ProtocolViolationError(SimulationError):
    """Raised when an algorithm breaks the communication model rules."""


class AdversaryViolationError(SimulationError):
    """Raised when an adversary produces an invalid round graph."""


def require_type(value: Any, types: Union[Type, Tuple[Type, ...]], name: str) -> Any:
    """Raise :class:`ConfigurationError` unless ``value`` has one of ``types``."""
    if not isinstance(value, types):
        raise ConfigurationError(
            f"{name} must be of type {types}, got {type(value).__name__}: {value!r}"
        )
    return value


def require_positive_int(value: Any, name: str) -> int:
    """Validate that ``value`` is an integer greater than zero."""
    if isinstance(value, bool) or not isinstance(value, int):
        raise ConfigurationError(f"{name} must be an int, got {type(value).__name__}")
    if value <= 0:
        raise ConfigurationError(f"{name} must be positive, got {value}")
    return value


def require_non_negative_int(value: Any, name: str) -> int:
    """Validate that ``value`` is an integer greater than or equal to zero."""
    if isinstance(value, bool) or not isinstance(value, int):
        raise ConfigurationError(f"{name} must be an int, got {type(value).__name__}")
    if value < 0:
        raise ConfigurationError(f"{name} must be non-negative, got {value}")
    return value


def require_probability(value: Any, name: str) -> float:
    """Validate that ``value`` is a probability in ``[0, 1]``."""
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ConfigurationError(f"{name} must be a number, got {type(value).__name__}")
    value = float(value)
    if not 0.0 <= value <= 1.0:
        raise ConfigurationError(f"{name} must lie in [0, 1], got {value}")
    return value


def require_in_range(value: Any, low: float, high: float, name: str) -> float:
    """Validate that ``value`` lies in the closed interval ``[low, high]``."""
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ConfigurationError(f"{name} must be a number, got {type(value).__name__}")
    if not low <= value <= high:
        raise ConfigurationError(f"{name} must lie in [{low}, {high}], got {value}")
    return value
