"""Shared utilities: RNG handling, validation, identifiers and lightweight logging.

These helpers are intentionally small and dependency-free.  Every other
subpackage of :mod:`repro` builds on them, so they must stay simple and
deterministic.
"""

from repro.utils.rng import ensure_rng, spawn_rng, random_subset
from repro.utils.validation import (
    ReproError,
    ConfigurationError,
    SimulationError,
    require_positive_int,
    require_non_negative_int,
    require_probability,
    require_in_range,
    require_type,
)
from repro.utils.ids import NodeId, normalize_edge, validate_nodes

__all__ = [
    "ensure_rng",
    "spawn_rng",
    "random_subset",
    "ReproError",
    "ConfigurationError",
    "SimulationError",
    "require_positive_int",
    "require_non_negative_int",
    "require_probability",
    "require_in_range",
    "require_type",
    "NodeId",
    "normalize_edge",
    "validate_nodes",
]
