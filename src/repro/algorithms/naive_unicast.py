"""Naive unicast dissemination.

Section 1 notes that in the unicast model "an O(n²) amortized upper bound is
easy to obtain (each node sends each token at most once to each other node)".
:class:`NaiveUnicastAlgorithm` realizes exactly that rule: every node keeps,
per other node, the set of tokens it has already pushed to it; each round it
sends to every current neighbour one token it knows and has not yet sent to
that neighbour.

Total messages are bounded by ``n(n-1)k`` pair-token sends, i.e. ``O(n²)``
amortized per token.  Progress on every connected round graph: as long as
some node misses some token, there is an edge between a knower and a
non-knower, and the knower keeps pushing unsent tokens over it.  (Against a
strongly adaptive adversary the round complexity can be large, but the
message bound above always holds.)
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Mapping, Set

from repro.algorithms.base import UnicastAlgorithm
from repro.core.messages import Payload, TokenMessage
from repro.core.tokens import Token
from repro.utils.ids import NodeId


class NaiveUnicastAlgorithm(UnicastAlgorithm):
    """Each node sends each token at most once to each other node."""

    name = "naive-unicast"

    def __init__(self) -> None:
        super().__init__()
        self._sent: Dict[NodeId, Dict[NodeId, Set[Token]]] = {}

    def on_setup(self) -> None:
        self._sent = {node: {} for node in self.nodes}

    def _next_token_for(self, sender: NodeId, receiver: NodeId) -> Token:
        """The smallest token the sender knows and has not yet sent to the receiver."""
        already_sent = self._sent[sender].setdefault(receiver, set())
        for token in sorted(self.known_tokens(sender)):
            if token not in already_sent:
                return token
        return None  # type: ignore[return-value]

    def select_messages(
        self, round_index: int, neighbors: Mapping[NodeId, FrozenSet[NodeId]]
    ) -> Dict[NodeId, Dict[NodeId, List[Payload]]]:
        sends: Dict[NodeId, Dict[NodeId, List[Payload]]] = {}
        for sender in self.nodes:
            outgoing: Dict[NodeId, List[Payload]] = {}
            for receiver in sorted(neighbors.get(sender, frozenset())):
                token = self._next_token_for(sender, receiver)
                if token is None:
                    continue
                self._sent[sender][receiver].add(token)
                outgoing[receiver] = [TokenMessage(token)]
            if outgoing:
                sends[sender] = outgoing
        return sends

    def is_quiescent(self) -> bool:
        """True when every node has pushed all of its tokens to every other node."""
        total_pairs = len(self.nodes) * (len(self.nodes) - 1)
        pushed = sum(
            1
            for sender in self.nodes
            for receiver, tokens in self._sent[sender].items()
            if len(tokens) >= len(self.known_tokens(sender))
        )
        return pushed >= total_pairs
