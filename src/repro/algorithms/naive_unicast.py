"""Naive unicast dissemination.

Section 1 notes that in the unicast model "an O(n²) amortized upper bound is
easy to obtain (each node sends each token at most once to each other node)".
:class:`NaiveUnicastAlgorithm` realizes exactly that rule: every node keeps,
per other node, the set of tokens it has already pushed to it; each round it
sends to every current neighbour one token it knows and has not yet sent to
that neighbour.

Total messages are bounded by ``n(n-1)k`` pair-token sends, i.e. ``O(n²)``
amortized per token.  Progress on every connected round graph: as long as
some node misses some token, there is an edge between a knower and a
non-knower, and the knower keeps pushing unsent tokens over it.  (Against a
strongly adaptive adversary the round complexity can be large, but the
message bound above always holds.)
"""

from __future__ import annotations

from typing import Callable, Dict, FrozenSet, List, Mapping, Optional, Set, Tuple

from repro.algorithms.base import UnicastAlgorithm
from repro.batch.programs import BatchRoundProgram
from repro.core.messages import MessageKind, Payload, TokenMessage
from repro.core.observation import SentRecord
from repro.core.rounds import FastRoundProgram
from repro.core.tokens import Token
from repro.utils.ids import NodeId

_KIND_TOKEN = MessageKind.TOKEN.value


class NaiveUnicastAlgorithm(UnicastAlgorithm):
    """Each node sends each token at most once to each other node."""

    name = "naive-unicast"

    def __init__(self) -> None:
        super().__init__()
        self._sent: Dict[NodeId, Dict[NodeId, Set[Token]]] = {}

    def on_setup(self) -> None:
        self._sent = {node: {} for node in self.nodes}

    def _next_token_for(self, sender: NodeId, receiver: NodeId) -> Token:
        """The smallest token the sender knows and has not yet sent to the receiver."""
        already_sent = self._sent[sender].setdefault(receiver, set())
        for token in sorted(self.known_tokens(sender)):
            if token not in already_sent:
                return token
        return None  # type: ignore[return-value]

    def select_messages(
        self, round_index: int, neighbors: Mapping[NodeId, FrozenSet[NodeId]]
    ) -> Dict[NodeId, Dict[NodeId, List[Payload]]]:
        sends: Dict[NodeId, Dict[NodeId, List[Payload]]] = {}
        for sender in self.nodes:
            outgoing: Dict[NodeId, List[Payload]] = {}
            for receiver in sorted(neighbors.get(sender, frozenset())):
                token = self._next_token_for(sender, receiver)
                if token is None:
                    continue
                self._sent[sender][receiver].add(token)
                outgoing[receiver] = [TokenMessage(token)]
            if outgoing:
                sends[sender] = outgoing
        return sends

    def is_quiescent(self) -> bool:
        """True when every node has pushed all of its tokens to every other node."""
        total_pairs = len(self.nodes) * (len(self.nodes) - 1)
        pushed = sum(
            1
            for sender in self.nodes
            for receiver, tokens in self._sent[sender].items()
            if len(tokens) >= len(self.known_tokens(sender))
        )
        return pushed >= total_pairs

    def fast_program_factory(self) -> Optional[Callable]:
        if type(self) is not NaiveUnicastAlgorithm:
            return None
        return lambda kernel: _NaiveUnicastFastProgram(kernel, self)

    def batch_program_factory(self) -> Optional[Callable]:
        if type(self) is not NaiveUnicastAlgorithm:
            return None
        return lambda kernel: _NaiveUnicastBatchProgram(kernel, self)


class _NaiveUnicastFastProgram(FastRoundProgram):
    """Naive unicast on bitmask state: per-pair sent-token bitmasks.

    Mirrors :class:`NaiveUnicastAlgorithm` exactly, including the
    quiescence rule's bookkeeping quirk: a pair entry exists as soon as a
    sender *considers* a neighbour, even when it has nothing left to send.
    """

    def setup(self) -> None:
        # sent[v][u] = bitmask of tokens v has pushed to u.  An entry is
        # created on first consideration (mirroring the reference
        # ``setdefault``), which the quiescence rule depends on.
        self.sent: List[Dict[int, int]] = [{} for _ in range(self.n)]

    def deliver(self, round_index: int, commitment) -> None:
        n = self.n
        adj = self.adj
        state = self.state
        know = state.know
        per_node = self.per_node
        sent = self.sent
        deliveries: List[Optional[List[Tuple[int, int]]]] = [None] * n
        observe = self.kernel.observe_messages
        records: Optional[List[SentRecord]] = [] if observe else None
        nodes = self.nodes
        tokens = self.tokens

        token_count = 0
        for v in range(n):
            neighbors = adj[v]
            if not neighbors:
                continue
            sent_v = sent[v]
            know_v = know[v]
            to_visit = neighbors
            while to_visit:
                low = to_visit & -to_visit
                u = low.bit_length() - 1
                to_visit ^= low
                already = sent_v.get(u)
                if already is None:
                    already = sent_v[u] = 0
                sendable = know_v & ~already
                if not sendable:
                    continue
                token_low = sendable & -sendable
                token_bit_index = token_low.bit_length() - 1
                sent_v[u] = already | token_low
                token_count += 1
                per_node[v] += 1
                box = deliveries[u]
                if box is None:
                    box = deliveries[u] = []
                box.append((v, token_bit_index))
                if records is not None:
                    records.append(
                        SentRecord(
                            sender=nodes[v],
                            receiver=nodes[u],
                            payload=TokenMessage(tokens[token_bit_index]),
                        )
                    )

        learn_index = state.learn_index
        for u in range(n):
            box = deliveries[u]
            if not box:
                continue
            for _, token_bit_index in box:
                learn_index(u, token_bit_index)

        self.accounting.count_bulk(_KIND_TOKEN, token_count)
        if records is not None:
            self.store_sent_records(records)

    def is_quiescent(self) -> bool:
        total_pairs = self.n * (self.n - 1)
        know_count = self.state.know_count
        pushed = 0
        for v, sent_v in enumerate(self.sent):
            count = know_count[v]
            for mask in sent_v.values():
                if mask.bit_count() >= count:
                    pushed += 1
        return pushed >= total_pairs


class _NaiveUnicastBatchProgram(BatchRoundProgram):
    """Naive unicast across lanes: per-lane sent-pair bitmasks, lockstep rounds.

    Message selection depends on each lane's own send history, so the round
    body replays :class:`_NaiveUnicastFastProgram` lane by lane on the
    lane's adjacency bitmasks (including the quiescence rule's
    create-on-consideration quirk).  Knowledge is mirrored in per-lane
    integer bitmasks so the hot sendable test never touches a numpy scalar;
    the batch state is only told about successful learnings.
    """

    def setup(self) -> None:
        initial = self.kernel.problem.initial_knowledge
        token_index = self.kernel.token_index
        initial_masks = [
            sum(1 << token_index[token] for token in initial[node])
            for node in self.nodes
        ]
        lanes = self.kernel.lanes
        # sent[lane][v][u] = bitmask of tokens v has pushed to u on this lane.
        self.sent: List[List[Dict[int, int]]] = [
            [{} for _ in range(self.n)] for _ in range(lanes)
        ]
        self.know_masks: List[List[int]] = [
            list(initial_masks) for _ in range(lanes)
        ]

    def deliver(self, round_index: int, commitment) -> None:
        n = self.n
        state = self.state
        stages = self.kernel.stages
        accounting = self.accounting
        per_node = accounting.per_node
        for lane in self.np.nonzero(self.kernel.active_lanes)[0]:
            lane = int(lane)
            adj = stages[lane].adj
            sent = self.sent[lane]
            know_masks = self.know_masks[lane]
            per_node_lane = per_node[lane]
            deliveries: List[Optional[List[int]]] = [None] * n
            token_count = 0
            for v in range(n):
                neighbors = adj[v]
                if not neighbors:
                    continue
                sent_v = sent[v]
                know_v = know_masks[v]
                to_visit = neighbors
                while to_visit:
                    low = to_visit & -to_visit
                    u = low.bit_length() - 1
                    to_visit ^= low
                    already = sent_v.get(u)
                    if already is None:
                        already = sent_v[u] = 0
                    sendable = know_v & ~already
                    if not sendable:
                        continue
                    token_low = sendable & -sendable
                    sent_v[u] = already | token_low
                    token_count += 1
                    per_node_lane[v] += 1
                    box = deliveries[u]
                    if box is None:
                        box = deliveries[u] = []
                    box.append(token_low.bit_length() - 1)
            for u in range(n):
                box = deliveries[u]
                if not box:
                    continue
                for token_bit_index in box:
                    if not (know_masks[u] >> token_bit_index) & 1:
                        know_masks[u] |= 1 << token_bit_index
                        state.learn_lane_index(lane, u, token_bit_index)
            accounting.count_lane(lane, _KIND_TOKEN, token_count)

    def quiescent_lanes(self):
        n = self.n
        total_pairs = n * (n - 1)
        flags = []
        for lane in range(self.kernel.lanes):
            know_masks = self.know_masks[lane]
            pushed = 0
            for v, sent_v in enumerate(self.sent[lane]):
                count = know_masks[v].bit_count()
                for mask in sent_v.values():
                    if mask.bit_count() >= count:
                        pushed += 1
            flags.append(pushed >= total_pairs)
        return self.np.array(flags, dtype=self.np.bool_)
