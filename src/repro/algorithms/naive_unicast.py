"""Naive unicast dissemination.

Section 1 notes that in the unicast model "an O(n²) amortized upper bound is
easy to obtain (each node sends each token at most once to each other node)".
:class:`NaiveUnicastAlgorithm` realizes exactly that rule: every node keeps,
per other node, the set of tokens it has already pushed to it; each round it
sends to every current neighbour one token it knows and has not yet sent to
that neighbour.

Total messages are bounded by ``n(n-1)k`` pair-token sends, i.e. ``O(n²)``
amortized per token.  Progress on every connected round graph: as long as
some node misses some token, there is an edge between a knower and a
non-knower, and the knower keeps pushing unsent tokens over it.  (Against a
strongly adaptive adversary the round complexity can be large, but the
message bound above always holds.)
"""

from __future__ import annotations

from typing import Callable, Dict, FrozenSet, List, Mapping, Optional, Set, Tuple

from repro.algorithms.base import UnicastAlgorithm
from repro.batch.programs import BatchRoundProgram
from repro.core.messages import MessageKind, Payload, TokenMessage
from repro.core.observation import SentRecord
from repro.core.rounds import FastRoundProgram
from repro.core.tokens import Token
from repro.utils.ids import NodeId

_KIND_TOKEN = MessageKind.TOKEN.value


class NaiveUnicastAlgorithm(UnicastAlgorithm):
    """Each node sends each token at most once to each other node."""

    name = "naive-unicast"

    def __init__(self) -> None:
        super().__init__()
        self._sent: Dict[NodeId, Dict[NodeId, Set[Token]]] = {}

    def on_setup(self) -> None:
        self._sent = {node: {} for node in self.nodes}

    def _next_token_for(self, sender: NodeId, receiver: NodeId) -> Token:
        """The smallest token the sender knows and has not yet sent to the receiver."""
        already_sent = self._sent[sender].setdefault(receiver, set())
        for token in sorted(self.known_tokens(sender)):
            if token not in already_sent:
                return token
        return None  # type: ignore[return-value]

    def select_messages(
        self, round_index: int, neighbors: Mapping[NodeId, FrozenSet[NodeId]]
    ) -> Dict[NodeId, Dict[NodeId, List[Payload]]]:
        sends: Dict[NodeId, Dict[NodeId, List[Payload]]] = {}
        for sender in self.nodes:
            outgoing: Dict[NodeId, List[Payload]] = {}
            for receiver in sorted(neighbors.get(sender, frozenset())):
                token = self._next_token_for(sender, receiver)
                if token is None:
                    continue
                self._sent[sender][receiver].add(token)
                outgoing[receiver] = [TokenMessage(token)]
            if outgoing:
                sends[sender] = outgoing
        return sends

    def is_quiescent(self) -> bool:
        """True when every node has pushed all of its tokens to every other node."""
        total_pairs = len(self.nodes) * (len(self.nodes) - 1)
        pushed = sum(
            1
            for sender in self.nodes
            for receiver, tokens in self._sent[sender].items()
            if len(tokens) >= len(self.known_tokens(sender))
        )
        return pushed >= total_pairs

    def fast_program_factory(self) -> Optional[Callable]:
        if type(self) is not NaiveUnicastAlgorithm:
            return None
        return lambda kernel: _NaiveUnicastFastProgram(kernel, self)

    def batch_program_factory(self) -> Optional[Callable]:
        if type(self) is not NaiveUnicastAlgorithm:
            return None
        return lambda kernel: _NaiveUnicastBatchProgram(kernel, self)


class _NaiveUnicastFastProgram(FastRoundProgram):
    """Naive unicast on bitmask state: per-pair sent-token bitmasks.

    Mirrors :class:`NaiveUnicastAlgorithm` exactly, including the
    quiescence rule's bookkeeping quirk: a pair entry exists as soon as a
    sender *considers* a neighbour, even when it has nothing left to send.
    """

    def setup(self) -> None:
        # sent[v][u] = bitmask of tokens v has pushed to u.  An entry is
        # created on first consideration (mirroring the reference
        # ``setdefault``), which the quiescence rule depends on.
        self.sent: List[Dict[int, int]] = [{} for _ in range(self.n)]

    def deliver(self, round_index: int, commitment) -> None:
        n = self.n
        adj = self.adj
        state = self.state
        know = state.know
        per_node = self.per_node
        sent = self.sent
        deliveries: List[Optional[List[Tuple[int, int]]]] = [None] * n
        observe = self.kernel.observe_messages
        records: Optional[List[SentRecord]] = [] if observe else None
        nodes = self.nodes
        tokens = self.tokens

        token_count = 0
        for v in range(n):
            neighbors = adj[v]
            if not neighbors:
                continue
            sent_v = sent[v]
            know_v = know[v]
            to_visit = neighbors
            while to_visit:
                low = to_visit & -to_visit
                u = low.bit_length() - 1
                to_visit ^= low
                already = sent_v.get(u)
                if already is None:
                    already = sent_v[u] = 0
                sendable = know_v & ~already
                if not sendable:
                    continue
                token_low = sendable & -sendable
                token_bit_index = token_low.bit_length() - 1
                sent_v[u] = already | token_low
                token_count += 1
                per_node[v] += 1
                box = deliveries[u]
                if box is None:
                    box = deliveries[u] = []
                box.append((v, token_bit_index))
                if records is not None:
                    records.append(
                        SentRecord(
                            sender=nodes[v],
                            receiver=nodes[u],
                            payload=TokenMessage(tokens[token_bit_index]),
                        )
                    )

        learn_index = state.learn_index
        for u in range(n):
            box = deliveries[u]
            if not box:
                continue
            for _, token_bit_index in box:
                learn_index(u, token_bit_index)

        self.accounting.count_bulk(_KIND_TOKEN, token_count)
        if records is not None:
            self.store_sent_records(records)

    def is_quiescent(self) -> bool:
        total_pairs = self.n * (self.n - 1)
        know_count = self.state.know_count
        pushed = 0
        for v, sent_v in enumerate(self.sent):
            count = know_count[v]
            for mask in sent_v.values():
                if mask.bit_count() >= count:
                    pushed += 1
        return pushed >= total_pairs


class _NaiveUnicastBatchProgram(BatchRoundProgram):
    """Naive unicast across lanes: packed per-pair send history, bulk rounds.

    The per-pair "tokens v already pushed to u" sets of every lane live in
    one ``(lanes, n, n, words)`` uint64 cube (``words = ceil(k / 64)``), so
    a round is pure array work: mask the knowledge words of every sender
    against its per-pair sent words, find the lowest settable bit per
    adjacent pair with a word-at-a-time bit trick, and fold the chosen bits
    back into the history cube — all lanes at once.  The quiescence rule's
    create-on-consideration quirk survives as a ``(lanes, n, n)`` bool
    ``considered`` matrix OR-ed with each round's adjacency, and the
    pair-send tallies it compares against knowledge counts are maintained
    incrementally.  Only the actual learnings (at most ``n·k`` per lane over
    the run) drop back to python, in the serial program's receiver-major,
    sender-ascending order.
    """

    needs_dense_adjacency = True

    def setup(self) -> None:
        np = self.np
        lanes = self.kernel.lanes
        n = self.n
        self.words = (self.k + 63) // 64
        initial = self.kernel.problem.initial_knowledge
        token_index = self.kernel.token_index
        # know_words[lane, v, w] mirrors the knowledge cube, 64 tokens per word.
        self.know_words = np.zeros((lanes, n, self.words), dtype=np.uint64)
        for index, node in enumerate(self.nodes):
            for token in initial[node]:
                bit = token_index[token]
                self.know_words[:, index, bit >> 6] |= np.uint64(1 << (bit & 63))
        # sent_words[lane, v, u, w] = tokens v has pushed to u on this lane.
        self.sent_words = np.zeros((lanes, n, n, self.words), dtype=np.uint64)
        self.sent_counts = np.zeros((lanes, n, n), dtype=np.int64)
        self.considered = np.zeros((lanes, n, n), dtype=np.bool_)

    def deliver(self, round_index: int, commitment) -> None:
        np = self.np
        n = self.n
        pairs = (self.kernel.dense_adj > 0.5) & self.kernel.active_lanes[:, None, None]
        self.considered |= pairs
        sendable = self.know_words[:, :, None, :] & ~self.sent_words
        # Lowest sendable bit per (sender, receiver) pair: scan the words
        # ascending, first non-empty word wins, isolate its lowest set bit.
        chosen = np.full((self.kernel.lanes, n, n), -1, dtype=np.int64)
        open_pairs = pairs
        one = np.uint64(1)
        for word in range(self.words):
            words = sendable[:, :, :, word]
            hits = open_pairs & (words != 0)
            if not hits.any():
                continue
            lows = words & (~words + one)
            bits = (
                np.bitwise_count(np.where(hits, lows - one, 0)).astype(np.int64)
                + 64 * word
            )
            chosen = np.where(hits, bits, chosen)
            self.sent_words[:, :, :, word] |= np.where(hits, lows, 0)
            open_pairs = open_pairs & ~hits
        messages = chosen >= 0
        self.sent_counts += messages
        self.accounting.count_lanes(_KIND_TOKEN, messages.sum(axis=(1, 2)))
        self.accounting.per_node += messages.sum(axis=2)
        # Learning order mirrors the serial program: receiver-major, then the
        # senders ascending — ``nonzero`` on the transposed cube walks
        # exactly that order lane by lane.
        ll, uu, vv = np.nonzero(messages.transpose(0, 2, 1))
        if ll.size == 0:
            return
        sent_tokens = chosen[ll, vv, uu]
        fresh = ~self.state.know[ll, uu, sent_tokens]
        learn = self.state.learn_lane_index
        know_words = self.know_words
        for lane, receiver, token_bit in zip(
            ll[fresh].tolist(), uu[fresh].tolist(), sent_tokens[fresh].tolist()
        ):
            # learn_lane_index dedups same-round duplicates (two senders
            # pushing one token to the same receiver); the first — lowest —
            # sender wins, matching the serial delivery loop.
            if learn(lane, receiver, token_bit):
                know_words[lane, receiver, token_bit >> 6] |= np.uint64(
                    1 << (token_bit & 63)
                )

    def quiescent_lanes(self):
        total_pairs = self.n * (self.n - 1)
        pushed = self.considered & (
            self.sent_counts >= self.state.known_counts[:, :, None]
        )
        return pushed.sum(axis=(1, 2)) >= total_pairs
