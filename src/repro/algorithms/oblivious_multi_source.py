"""The Oblivious-Multi-Source-Unicast algorithm (Algorithm 2, Section 3.2.2).

Designed for instances with many sources (``s`` large) and ``k = o(n²)``
tokens, under an *oblivious* adversary.  The algorithm knows ``s`` and ``k``
(an explicit input assumption of the paper) and runs in two phases:

* if ``s ≤ n^{2/3} log^{5/3} n`` it simply runs the Multi-Source-Unicast
  algorithm on the original sources;
* otherwise, **phase 1** reduces the number of sources: every node marks
  itself as a *center* with probability ``f/n`` (``f = √n k^{1/4} log^{5/4}
  n``), and every token performs a random walk on the virtual n-regular
  multigraph — with the congestion rule of one token per actual edge per
  round and with high-degree nodes (degree ≥ ``γ = n log n / f``) handing
  tokens directly to neighbouring centers — until it is owned by some
  center;
* **phase 2** runs Multi-Source-Unicast with the centers as sources.

Theorem 3.8: the total message complexity is ``O(n^{5/2} k^{1/4} log^{5/4}
n)``, i.e. ``O(n^{5/2} log^{5/4} n / k^{3/4})`` amortized — subquadratic as
soon as ``k = ω(n^{2/3})`` (Table 1).

Implementation notes (documented in DESIGN.md):

* the pseudocode's per-token move probability (``1/d(u)``) and the prose
  (``δ_v/n``, i.e. a step on the virtual n-regular multigraph) differ; we
  follow the prose, which is what the analysis via Lemma 3.7 uses;
* the asymptotic phase-1 round budget ``ℓ`` is astronomically large at
  laptop scale, so phase 1 ends as soon as every token reached a center
  (or after ``phase1_round_limit`` rounds, in which case the current holder
  of each leftover token is promoted to a center — a correctness-preserving
  safeguard that never triggers in the benchmark configurations);
* whether a neighbour is a center is global knowledge in the simulation (in
  the paper centers can announce themselves in one extra bit piggy-backed on
  the first message, which does not change any asymptotic count).
"""

from __future__ import annotations

import math
from typing import Callable, Dict, FrozenSet, List, Mapping, Optional, Sequence, Set, Tuple

from repro.algorithms.multi_source import (
    MultiSourceUnicastAlgorithm,
    _MultiSourceFastProgram,
    _MultiSourceLaneMachine,
)
from repro.batch.programs import BatchRoundProgram
from repro.algorithms.random_walks import (
    RandomWalkDisseminator,
    default_degree_threshold,
    default_num_centers,
    phase_one_round_budget,
    source_count_threshold,
)
from repro.core.messages import Payload, ReceivedMessage, TokenMessage
from repro.core.observation import SentRecord
from repro.core.rounds import FastRoundProgram
from repro.core.state import edge_id
from repro.core.tokens import Token
from repro.utils.ids import NodeId
from repro.utils.validation import ConfigurationError, require_positive_int


class ObliviousMultiSourceAlgorithm(MultiSourceUnicastAlgorithm):
    """Algorithm 2: random-walk source reduction + Multi-Source-Unicast."""

    name = "oblivious-multi-source-unicast"

    def __init__(
        self,
        *,
        center_probability: Optional[float] = None,
        degree_threshold: Optional[float] = None,
        phase1_round_limit: Optional[int] = None,
        force_two_phase: Optional[bool] = None,
    ) -> None:
        super().__init__()
        if center_probability is not None and not 0.0 < center_probability <= 1.0:
            raise ConfigurationError("center_probability must lie in (0, 1]")
        if degree_threshold is not None and degree_threshold <= 0:
            raise ConfigurationError("degree_threshold must be positive")
        if phase1_round_limit is not None:
            require_positive_int(phase1_round_limit, "phase1_round_limit")
        self._center_probability_override = center_probability
        self._degree_threshold_override = degree_threshold
        self._phase1_round_limit_override = phase1_round_limit
        self._force_two_phase = force_two_phase
        self._phase = 2
        self._walker: Optional[RandomWalkDisseminator] = None
        self._phase1_rounds = 0
        self._phase1_round_limit = 0
        self._phase1_messages = 0

    # -- setup -----------------------------------------------------------------------

    def on_setup(self) -> None:
        super().on_setup()
        n = self.problem.num_nodes
        k = self.problem.num_tokens
        s = self.problem.num_sources
        use_two_phase = (
            self._force_two_phase
            if self._force_two_phase is not None
            else s > source_count_threshold(n)
        )
        self._phase1_rounds = 0
        self._phase1_messages = 0
        if not use_two_phase or n < 2:
            self._phase = 2
            self._walker = None
            return

        self._phase = 1
        probability = self._center_probability_override
        if probability is None:
            probability = min(1.0, default_num_centers(n, k) / n)
        centers = {node for node in self.nodes if self.rng.random() < probability}
        if not centers:
            centers = {self.rng.choice(list(self.nodes))}
        # The high-degree threshold is γ = n·log n / f (a high-degree node has
        # a neighbouring center w.h.p.).  Derive it from the *actual* expected
        # number of centers so that overriding center_probability keeps the
        # two parameters consistent.
        if self._degree_threshold_override is not None:
            threshold = self._degree_threshold_override
        else:
            expected_centers = max(probability * n, 1.0)
            threshold = max(1.0, n * math.log2(max(n, 2)) / expected_centers)
        # The asymptotic phase-1 budget ℓ is astronomically large at laptop
        # scale; cap it so the force-delivery safeguard (promote the current
        # holder to a center) always fires well before the engine round limit.
        self._phase1_round_limit = (
            self._phase1_round_limit_override
            if self._phase1_round_limit_override is not None
            else min(phase_one_round_budget(n, k), 4 * n * k + 8 * n)
        )
        positions: Dict[Token, NodeId] = {}
        for node in self.nodes:
            for token in self.problem.initial_knowledge[node]:
                # Each token starts its walk at (one of) its initial holder(s).
                positions.setdefault(token, node)
        self._walker = RandomWalkDisseminator(
            nodes=self.nodes,
            centers=centers,
            token_positions=positions,
            degree_threshold=threshold,
            rng=self.rng,
        )
        if self._walker.all_delivered():
            self._start_phase_two()

    # -- phase transition ---------------------------------------------------------------

    def _start_phase_two(self) -> None:
        if self._walker is None:
            raise ConfigurationError("phase transition without a phase-1 walker")
        ownership = self._walker.force_delivery_in_place()
        self.configure_catalog({center: tuple(tokens) for center, tokens in ownership.items()})
        self._phase = 2

    # -- engine interface ----------------------------------------------------------------

    @property
    def phase(self) -> int:
        """The currently running phase (1 = random walks, 2 = multi-source)."""
        return self._phase

    @property
    def centers(self) -> Tuple[NodeId, ...]:
        """The centers chosen in phase 1 (empty if phase 1 was skipped)."""
        if self._walker is None:
            return ()
        return tuple(sorted(self._walker.centers))

    @property
    def phase1_rounds(self) -> int:
        """Rounds spent in phase 1."""
        return self._phase1_rounds

    @property
    def phase1_messages(self) -> int:
        """Token messages sent over actual edges during phase 1."""
        return self._phase1_messages

    def select_messages(
        self, round_index: int, neighbors: Mapping[NodeId, FrozenSet[NodeId]]
    ) -> Dict[NodeId, Dict[NodeId, List[Payload]]]:
        if self._phase == 1:
            return self._select_phase_one(neighbors)
        return super().select_messages(round_index, neighbors)

    def _select_phase_one(
        self, neighbors: Mapping[NodeId, FrozenSet[NodeId]]
    ) -> Dict[NodeId, Dict[NodeId, List[Payload]]]:
        assert self._walker is not None
        self._phase1_rounds += 1
        steps = self._walker.plan_round(neighbors)
        sends: Dict[NodeId, Dict[NodeId, List[Payload]]] = {}
        for step in steps:
            sends.setdefault(step.sender, {}).setdefault(step.receiver, []).append(
                TokenMessage(step.token)
            )
            self._walker.apply_step(step)
            self._phase1_messages += 1
        return sends

    def receive_messages(
        self, round_index: int, inbox: Mapping[NodeId, List[ReceivedMessage]]
    ) -> None:
        if self._phase == 1:
            for node, messages in inbox.items():
                for message in messages:
                    if isinstance(message.payload, TokenMessage):
                        learned = self.learn(node, message.payload.token)
                        if learned:
                            self.record_token_over_edge(node, message.sender, round_index)
            assert self._walker is not None
            if self._walker.all_delivered() or self._phase1_rounds >= self._phase1_round_limit:
                self._start_phase_two()
            return
        super().receive_messages(round_index, inbox)

    def observation_extra(self) -> Dict[str, object]:
        extra = super().observation_extra()
        extra["phase"] = self._phase
        extra["centers"] = self.centers
        return extra

    def fast_program_factory(self) -> Optional[Callable]:
        if type(self) is not ObliviousMultiSourceAlgorithm:
            return None
        return lambda kernel: _ObliviousTwoPhaseFastProgram(kernel, self)

    def batch_program_factory(self) -> Optional[Callable]:
        if type(self) is not ObliviousMultiSourceAlgorithm:
            return None
        return lambda kernel: _ObliviousTwoPhaseBatchProgram(kernel, self)


class _ObliviousTwoPhaseFastProgram(FastRoundProgram):
    """Algorithm 2 on bitmask state: real phase 1, fast phase 2.

    Phase 1 (random walks) is inherently sequential — one token per edge
    per round, RNG-driven — so the program drives the *real* algorithm
    object through the exchange semantics, message for message.  The moment
    the algorithm switches to phase 2 (all tokens at centers, or the round
    budget expired), the program fixes the center catalog and activates an
    inner :class:`_MultiSourceFastProgram` over the same kernel, seeded
    with the phase-1 edge history, and delegates every later round to it.
    Executions that skip phase 1 entirely (``s`` below the threshold) run
    the inner program from round 1.
    """

    track_edge_history = True

    def __init__(self, kernel, algorithm) -> None:
        super().__init__(kernel, algorithm)
        self._inner: Optional[_MultiSourceFastProgram] = None

    def setup(self) -> None:
        kernel = self.kernel
        self._inner = None
        self.algorithm.setup(kernel.problem, kernel.algorithm_rng, state=kernel.state)
        if self.algorithm.phase == 2:
            self._activate_inner()

    def _activate_inner(self) -> None:
        algorithm = self.algorithm
        catalog = {
            source: algorithm.catalog_of(source)
            for source in algorithm.catalog_sources()
        }
        inner = _MultiSourceFastProgram(self.kernel, algorithm, catalog=catalog)
        # Phase 1 drove the real algorithm object, so its object-level edge
        # history (including token rounds recorded by receive_messages) is
        # the authoritative one.  Convert it to edge ids and share a single
        # dict between the outer program — which the delivery stage keeps
        # updating — and the inner program, which reads and extends it.
        index_of = self.index_of
        n = self.n
        self.edge_inserted = inner.edge_inserted = {
            edge_id(index_of[u], index_of[v], n): round_index
            for (u, v), round_index in algorithm._edge_last_inserted.items()
        }
        self.edge_token_round = inner.edge_token_round = {
            edge_id(index_of[u], index_of[v], n): round_index
            for (u, v), round_index in algorithm._edge_last_token_round.items()
        }
        inner.setup()
        self._inner = inner

    def deliver(self, round_index: int, commitment) -> None:
        inner = self._inner
        if inner is not None:
            inner.deliver(round_index, commitment)
            self._sent_records = inner._sent_records
            return
        # Phase 1: the exchange semantics, verbatim, against the live
        # algorithm (see UnicastExchangeProgram.deliver).
        kernel = self.kernel
        algorithm = self.algorithm
        graph = kernel.graph
        neighbors = graph.neighbors_view()
        algorithm.on_topology(
            round_index,
            neighbors,
            graph.trace.inserted_edges(round_index),
            graph.trace.removed_edges(round_index),
        )
        sends = algorithm.select_messages(round_index, neighbors)
        accounting = self.accounting
        index_of = self.index_of
        inbox: Dict[NodeId, List[ReceivedMessage]] = {
            node: [] for node in self.nodes
        }
        records: Optional[List[SentRecord]] = (
            [] if kernel.observe_messages else None
        )
        for sender in sorted(sends):
            for receiver in sorted(sends[sender]):
                for payload in sends[sender][receiver]:
                    accounting.count(index_of[sender], payload.kind.value)
                    if records is not None:
                        records.append(
                            SentRecord(
                                sender=sender, receiver=receiver, payload=payload
                            )
                        )
                    inbox[receiver].append(
                        ReceivedMessage(sender=sender, payload=payload)
                    )
        algorithm.receive_messages(round_index, inbox)
        if records is not None:
            self.store_sent_records(records)
        if algorithm.phase == 2:
            self._activate_inner()

    def observation_extra(self) -> Dict[str, object]:
        if self._inner is None:
            return self.algorithm.observation_extra()
        extra = self._inner.observation_extra()
        extra["phase"] = 2
        extra["centers"] = self.algorithm.centers
        return extra


class _ObliviousTwoPhaseBatchProgram(BatchRoundProgram):
    """Algorithm 2 across lanes: real per-lane phase 1, per-lane fast phase 2.

    Phase 1 (random walks) is RNG-driven, and every lane draws its own
    centers and walk steps from its own algorithm stream, so each lane gets
    a *fresh* :class:`ObliviousMultiSourceAlgorithm` instance bound to the
    lane's RNG and the lane-selected view of the batch knowledge state; its
    rounds are driven through the exchange semantics, message for message,
    exactly like the serial :class:`_ObliviousTwoPhaseFastProgram`.  Lanes
    switch phases independently: the moment a lane's algorithm reaches
    phase 2, its center catalog and phase-1 edge history are fixed into a
    :class:`~repro.algorithms.multi_source._MultiSourceLaneMachine` that
    replays every later round of that lane.  Lanes that skip phase 1
    entirely activate their machine during setup.
    """

    def setup(self) -> None:
        kernel = self.kernel
        shared = self.algorithm
        state = self.state
        lanes = kernel.lanes
        self.machines: List[Optional[_MultiSourceLaneMachine]] = [None] * lanes
        self.lane_algorithms: List[ObliviousMultiSourceAlgorithm] = []
        for lane in range(lanes):
            state.select_lane(lane)
            algorithm = ObliviousMultiSourceAlgorithm(
                center_probability=shared._center_probability_override,
                degree_threshold=shared._degree_threshold_override,
                phase1_round_limit=shared._phase1_round_limit_override,
                force_two_phase=shared._force_two_phase,
            )
            # Per-lane RNG parity with a serial run: the lane's algorithm
            # stream drives center selection and every walk step.
            algorithm.setup(kernel.problem, kernel.algorithm_rngs[lane], state=state)
            self.lane_algorithms.append(algorithm)
            if algorithm.phase == 2:
                self._activate_lane(lane)

    def _activate_lane(self, lane: int) -> None:
        """Fix the lane's center catalog and hand over to the fast replay.

        The lane's algorithm object drove phase 1, so its object-level edge
        history (including token rounds recorded by ``receive_messages``) is
        the authoritative one — convert it to edge ids for the machine,
        which keeps extending it (mirroring the serial program's shared
        history dicts).
        """
        kernel = self.kernel
        state = self.state.select_lane(lane)
        algorithm = self.lane_algorithms[lane]
        token_index = kernel.token_index
        index_of = kernel.index_of
        n = self.n
        catalog_bits = [
            tuple(sorted(token_index[token] for token in algorithm.catalog_of(source)))
            for source in algorithm.catalog_sources()
        ]
        know_masks = [state.know_mask(v) for v in range(n)]
        edge_inserted = {
            edge_id(index_of[u], index_of[v], n): round_index
            for (u, v), round_index in algorithm._edge_last_inserted.items()
        }
        edge_token_round = {
            edge_id(index_of[u], index_of[v], n): round_index
            for (u, v), round_index in algorithm._edge_last_token_round.items()
        }
        self.machines[lane] = _MultiSourceLaneMachine(
            n,
            (1 << self.k) - 1,
            catalog_bits,
            know_masks,
            edge_inserted=edge_inserted,
            edge_token_round=edge_token_round,
        )

    def deliver(self, round_index: int, commitment) -> None:
        kernel = self.kernel
        stages = kernel.stages
        state = self.state
        accounting = self.accounting
        stages_advanced = kernel.stages_advanced(round_index)
        machines = self.machines
        nodes = self.nodes
        n = self.n
        index_of = kernel.index_of
        for lane in self.np.nonzero(kernel.active_lanes)[0]:
            lane = int(lane)
            stage = stages[lane]
            machine = machines[lane]
            if machine is not None:
                machine.play_round(
                    lane,
                    round_index,
                    stage.adj,
                    stage.inserted_ids if stages_advanced else None,
                    state,
                    accounting,
                )
                continue
            # Phase 1: the exchange semantics, verbatim, against the lane's
            # live algorithm (see _ObliviousTwoPhaseFastProgram.deliver).
            state.select_lane(lane)
            algorithm = self.lane_algorithms[lane]
            neighbors = stage.neighbors_view()
            if stages_advanced:
                inserted = [
                    (nodes[eid // n], nodes[eid % n]) for eid in stage.inserted_ids
                ]
                removed = [
                    (nodes[eid // n], nodes[eid % n]) for eid in stage.removed_ids
                ]
            else:
                inserted = removed = []
            algorithm.on_topology(round_index, neighbors, inserted, removed)
            sends = algorithm.select_messages(round_index, neighbors)
            per_node_lane = accounting.per_node[lane]
            inbox: Dict[NodeId, List[ReceivedMessage]] = {
                node: [] for node in nodes
            }
            kind_counts: Dict[str, int] = {}
            for sender in sorted(sends):
                sender_index = index_of[sender]
                for receiver in sorted(sends[sender]):
                    for payload in sends[sender][receiver]:
                        kind = payload.kind.value
                        kind_counts[kind] = kind_counts.get(kind, 0) + 1
                        per_node_lane[sender_index] += 1
                        inbox[receiver].append(
                            ReceivedMessage(sender=sender, payload=payload)
                        )
            for kind, count in kind_counts.items():
                accounting.count_lane(lane, kind, count)
            algorithm.receive_messages(round_index, inbox)
            if algorithm.phase == 2:
                self._activate_lane(lane)
