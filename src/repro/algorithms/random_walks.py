"""Random-walk machinery for the oblivious-adversary algorithm (Section 3.2.2).

Phase 1 of Algorithm 2 lets every token perform a random walk on a *virtual
n-regular multigraph*: in every round each node pads its actual degree ``δ``
up to ``n`` with self-loops, so a walk at a low-degree node leaves over an
actual edge only with probability ``δ/n`` (and then over a uniformly random
adjacent edge), otherwise it stays put.  Steps over self-loops cost no
messages; steps over actual edges cost one token message each.  Nodes whose
actual degree exceeds the threshold ``γ`` hand tokens directly to their
neighbouring centers (with high probability a high-degree node has one).
Congestion: each node sends at most one walking token over any given actual
edge per round; tokens that cannot move are *passive* for the round.

:class:`RandomWalkDisseminator` encapsulates this per-round behaviour so it
can be unit-tested in isolation and reused by
:class:`~repro.algorithms.oblivious_multi_source.ObliviousMultiSourceAlgorithm`.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Set, Tuple

from repro.core.tokens import Token
from repro.utils.ids import NodeId
from repro.utils.validation import ConfigurationError


@dataclass(frozen=True)
class WalkStep:
    """A single planned token transfer over an actual edge."""

    token: Token
    sender: NodeId
    receiver: NodeId


class RandomWalkDisseminator:
    """Tracks walking tokens and plans their per-round moves.

    Args:
        nodes: the node set.
        centers: the sampled center nodes (tokens stop when they reach one).
        token_positions: initial position of every walking token.
        degree_threshold: the high/low-degree cut-off ``γ``; nodes with degree
            at least ``γ`` deliver tokens directly to neighbouring centers.
        rng: the random generator driving the walks.
    """

    def __init__(
        self,
        nodes: Iterable[NodeId],
        centers: Iterable[NodeId],
        token_positions: Mapping[Token, NodeId],
        degree_threshold: float,
        rng: random.Random,
    ) -> None:
        self._nodes = tuple(sorted(nodes))
        node_set = set(self._nodes)
        self._centers = frozenset(centers)
        if not self._centers:
            raise ConfigurationError("at least one center is required")
        if not self._centers <= node_set:
            raise ConfigurationError("centers must be nodes")
        if degree_threshold <= 0:
            raise ConfigurationError("degree_threshold must be positive")
        self._degree_threshold = degree_threshold
        self._rng = rng
        self._positions: Dict[Token, NodeId] = {}
        self._owner: Dict[Token, Optional[NodeId]] = {}
        self._holdings: Dict[NodeId, List[Token]] = {node: [] for node in self._nodes}
        self._actual_steps = 0
        for token, position in token_positions.items():
            if position not in node_set:
                raise ConfigurationError(f"token {token} placed at unknown node {position}")
            self._positions[token] = position
            if position in self._centers:
                self._owner[token] = position
            else:
                self._owner[token] = None
                self._holdings[position].append(token)

    # -- state accessors ------------------------------------------------------------

    @property
    def centers(self) -> FrozenSet[NodeId]:
        """The center nodes."""
        return self._centers

    @property
    def degree_threshold(self) -> float:
        """The high-degree threshold ``γ``."""
        return self._degree_threshold

    def position_of(self, token: Token) -> NodeId:
        """Current position of a walking (or delivered) token."""
        return self._positions[token]

    def owner_of(self, token: Token) -> Optional[NodeId]:
        """The center owning the token, or ``None`` while it is still walking."""
        return self._owner[token]

    def walking_tokens(self) -> List[Token]:
        """Tokens that have not reached a center yet."""
        return sorted(token for token, owner in self._owner.items() if owner is None)

    def tokens_at(self, node: NodeId) -> List[Token]:
        """The walking tokens currently held by ``node``."""
        return list(self._holdings[node])

    def all_delivered(self) -> bool:
        """True when every token has reached a center."""
        return all(owner is not None for owner in self._owner.values())

    def ownership(self) -> Dict[NodeId, List[Token]]:
        """Tokens per owning center (only delivered tokens)."""
        owned: Dict[NodeId, List[Token]] = {}
        for token, owner in self._owner.items():
            if owner is not None:
                owned.setdefault(owner, []).append(token)
        for owner in owned:
            owned[owner].sort()
        return owned

    @property
    def actual_steps(self) -> int:
        """Number of token transfers over actual edges performed so far."""
        return self._actual_steps

    # -- per-round planning ------------------------------------------------------------

    def plan_round(self, neighbors: Mapping[NodeId, FrozenSet[NodeId]]) -> List[WalkStep]:
        """Plan the token moves of one round given the round's adjacency.

        High-degree nodes hand one token to each neighbouring center; tokens at
        low-degree nodes take a virtual-multigraph step (move over a random
        actual edge with probability ``δ/n``) subject to the one-token-per-edge
        congestion constraint.  The planned steps must then be applied via
        :meth:`apply_step` once the corresponding messages are delivered.
        """
        n = len(self._nodes)
        steps: List[WalkStep] = []
        for node in self._nodes:
            tokens = self._holdings[node]
            if not tokens:
                continue
            current_neighbors = sorted(neighbors.get(node, frozenset()))
            degree = len(current_neighbors)
            if degree == 0:
                continue
            if degree >= self._degree_threshold:
                neighbor_centers = [w for w in current_neighbors if w in self._centers]
                for center, token in zip(neighbor_centers, list(tokens)):
                    steps.append(WalkStep(token=token, sender=node, receiver=center))
            else:
                used_edges: Set[NodeId] = set()
                for token in list(tokens):
                    if self._rng.random() >= degree / n:
                        continue  # virtual self-loop: the token stays put
                    target = self._rng.choice(current_neighbors)
                    if target in used_edges:
                        continue  # congestion: one token per actual edge per round
                    used_edges.add(target)
                    steps.append(WalkStep(token=token, sender=node, receiver=target))
        return steps

    def apply_step(self, step: WalkStep) -> None:
        """Commit a planned step: move the token (and stop it at a center)."""
        token = step.token
        if self._owner[token] is not None:
            raise ConfigurationError(f"token {token} has already been delivered")
        if self._positions[token] != step.sender:
            raise ConfigurationError(
                f"token {token} is at {self._positions[token]}, not at sender {step.sender}"
            )
        self._holdings[step.sender].remove(token)
        self._positions[token] = step.receiver
        self._actual_steps += 1
        if step.receiver in self._centers:
            self._owner[token] = step.receiver
        else:
            self._holdings[step.receiver].append(token)

    def force_delivery_in_place(self) -> Dict[NodeId, List[Token]]:
        """Promote the current holder of every still-walking token to a center.

        Simulation safeguard used when a round budget expires before all
        tokens reach a center; it guarantees phase 2 starts from a valid
        source assignment (documented in DESIGN.md).  Returns the ownership
        map after promotion.
        """
        for token, owner in list(self._owner.items()):
            if owner is None:
                position = self._positions[token]
                self._centers = frozenset(self._centers | {position})
                self._owner[token] = position
                if token in self._holdings[position]:
                    self._holdings[position].remove(token)
        return self.ownership()


def default_degree_threshold(num_nodes: int, num_tokens: int) -> float:
    """The high-degree threshold ``γ = √n · (k log n)^{-1/4}`` of Algorithm 2."""
    if num_nodes < 1 or num_tokens < 1:
        raise ConfigurationError("num_nodes and num_tokens must be positive")
    log_n = max(math.log2(max(num_nodes, 2)), 1.0)
    return max(1.0, math.sqrt(num_nodes) * (num_tokens * log_n) ** -0.25)


def default_num_centers(num_nodes: int, num_tokens: int) -> float:
    """The center count ``f = √n · k^{1/4} · log^{5/4} n`` of Algorithm 2."""
    if num_nodes < 1 or num_tokens < 1:
        raise ConfigurationError("num_nodes and num_tokens must be positive")
    log_n = max(math.log2(max(num_nodes, 2)), 1.0)
    return math.sqrt(num_nodes) * num_tokens**0.25 * log_n**1.25


def phase_one_round_budget(num_nodes: int, num_tokens: int) -> int:
    """The phase-1 round budget ``ℓ = k^{1/4} · n^{5/2} · log^{9/4} n`` of Algorithm 2."""
    if num_nodes < 1 or num_tokens < 1:
        raise ConfigurationError("num_nodes and num_tokens must be positive")
    log_n = max(math.log2(max(num_nodes, 2)), 1.0)
    return int(math.ceil(num_tokens**0.25 * num_nodes**2.5 * log_n**2.25))


def source_count_threshold(num_nodes: int) -> float:
    """The phase selector threshold ``n^{2/3} · log^{5/3} n`` of Algorithm 2."""
    if num_nodes < 1:
        raise ConfigurationError("num_nodes must be positive")
    log_n = max(math.log2(max(num_nodes, 2)), 1.0)
    return num_nodes ** (2.0 / 3.0) * log_n ** (5.0 / 3.0)
