"""The Single-Source-Unicast algorithm (Algorithm 1, Section 3.1).

All k tokens initially reside at a single source node.  Only *complete*
nodes (Definition 3.1: nodes that already hold all k tokens) ever send
tokens.  The protocol per round r, run by every node v:

* **complete node** — for every neighbour u: if u has never been told about
  v's completeness, send a completeness announcement; otherwise, if u sent a
  token request in round ``r - 1``, send back the requested token.
* **incomplete node** — let ``{b_1, …, b_γ}`` be v's missing tokens (minus
  the tokens guaranteed to arrive this round from requests sent in the
  previous round over edges that still exist).  Assign exactly one distinct
  token request per adjacent edge to a *known-complete* neighbour, giving
  priority first to **new** edges (inserted in round r or r-1), then **idle**
  edges, then **contributive** edges (Section 3.1.1), and send the requests.

Message complexity (Theorem 3.1): at most ``O(nk)`` token messages, ``O(n²)``
completeness announcements and ``O(nk) + TC(E)`` token requests, i.e.
1-adversary-competitive message complexity ``O(n² + nk)``.  On 3-edge-stable
dynamic graphs the algorithm terminates within ``O(nk)`` rounds
(Theorem 3.4).
"""

from __future__ import annotations

from typing import Callable, Dict, FrozenSet, List, Mapping, Optional, Set, Tuple

from repro.algorithms.base import UnicastAlgorithm
from repro.batch.programs import BatchRoundProgram
from repro.core.messages import (
    CompletenessMessage,
    MessageKind,
    Payload,
    ReceivedMessage,
    RequestMessage,
    TokenMessage,
)
from repro.core.observation import SentRecord
from repro.core.rounds import (
    FastRoundProgram,
    pending_request_bits,
    prioritized_edge_indices,
    record_edge_insertions,
)
from repro.core.state import edge_id
from repro.core.tokens import Token
from repro.utils.ids import NodeId
from repro.utils.validation import ConfigurationError

_KIND_TOKEN = MessageKind.TOKEN.value
_KIND_COMPLETENESS = MessageKind.COMPLETENESS.value
_KIND_REQUEST = MessageKind.REQUEST.value

#: Delivery tags used in the flat (sender, tag, value) message tuples.
_TAG_COMPLETENESS = 0
_TAG_TOKEN = 1
_TAG_REQUEST = 2


class SingleSourceUnicastAlgorithm(UnicastAlgorithm):
    """Algorithm 1: deterministic single-source k-token dissemination."""

    name = "single-source-unicast"

    def __init__(self) -> None:
        super().__init__()
        self._source: NodeId = 0
        # R_v: the nodes v has already informed about its completeness.
        self._informed: Dict[NodeId, Set[NodeId]] = {}
        # S_v: the nodes v knows to be complete.
        self._known_complete: Dict[NodeId, Set[NodeId]] = {}
        # Requests received in the previous round, to be answered this round.
        self._requests_to_answer: Dict[NodeId, Dict[NodeId, Token]] = {}
        # Requests sent in the previous round: node -> neighbour -> token.
        self._requests_sent_previous: Dict[NodeId, Dict[NodeId, Token]] = {}
        self._requests_sent_current: Dict[NodeId, Dict[NodeId, Token]] = {}

    # -- setup -------------------------------------------------------------------

    def on_setup(self) -> None:
        sources = self.problem.sources
        if len(sources) != 1:
            raise ConfigurationError(
                "SingleSourceUnicastAlgorithm requires a single-source problem; "
                f"got {len(sources)} sources (use MultiSourceUnicastAlgorithm instead)"
            )
        self._source = sources[0]
        if self.problem.initial_knowledge[self._source] != frozenset(self.problem.tokens):
            raise ConfigurationError("the source node must initially hold all k tokens")
        self._informed = {node: set() for node in self.nodes}
        self._known_complete = {node: set() for node in self.nodes}
        self._requests_to_answer = {node: {} for node in self.nodes}
        self._requests_sent_previous = {node: {} for node in self.nodes}
        self._requests_sent_current = {node: {} for node in self.nodes}

    # -- helpers ------------------------------------------------------------------

    def _pending_arrivals(
        self, node: NodeId, neighbors: FrozenSet[NodeId]
    ) -> Set[Token]:
        """Tokens requested in the previous round whose carrying edge survived.

        Those tokens are guaranteed to arrive this round (complete nodes
        respond immediately), so the node does not re-request them.
        """
        pending: Set[Token] = set()
        for neighbor, token in self._requests_sent_previous[node].items():
            if neighbor in neighbors:
                pending.add(token)
        return pending

    def _prioritized_complete_edges(
        self, node: NodeId, neighbors: FrozenSet[NodeId], round_index: int
    ) -> List[NodeId]:
        """Known-complete neighbours ordered by edge priority: new, idle, contributive."""
        complete_neighbors = sorted(
            neighbor for neighbor in neighbors if neighbor in self._known_complete[node]
        )
        new_edges = [
            neighbor
            for neighbor in complete_neighbors
            if self.is_new_edge(node, neighbor, round_index)
        ]
        idle_edges = [
            neighbor
            for neighbor in complete_neighbors
            if self.is_idle_edge(node, neighbor, round_index)
        ]
        contributive_edges = [
            neighbor
            for neighbor in complete_neighbors
            if self.is_contributive_edge(node, neighbor, round_index)
        ]
        return new_edges + idle_edges + contributive_edges

    # -- round behaviour ------------------------------------------------------------

    def select_messages(
        self, round_index: int, neighbors: Mapping[NodeId, FrozenSet[NodeId]]
    ) -> Dict[NodeId, Dict[NodeId, List[Payload]]]:
        sends: Dict[NodeId, Dict[NodeId, List[Payload]]] = {}
        self._requests_sent_current = {node: {} for node in self.nodes}

        def out(sender: NodeId, receiver: NodeId, payload: Payload) -> None:
            sends.setdefault(sender, {}).setdefault(receiver, []).append(payload)

        for node in self.nodes:
            current = neighbors.get(node, frozenset())
            if self.is_node_complete(node):
                pending_answers = self._requests_to_answer[node]
                for neighbor in sorted(current):
                    if neighbor not in self._informed[node]:
                        out(node, neighbor, CompletenessMessage(source=self._source))
                        self._informed[node].add(neighbor)
                    elif neighbor in pending_answers:
                        token = pending_answers[neighbor]
                        out(node, neighbor, TokenMessage(token))
                # Unanswered requests (edge removed) are dropped; the requester
                # will notice the missing token and re-request elsewhere.
                self._requests_to_answer[node] = {}
            else:
                pending = self._pending_arrivals(node, current)
                missing = [
                    token for token in self.missing_tokens(node) if token not in pending
                ]
                if not missing:
                    continue
                targets = self._prioritized_complete_edges(node, current, round_index)
                for position, neighbor in enumerate(targets):
                    if position >= len(missing):
                        break
                    token = missing[position]
                    out(node, neighbor, RequestMessage(source=token.source, index=token.index))
                    self._requests_sent_current[node][neighbor] = token
        return sends

    def receive_messages(
        self, round_index: int, inbox: Mapping[NodeId, List[ReceivedMessage]]
    ) -> None:
        for node, messages in inbox.items():
            for message in messages:
                payload = message.payload
                if isinstance(payload, CompletenessMessage):
                    self._known_complete[node].add(message.sender)
                elif isinstance(payload, TokenMessage):
                    learned = self.learn(node, payload.token)
                    if learned:
                        self.record_token_over_edge(node, message.sender, round_index)
                elif isinstance(payload, RequestMessage):
                    # Only complete nodes are asked; remember to answer next round.
                    self._requests_to_answer[node][message.sender] = payload.token
        self._requests_sent_previous = self._requests_sent_current
        self._requests_sent_current = {node: {} for node in self.nodes}

    # -- diagnostics ---------------------------------------------------------------

    @property
    def source(self) -> NodeId:
        """The single source node."""
        return self._source

    def complete_nodes(self) -> List[NodeId]:
        """The nodes that currently hold all k tokens."""
        return [node for node in self.nodes if self.is_node_complete(node)]

    def bridge_nodes(self, neighbors: Mapping[NodeId, FrozenSet[NodeId]]) -> List[NodeId]:
        """Incomplete nodes with at least one complete neighbour (Definition 3.2)."""
        bridges = []
        for node in self.nodes:
            if self.is_node_complete(node):
                continue
            if any(self.is_node_complete(neighbor) for neighbor in neighbors.get(node, ())):
                bridges.append(node)
        return bridges

    def observation_extra(self) -> Dict[str, object]:
        return {
            "complete_nodes": tuple(self.complete_nodes()),
            "source": self._source,
        }

    def fast_program_factory(self) -> Optional[Callable]:
        if type(self) is not SingleSourceUnicastAlgorithm:
            return None
        return lambda kernel: _SingleSourceFastProgram(kernel, self)

    def batch_program_factory(self) -> Optional[Callable]:
        if type(self) is not SingleSourceUnicastAlgorithm:
            return None
        return lambda kernel: _SingleSourceBatchProgram(kernel, self)


class _SingleSourceFastProgram(FastRoundProgram):
    """Single-Source-Unicast (Algorithm 1) on bitmask state.

    Mirrors :class:`SingleSourceUnicastAlgorithm` exactly: completeness
    announcements to newly seen neighbours, one-round request/answer
    exchanges, and the new > idle > contributive edge priority for assigning
    token requests, with the per-edge history kept as ``edge id -> round``
    dicts supplied by :class:`~repro.core.rounds.FastRoundProgram`.
    """

    track_edge_history = True

    def setup(self) -> None:
        problem = self.kernel.problem
        sources = problem.sources
        if len(sources) != 1:
            raise ConfigurationError(
                "SingleSourceUnicastAlgorithm requires a single-source problem; "
                f"got {len(sources)} sources (use MultiSourceUnicastAlgorithm instead)"
            )
        self.source = sources[0]
        if problem.initial_knowledge[self.source] != frozenset(problem.tokens):
            raise ConfigurationError("the source node must initially hold all k tokens")
        n = self.n
        self.informed: List[int] = [0] * n
        self.known_complete: List[int] = [0] * n
        self.answers: List[Dict[int, int]] = [{} for _ in range(n)]
        self.req_prev: List[Optional[Dict[int, int]]] = [None] * n

    def observation_extra(self) -> Dict[str, object]:
        know_count = self.state.know_count
        k = self.k
        nodes = self.nodes
        return {
            "complete_nodes": tuple(
                nodes[index] for index in range(self.n) if know_count[index] == k
            ),
            "source": self.source,
        }

    def deliver(self, round_index: int, commitment) -> None:
        n = self.n
        k = self.k
        adj = self.adj
        state = self.state
        know = state.know
        know_count = state.know_count
        full_mask = self.full_mask
        informed = self.informed
        known_complete = self.known_complete
        answers = self.answers
        req_prev = self.req_prev
        req_cur: List[Optional[Dict[int, int]]] = [None] * n
        edge_token_round = self.edge_token_round
        per_node = self.per_node
        deliveries: List[Optional[List[Tuple[int, int, int]]]] = [None] * n
        observe = self.kernel.observe_messages
        records: Optional[List[SentRecord]] = [] if observe else None
        nodes = self.nodes
        tokens = self.tokens

        token_count = 0
        completeness_count = 0
        request_count = 0

        for v in range(n):
            neighbors = adj[v]
            sent_pairs: Optional[List[Tuple[int, int, int]]] = [] if observe else None
            if know_count[v] == k:
                # Complete node: announce completeness once per neighbour,
                # then answer last round's requests.
                pending_answers = answers[v]
                informed_mask = informed[v]
                to_visit = neighbors
                while to_visit:
                    low = to_visit & -to_visit
                    u = low.bit_length() - 1
                    to_visit ^= low
                    if not (informed_mask >> u) & 1:
                        informed_mask |= 1 << u
                        completeness_count += 1
                        per_node[v] += 1
                        box = deliveries[u]
                        if box is None:
                            box = deliveries[u] = []
                        box.append((v, _TAG_COMPLETENESS, 0))
                        if sent_pairs is not None:
                            sent_pairs.append((u, _TAG_COMPLETENESS, 0))
                    else:
                        answer = pending_answers.get(u)
                        if answer is not None:
                            token_count += 1
                            per_node[v] += 1
                            box = deliveries[u]
                            if box is None:
                                box = deliveries[u] = []
                            box.append((v, _TAG_TOKEN, answer))
                            if sent_pairs is not None:
                                sent_pairs.append((u, _TAG_TOKEN, answer))
                informed[v] = informed_mask
                if pending_answers:
                    answers[v] = {}
            else:
                # Incomplete node: skip tokens already guaranteed to arrive
                # (requested last round over a surviving edge), then assign
                # one distinct missing token per known-complete neighbour in
                # new > idle > contributive edge order.
                pending_mask = self.pending_request_mask(req_prev[v], neighbors)
                complete_neighbors = neighbors & known_complete[v]
                if not complete_neighbors:
                    continue
                sent: Optional[Dict[int, int]] = None
                missing = ~know[v] & full_mask
                for u in self.prioritized_edges(v, complete_neighbors, round_index):
                    token_bit_index = -1
                    while missing:
                        low = missing & -missing
                        candidate = low.bit_length() - 1
                        missing ^= low
                        if not (pending_mask >> candidate) & 1:
                            token_bit_index = candidate
                            break
                    if token_bit_index < 0:
                        break
                    request_count += 1
                    per_node[v] += 1
                    box = deliveries[u]
                    if box is None:
                        box = deliveries[u] = []
                    box.append((v, _TAG_REQUEST, token_bit_index))
                    if sent_pairs is not None:
                        sent_pairs.append((u, _TAG_REQUEST, token_bit_index))
                    if sent is None:
                        sent = req_cur[v] = {}
                    sent[u] = token_bit_index
            if records is not None and sent_pairs:
                sender = nodes[v]
                # The exchange program records sends receiver-ascending.
                for u, tag, value in sorted(sent_pairs):
                    if tag == _TAG_COMPLETENESS:
                        payload: Payload = CompletenessMessage(source=self.source)
                    elif tag == _TAG_TOKEN:
                        payload = TokenMessage(tokens[value])
                    else:
                        token = tokens[value]
                        payload = RequestMessage(source=token.source, index=token.index)
                    records.append(
                        SentRecord(sender=sender, receiver=nodes[u], payload=payload)
                    )

        learn_index = state.learn_index
        for u in range(n):
            box = deliveries[u]
            if not box:
                continue
            for sender, tag, value in box:
                if tag == _TAG_COMPLETENESS:
                    known_complete[u] |= 1 << sender
                elif tag == _TAG_TOKEN:
                    if learn_index(u, value):
                        eid = edge_id(u, sender, n)
                        edge_token_round[eid] = round_index
                else:  # _TAG_REQUEST
                    answers[u][sender] = value

        self.req_prev = req_cur
        accounting = self.accounting
        accounting.count_bulk(_KIND_TOKEN, token_count)
        accounting.count_bulk(_KIND_COMPLETENESS, completeness_count)
        accounting.count_bulk(_KIND_REQUEST, request_count)
        if records is not None:
            self.store_sent_records(records)


class _SingleSourceBatchProgram(BatchRoundProgram):
    """Single-Source-Unicast across lanes: per-lane protocol state, lockstep rounds.

    Requests depend on each lane's own edge history (the new > idle >
    contributive priority of Section 3.1.1), so the round body replays
    :class:`_SingleSourceFastProgram` lane by lane on the lane's adjacency
    bitmasks, with one ``edge id -> round`` history pair per lane fed from
    that lane's :class:`~repro.core.rounds.AdversaryStage` insertions.
    Knowledge is mirrored in per-lane integer bitmasks so the completeness
    test and token-assignment loop never touch a numpy scalar; the batch
    state is only told about successful learnings.  The batch kernel admits
    only oblivious adversaries, so no ``SentRecord`` stream is needed.
    """

    def setup(self) -> None:
        problem = self.kernel.problem
        sources = problem.sources
        if len(sources) != 1:
            raise ConfigurationError(
                "SingleSourceUnicastAlgorithm requires a single-source problem; "
                f"got {len(sources)} sources (use MultiSourceUnicastAlgorithm instead)"
            )
        self.source = sources[0]
        if problem.initial_knowledge[self.source] != frozenset(problem.tokens):
            raise ConfigurationError("the source node must initially hold all k tokens")
        token_index = self.kernel.token_index
        initial_masks = [
            sum(1 << token_index[token] for token in problem.initial_knowledge[node])
            for node in self.nodes
        ]
        lanes = self.kernel.lanes
        n = self.n
        self.full_mask = (1 << self.k) - 1
        self.know_masks: List[List[int]] = [list(initial_masks) for _ in range(lanes)]
        self.informed: List[List[int]] = [[0] * n for _ in range(lanes)]
        self.known_complete: List[List[int]] = [[0] * n for _ in range(lanes)]
        self.answers: List[List[Dict[int, int]]] = [
            [{} for _ in range(n)] for _ in range(lanes)
        ]
        self.req_prev: List[List[Optional[Dict[int, int]]]] = [
            [None] * n for _ in range(lanes)
        ]
        # Per-lane edge histories (id -> round), the per-lane analogue of
        # FastRoundProgram.track_edge_history.
        self.edge_inserted: List[Dict[int, int]] = [{} for _ in range(lanes)]
        self.edge_token_round: List[Dict[int, int]] = [{} for _ in range(lanes)]

    def deliver(self, round_index: int, commitment) -> None:
        n = self.n
        full_mask = self.full_mask
        state = self.state
        stages = self.kernel.stages
        accounting = self.accounting
        per_node = accounting.per_node
        # Once every lane's topology is steady the kernel stops stepping the
        # stages and their inserted_ids go stale; a serial run would see
        # empty insertions from then on, so skipping the fold is identical.
        stages_advanced = self.kernel.stages_advanced(round_index)
        learn_lane_index = state.learn_lane_index
        for lane in self.np.nonzero(self.kernel.active_lanes)[0]:
            lane = int(lane)
            stage = stages[lane]
            adj = stage.adj
            edge_inserted = self.edge_inserted[lane]
            edge_token_round = self.edge_token_round[lane]
            if stages_advanced:
                record_edge_insertions(
                    edge_inserted, edge_token_round, stage.inserted_ids, round_index
                )
            know_masks = self.know_masks[lane]
            informed = self.informed[lane]
            known_complete = self.known_complete[lane]
            answers = self.answers[lane]
            req_prev = self.req_prev[lane]
            req_cur: List[Optional[Dict[int, int]]] = [None] * n
            per_node_lane = per_node[lane]
            deliveries: List[Optional[List[Tuple[int, int, int]]]] = [None] * n

            token_count = 0
            completeness_count = 0
            request_count = 0

            for v in range(n):
                neighbors = adj[v]
                if know_masks[v] == full_mask:
                    # Complete node: announce completeness once per neighbour,
                    # then answer last round's requests.
                    pending_answers = answers[v]
                    informed_mask = informed[v]
                    to_visit = neighbors
                    while to_visit:
                        low = to_visit & -to_visit
                        u = low.bit_length() - 1
                        to_visit ^= low
                        if not (informed_mask >> u) & 1:
                            informed_mask |= 1 << u
                            completeness_count += 1
                            per_node_lane[v] += 1
                            box = deliveries[u]
                            if box is None:
                                box = deliveries[u] = []
                            box.append((v, _TAG_COMPLETENESS, 0))
                        else:
                            answer = pending_answers.get(u)
                            if answer is not None:
                                token_count += 1
                                per_node_lane[v] += 1
                                box = deliveries[u]
                                if box is None:
                                    box = deliveries[u] = []
                                box.append((v, _TAG_TOKEN, answer))
                    informed[v] = informed_mask
                    if pending_answers:
                        answers[v] = {}
                else:
                    # Incomplete node: skip tokens already guaranteed to
                    # arrive, then assign one distinct missing token per
                    # known-complete neighbour in priority order.
                    pending_mask = pending_request_bits(req_prev[v], neighbors)
                    complete_neighbors = neighbors & known_complete[v]
                    if not complete_neighbors:
                        continue
                    sent: Optional[Dict[int, int]] = None
                    missing = ~know_masks[v] & full_mask
                    for u in prioritized_edge_indices(
                        n,
                        v,
                        complete_neighbors,
                        round_index,
                        edge_inserted,
                        edge_token_round,
                    ):
                        token_bit_index = -1
                        while missing:
                            low = missing & -missing
                            candidate = low.bit_length() - 1
                            missing ^= low
                            if not (pending_mask >> candidate) & 1:
                                token_bit_index = candidate
                                break
                        if token_bit_index < 0:
                            break
                        request_count += 1
                        per_node_lane[v] += 1
                        box = deliveries[u]
                        if box is None:
                            box = deliveries[u] = []
                        box.append((v, _TAG_REQUEST, token_bit_index))
                        if sent is None:
                            sent = req_cur[v] = {}
                        sent[u] = token_bit_index

            for u in range(n):
                box = deliveries[u]
                if not box:
                    continue
                for sender, tag, value in box:
                    if tag == _TAG_COMPLETENESS:
                        known_complete[u] |= 1 << sender
                    elif tag == _TAG_TOKEN:
                        if not (know_masks[u] >> value) & 1:
                            know_masks[u] |= 1 << value
                            learn_lane_index(lane, u, value)
                            edge_token_round[edge_id(u, sender, n)] = round_index
                    else:  # _TAG_REQUEST
                        answers[u][sender] = value

            self.req_prev[lane] = req_cur
            accounting.count_lane(lane, _KIND_TOKEN, token_count)
            accounting.count_lane(lane, _KIND_COMPLETENESS, completeness_count)
            accounting.count_lane(lane, _KIND_REQUEST, request_count)
