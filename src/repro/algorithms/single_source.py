"""The Single-Source-Unicast algorithm (Algorithm 1, Section 3.1).

All k tokens initially reside at a single source node.  Only *complete*
nodes (Definition 3.1: nodes that already hold all k tokens) ever send
tokens.  The protocol per round r, run by every node v:

* **complete node** — for every neighbour u: if u has never been told about
  v's completeness, send a completeness announcement; otherwise, if u sent a
  token request in round ``r - 1``, send back the requested token.
* **incomplete node** — let ``{b_1, …, b_γ}`` be v's missing tokens (minus
  the tokens guaranteed to arrive this round from requests sent in the
  previous round over edges that still exist).  Assign exactly one distinct
  token request per adjacent edge to a *known-complete* neighbour, giving
  priority first to **new** edges (inserted in round r or r-1), then **idle**
  edges, then **contributive** edges (Section 3.1.1), and send the requests.

Message complexity (Theorem 3.1): at most ``O(nk)`` token messages, ``O(n²)``
completeness announcements and ``O(nk) + TC(E)`` token requests, i.e.
1-adversary-competitive message complexity ``O(n² + nk)``.  On 3-edge-stable
dynamic graphs the algorithm terminates within ``O(nk)`` rounds
(Theorem 3.4).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Mapping, Optional, Set, Tuple

from repro.algorithms.base import UnicastAlgorithm
from repro.core.messages import (
    CompletenessMessage,
    Payload,
    ReceivedMessage,
    RequestMessage,
    TokenMessage,
)
from repro.core.tokens import Token
from repro.utils.ids import NodeId
from repro.utils.validation import ConfigurationError


class SingleSourceUnicastAlgorithm(UnicastAlgorithm):
    """Algorithm 1: deterministic single-source k-token dissemination."""

    name = "single-source-unicast"

    def __init__(self) -> None:
        super().__init__()
        self._source: NodeId = 0
        # R_v: the nodes v has already informed about its completeness.
        self._informed: Dict[NodeId, Set[NodeId]] = {}
        # S_v: the nodes v knows to be complete.
        self._known_complete: Dict[NodeId, Set[NodeId]] = {}
        # Requests received in the previous round, to be answered this round.
        self._requests_to_answer: Dict[NodeId, Dict[NodeId, Token]] = {}
        # Requests sent in the previous round: node -> neighbour -> token.
        self._requests_sent_previous: Dict[NodeId, Dict[NodeId, Token]] = {}
        self._requests_sent_current: Dict[NodeId, Dict[NodeId, Token]] = {}

    # -- setup -------------------------------------------------------------------

    def on_setup(self) -> None:
        sources = self.problem.sources
        if len(sources) != 1:
            raise ConfigurationError(
                "SingleSourceUnicastAlgorithm requires a single-source problem; "
                f"got {len(sources)} sources (use MultiSourceUnicastAlgorithm instead)"
            )
        self._source = sources[0]
        if self.problem.initial_knowledge[self._source] != frozenset(self.problem.tokens):
            raise ConfigurationError("the source node must initially hold all k tokens")
        self._informed = {node: set() for node in self.nodes}
        self._known_complete = {node: set() for node in self.nodes}
        self._requests_to_answer = {node: {} for node in self.nodes}
        self._requests_sent_previous = {node: {} for node in self.nodes}
        self._requests_sent_current = {node: {} for node in self.nodes}

    # -- helpers ------------------------------------------------------------------

    def _pending_arrivals(
        self, node: NodeId, neighbors: FrozenSet[NodeId]
    ) -> Set[Token]:
        """Tokens requested in the previous round whose carrying edge survived.

        Those tokens are guaranteed to arrive this round (complete nodes
        respond immediately), so the node does not re-request them.
        """
        pending: Set[Token] = set()
        for neighbor, token in self._requests_sent_previous[node].items():
            if neighbor in neighbors:
                pending.add(token)
        return pending

    def _prioritized_complete_edges(
        self, node: NodeId, neighbors: FrozenSet[NodeId], round_index: int
    ) -> List[NodeId]:
        """Known-complete neighbours ordered by edge priority: new, idle, contributive."""
        complete_neighbors = sorted(
            neighbor for neighbor in neighbors if neighbor in self._known_complete[node]
        )
        new_edges = [
            neighbor
            for neighbor in complete_neighbors
            if self.is_new_edge(node, neighbor, round_index)
        ]
        idle_edges = [
            neighbor
            for neighbor in complete_neighbors
            if self.is_idle_edge(node, neighbor, round_index)
        ]
        contributive_edges = [
            neighbor
            for neighbor in complete_neighbors
            if self.is_contributive_edge(node, neighbor, round_index)
        ]
        return new_edges + idle_edges + contributive_edges

    # -- round behaviour ------------------------------------------------------------

    def select_messages(
        self, round_index: int, neighbors: Mapping[NodeId, FrozenSet[NodeId]]
    ) -> Dict[NodeId, Dict[NodeId, List[Payload]]]:
        sends: Dict[NodeId, Dict[NodeId, List[Payload]]] = {}
        self._requests_sent_current = {node: {} for node in self.nodes}

        def out(sender: NodeId, receiver: NodeId, payload: Payload) -> None:
            sends.setdefault(sender, {}).setdefault(receiver, []).append(payload)

        for node in self.nodes:
            current = neighbors.get(node, frozenset())
            if self.is_node_complete(node):
                pending_answers = self._requests_to_answer[node]
                for neighbor in sorted(current):
                    if neighbor not in self._informed[node]:
                        out(node, neighbor, CompletenessMessage(source=self._source))
                        self._informed[node].add(neighbor)
                    elif neighbor in pending_answers:
                        token = pending_answers[neighbor]
                        out(node, neighbor, TokenMessage(token))
                # Unanswered requests (edge removed) are dropped; the requester
                # will notice the missing token and re-request elsewhere.
                self._requests_to_answer[node] = {}
            else:
                pending = self._pending_arrivals(node, current)
                missing = [
                    token for token in self.missing_tokens(node) if token not in pending
                ]
                if not missing:
                    continue
                targets = self._prioritized_complete_edges(node, current, round_index)
                for position, neighbor in enumerate(targets):
                    if position >= len(missing):
                        break
                    token = missing[position]
                    out(node, neighbor, RequestMessage(source=token.source, index=token.index))
                    self._requests_sent_current[node][neighbor] = token
        return sends

    def receive_messages(
        self, round_index: int, inbox: Mapping[NodeId, List[ReceivedMessage]]
    ) -> None:
        for node, messages in inbox.items():
            for message in messages:
                payload = message.payload
                if isinstance(payload, CompletenessMessage):
                    self._known_complete[node].add(message.sender)
                elif isinstance(payload, TokenMessage):
                    learned = self.learn(node, payload.token)
                    if learned:
                        self.record_token_over_edge(node, message.sender, round_index)
                elif isinstance(payload, RequestMessage):
                    # Only complete nodes are asked; remember to answer next round.
                    self._requests_to_answer[node][message.sender] = payload.token
        self._requests_sent_previous = self._requests_sent_current
        self._requests_sent_current = {node: {} for node in self.nodes}

    # -- diagnostics ---------------------------------------------------------------

    @property
    def source(self) -> NodeId:
        """The single source node."""
        return self._source

    def complete_nodes(self) -> List[NodeId]:
        """The nodes that currently hold all k tokens."""
        return [node for node in self.nodes if self.is_node_complete(node)]

    def bridge_nodes(self, neighbors: Mapping[NodeId, FrozenSet[NodeId]]) -> List[NodeId]:
        """Incomplete nodes with at least one complete neighbour (Definition 3.2)."""
        bridges = []
        for node in self.nodes:
            if self.is_node_complete(node):
                continue
            if any(self.is_node_complete(neighbor) for neighbor in neighbors.get(node, ())):
                bridges.append(node)
        return bridges

    def observation_extra(self) -> Dict[str, object]:
        return {
            "complete_nodes": tuple(self.complete_nodes()),
            "source": self._source,
        }
