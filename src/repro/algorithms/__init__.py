"""Token-forwarding algorithms.

All algorithms follow the token-forwarding restriction of the paper: tokens
are only stored, copied and forwarded, never combined or coded.

Algorithms studied in the paper:

* :class:`~repro.algorithms.flooding.FloodingAlgorithm` — the naive local
  broadcast algorithm (each node broadcasts each token for ``n`` rounds);
  matches the Θ(n²) amortized upper bound of Section 2.
* :class:`~repro.algorithms.single_source.SingleSourceUnicastAlgorithm` —
  Algorithm 1 of Section 3.1, 1-adversary-competitive O(n² + nk) messages.
* :class:`~repro.algorithms.multi_source.MultiSourceUnicastAlgorithm` —
  Section 3.2.1, 1-adversary-competitive O(n²s + nk) messages.
* :class:`~repro.algorithms.oblivious_multi_source.ObliviousMultiSourceAlgorithm`
  — Algorithm 2 of Section 3.2.2, random-walk based, subquadratic amortized
  message complexity under an oblivious adversary.

Baselines:

* :class:`~repro.algorithms.naive_unicast.NaiveUnicastAlgorithm` — each node
  sends each token at most once to each other node (O(n²) amortized).
* :class:`~repro.algorithms.spanning_tree.SpanningTreeAlgorithm` — the static
  baseline from Section 1 (spanning tree construction + pipelining).
"""

from repro.algorithms.base import (
    TokenForwardingAlgorithm,
    LocalBroadcastAlgorithm,
    UnicastAlgorithm,
)
from repro.algorithms.flooding import FloodingAlgorithm, OneShotFloodingAlgorithm
from repro.algorithms.naive_unicast import NaiveUnicastAlgorithm
from repro.algorithms.spanning_tree import SpanningTreeAlgorithm
from repro.algorithms.single_source import SingleSourceUnicastAlgorithm
from repro.algorithms.multi_source import MultiSourceUnicastAlgorithm
from repro.algorithms.oblivious_multi_source import ObliviousMultiSourceAlgorithm
from repro.algorithms.random_walks import RandomWalkDisseminator

__all__ = [
    "TokenForwardingAlgorithm",
    "LocalBroadcastAlgorithm",
    "UnicastAlgorithm",
    "FloodingAlgorithm",
    "OneShotFloodingAlgorithm",
    "NaiveUnicastAlgorithm",
    "SpanningTreeAlgorithm",
    "SingleSourceUnicastAlgorithm",
    "MultiSourceUnicastAlgorithm",
    "ObliviousMultiSourceAlgorithm",
    "RandomWalkDisseminator",
]
