"""The Multi-Source-Unicast algorithm (Section 3.2.1).

Tokens are initially distributed over ``s`` source nodes ``a_1 < … < a_s``.
Completeness is now per source: a node is *complete with respect to source x*
when it holds every token originating at ``x``.  Every node runs three tasks
in parallel each round (for each adjacent edge ``{v, w}``):

1. if there is a source ``x ∈ I_v`` (v complete w.r.t. x) with
   ``w ∉ R_v(x)``, pick the minimum such ``x`` and announce v's completeness
   w.r.t. ``x`` to ``w``;
2. if ``w`` requested a token in the previous round, send it back;
3. pick the minimum source ``x ∉ I_v`` with ``S_v(x) ≠ ∅`` (v knows some
   neighbourly complete node for it) and behave exactly like the
   Single-Source-Unicast algorithm for that one source: assign one distinct
   request per known-complete edge, prioritising new, then idle, then
   contributive edges.

Message complexity (Theorem 3.5): ``O(nk)`` token messages, ``O(n²s)``
completeness announcements and ``O(nk) + TC(E)`` requests, i.e.
1-adversary-competitive message complexity ``O(n²s + nk)``.  On 3-edge-stable
graphs it terminates in ``O(nk)`` rounds (Theorem 3.6).

Implementation note on the *source catalog*: the algorithm object holds a
mapping from each source to the ordered list of tokens it is responsible for.
By default this is derived from the problem's initial distribution (source
``x`` is responsible for the tokens ``⟨x, 1⟩ … ⟨x, k_x⟩`` it starts with);
the Oblivious-Multi-Source algorithm re-targets it to the *centers* chosen in
its first phase.  In the paper nodes derive the same information from the
token identifiers ``⟨ID_x, i⟩`` together with the (assumed known) per-source
token counts; holding the catalog in the shared algorithm object models that
assumption without affecting any message count.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Mapping, Optional, Sequence, Set, Tuple

from repro.algorithms.base import UnicastAlgorithm
from repro.core.messages import (
    CompletenessMessage,
    Payload,
    ReceivedMessage,
    RequestMessage,
    TokenMessage,
)
from repro.core.tokens import Token, tokens_by_source
from repro.utils.ids import NodeId
from repro.utils.validation import ConfigurationError


class MultiSourceUnicastAlgorithm(UnicastAlgorithm):
    """Deterministic multi-source k-token dissemination (Section 3.2.1)."""

    name = "multi-source-unicast"

    def __init__(self, source_catalog: Optional[Mapping[NodeId, Sequence[Token]]] = None):
        super().__init__()
        self._configured_catalog = (
            {source: tuple(tokens) for source, tokens in source_catalog.items()}
            if source_catalog is not None
            else None
        )
        self._catalog: Dict[NodeId, Tuple[Token, ...]] = {}
        self._catalog_sources: List[NodeId] = []
        # I_v, R_v(x), S_v(x) of the paper.
        self._complete_wrt: Dict[NodeId, Set[NodeId]] = {}
        self._informed: Dict[NodeId, Dict[NodeId, Set[NodeId]]] = {}
        self._known_complete: Dict[NodeId, Dict[NodeId, Set[NodeId]]] = {}
        # Request bookkeeping, as in the single-source algorithm.
        self._requests_to_answer: Dict[NodeId, Dict[NodeId, Token]] = {}
        self._requests_sent_previous: Dict[NodeId, Dict[NodeId, Token]] = {}
        self._requests_sent_current: Dict[NodeId, Dict[NodeId, Token]] = {}

    # -- catalog management --------------------------------------------------------

    def default_catalog(self) -> Dict[NodeId, Tuple[Token, ...]]:
        """The catalog derived from the problem's initial token placement."""
        catalog: Dict[NodeId, Tuple[Token, ...]] = {}
        for source, tokens in tokens_by_source(self.problem.tokens).items():
            catalog[source] = tuple(sorted(tokens))
        return catalog

    def configure_catalog(self, catalog: Mapping[NodeId, Sequence[Token]]) -> None:
        """(Re)initialize the per-source completeness machinery for a new catalog.

        Used by the Oblivious-Multi-Source algorithm when it starts its second
        phase with the centers as sources.  Token knowledge is preserved; all
        completeness/request bookkeeping is reset.
        """
        covered: Set[Token] = set()
        validated: Dict[NodeId, Tuple[Token, ...]] = {}
        for source in sorted(catalog):
            tokens = tuple(catalog[source])
            if not tokens:
                raise ConfigurationError(f"catalog source {source} has no tokens")
            if source not in self.nodes:
                raise ConfigurationError(f"catalog source {source} is not a node")
            overlap = covered & set(tokens)
            if overlap:
                raise ConfigurationError(f"tokens assigned to multiple sources: {overlap}")
            covered |= set(tokens)
            validated[source] = tokens
        if covered != set(self.problem.tokens):
            raise ConfigurationError("the catalog must cover the token universe exactly")
        self._catalog = validated
        self._catalog_sources = sorted(validated)
        self._complete_wrt = {node: set() for node in self.nodes}
        self._informed = {
            node: {source: set() for source in self._catalog_sources} for node in self.nodes
        }
        self._known_complete = {
            node: {source: set() for source in self._catalog_sources} for node in self.nodes
        }
        self._requests_to_answer = {node: {} for node in self.nodes}
        self._requests_sent_previous = {node: {} for node in self.nodes}
        self._requests_sent_current = {node: {} for node in self.nodes}
        for node in self.nodes:
            for source in self._catalog_sources:
                if self._holds_all_of(node, source):
                    self._complete_wrt[node].add(source)

    def on_setup(self) -> None:
        catalog = (
            self._configured_catalog
            if self._configured_catalog is not None
            else self.default_catalog()
        )
        self.configure_catalog(catalog)

    # -- per-source completeness -----------------------------------------------------

    def catalog_of(self, source: NodeId) -> Tuple[Token, ...]:
        """The tokens the given source is responsible for."""
        return self._catalog[source]

    def catalog_sources(self) -> List[NodeId]:
        """The sources of the active catalog, in increasing ID order."""
        return list(self._catalog_sources)

    def _holds_all_of(self, node: NodeId, source: NodeId) -> bool:
        known = self.known_tokens(node)
        return all(token in known for token in self._catalog[source])

    def is_complete_wrt(self, node: NodeId, source: NodeId) -> bool:
        """True iff ``node`` is complete with respect to ``source``."""
        return source in self._complete_wrt[node]

    def on_learn(self, node: NodeId, token: Token) -> None:
        if not self._catalog:
            return
        for source in self._catalog_sources:
            if source in self._complete_wrt[node]:
                continue
            if token in self._catalog[source] and self._holds_all_of(node, source):
                self._complete_wrt[node].add(source)

    # -- helpers -------------------------------------------------------------------

    def _pending_arrivals(self, node: NodeId, neighbors: FrozenSet[NodeId]) -> Set[Token]:
        pending: Set[Token] = set()
        for neighbor, token in self._requests_sent_previous[node].items():
            if neighbor in neighbors:
                pending.add(token)
        return pending

    def _active_source(self, node: NodeId) -> Optional[NodeId]:
        """The minimum source v is incomplete w.r.t. and knows a complete node for."""
        for source in self._catalog_sources:
            if source in self._complete_wrt[node]:
                continue
            if self._known_complete[node][source]:
                return source
        return None

    def _prioritized_edges(
        self,
        node: NodeId,
        source: NodeId,
        neighbors: FrozenSet[NodeId],
        round_index: int,
    ) -> List[NodeId]:
        complete_neighbors = sorted(
            neighbor
            for neighbor in neighbors
            if neighbor in self._known_complete[node][source]
        )
        new_edges = [
            n for n in complete_neighbors if self.is_new_edge(node, n, round_index)
        ]
        idle_edges = [
            n for n in complete_neighbors if self.is_idle_edge(node, n, round_index)
        ]
        contributive_edges = [
            n for n in complete_neighbors if self.is_contributive_edge(node, n, round_index)
        ]
        return new_edges + idle_edges + contributive_edges

    # -- round behaviour --------------------------------------------------------------

    def select_messages(
        self, round_index: int, neighbors: Mapping[NodeId, FrozenSet[NodeId]]
    ) -> Dict[NodeId, Dict[NodeId, List[Payload]]]:
        sends: Dict[NodeId, Dict[NodeId, List[Payload]]] = {}
        self._requests_sent_current = {node: {} for node in self.nodes}

        def out(sender: NodeId, receiver: NodeId, payload: Payload) -> None:
            sends.setdefault(sender, {}).setdefault(receiver, []).append(payload)

        for node in self.nodes:
            current = neighbors.get(node, frozenset())

            # Task 1: completeness announcements (minimum unannounced source per edge).
            for neighbor in sorted(current):
                for source in self._catalog_sources:
                    if source not in self._complete_wrt[node]:
                        continue
                    if neighbor in self._informed[node][source]:
                        continue
                    out(node, neighbor, CompletenessMessage(source=source))
                    self._informed[node][source].add(neighbor)
                    break

            # Task 2: answer the requests received in the previous round.
            pending_answers = self._requests_to_answer[node]
            for neighbor in sorted(current):
                if neighbor in pending_answers:
                    out(node, neighbor, TokenMessage(pending_answers[neighbor]))
            self._requests_to_answer[node] = {}

            # Task 3: request tokens of the highest-priority incomplete source.
            source = self._active_source(node)
            if source is None:
                continue
            pending = self._pending_arrivals(node, current)
            missing = [
                token
                for token in self._catalog[source]
                if not self.knows(node, token) and token not in pending
            ]
            if not missing:
                continue
            targets = self._prioritized_edges(node, source, current, round_index)
            for position, neighbor in enumerate(targets):
                if position >= len(missing):
                    break
                token = missing[position]
                out(node, neighbor, RequestMessage(source=token.source, index=token.index))
                self._requests_sent_current[node][neighbor] = token
        return sends

    def receive_messages(
        self, round_index: int, inbox: Mapping[NodeId, List[ReceivedMessage]]
    ) -> None:
        for node, messages in inbox.items():
            for message in messages:
                payload = message.payload
                if isinstance(payload, CompletenessMessage):
                    if payload.source in self._known_complete[node]:
                        self._known_complete[node][payload.source].add(message.sender)
                elif isinstance(payload, TokenMessage):
                    learned = self.learn(node, payload.token)
                    if learned:
                        self.record_token_over_edge(node, message.sender, round_index)
                elif isinstance(payload, RequestMessage):
                    self._requests_to_answer[node][message.sender] = payload.token
        self._requests_sent_previous = self._requests_sent_current
        self._requests_sent_current = {node: {} for node in self.nodes}

    # -- diagnostics --------------------------------------------------------------------

    def complete_sources_of(self, node: NodeId) -> List[NodeId]:
        """``I_v`` — the sources the node is complete with respect to."""
        return sorted(self._complete_wrt[node])

    def observation_extra(self) -> Dict[str, object]:
        return {
            "catalog_sources": tuple(self._catalog_sources),
            "complete_wrt": {
                node: tuple(sorted(self._complete_wrt[node])) for node in self.nodes
            },
        }
