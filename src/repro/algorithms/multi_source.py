"""The Multi-Source-Unicast algorithm (Section 3.2.1).

Tokens are initially distributed over ``s`` source nodes ``a_1 < … < a_s``.
Completeness is now per source: a node is *complete with respect to source x*
when it holds every token originating at ``x``.  Every node runs three tasks
in parallel each round (for each adjacent edge ``{v, w}``):

1. if there is a source ``x ∈ I_v`` (v complete w.r.t. x) with
   ``w ∉ R_v(x)``, pick the minimum such ``x`` and announce v's completeness
   w.r.t. ``x`` to ``w``;
2. if ``w`` requested a token in the previous round, send it back;
3. pick the minimum source ``x ∉ I_v`` with ``S_v(x) ≠ ∅`` (v knows some
   neighbourly complete node for it) and behave exactly like the
   Single-Source-Unicast algorithm for that one source: assign one distinct
   request per known-complete edge, prioritising new, then idle, then
   contributive edges.

Message complexity (Theorem 3.5): ``O(nk)`` token messages, ``O(n²s)``
completeness announcements and ``O(nk) + TC(E)`` requests, i.e.
1-adversary-competitive message complexity ``O(n²s + nk)``.  On 3-edge-stable
graphs it terminates in ``O(nk)`` rounds (Theorem 3.6).

Implementation note on the *source catalog*: the algorithm object holds a
mapping from each source to the ordered list of tokens it is responsible for.
By default this is derived from the problem's initial distribution (source
``x`` is responsible for the tokens ``⟨x, 1⟩ … ⟨x, k_x⟩`` it starts with);
the Oblivious-Multi-Source algorithm re-targets it to the *centers* chosen in
its first phase.  In the paper nodes derive the same information from the
token identifiers ``⟨ID_x, i⟩`` together with the (assumed known) per-source
token counts; holding the catalog in the shared algorithm object models that
assumption without affecting any message count.
"""

from __future__ import annotations

from typing import Callable, Dict, FrozenSet, List, Mapping, Optional, Sequence, Set, Tuple

from repro.algorithms.base import UnicastAlgorithm
from repro.batch.programs import BatchRoundProgram
from repro.core.messages import (
    CompletenessMessage,
    MessageKind,
    Payload,
    ReceivedMessage,
    RequestMessage,
    TokenMessage,
)
from repro.core.observation import SentRecord
from repro.core.rounds import (
    FastRoundProgram,
    pending_request_bits,
    prioritized_edge_indices,
    record_edge_insertions,
)
from repro.core.state import edge_id
from repro.core.tokens import Token, tokens_by_source
from repro.utils.ids import NodeId
from repro.utils.validation import ConfigurationError

_KIND_TOKEN = MessageKind.TOKEN.value
_KIND_COMPLETENESS = MessageKind.COMPLETENESS.value
_KIND_REQUEST = MessageKind.REQUEST.value

#: Delivery tags used in the flat (sender, tag, value) message tuples.
_TAG_COMPLETENESS = 0
_TAG_TOKEN = 1
_TAG_REQUEST = 2


class MultiSourceUnicastAlgorithm(UnicastAlgorithm):
    """Deterministic multi-source k-token dissemination (Section 3.2.1)."""

    name = "multi-source-unicast"

    def __init__(self, source_catalog: Optional[Mapping[NodeId, Sequence[Token]]] = None):
        super().__init__()
        self._configured_catalog = (
            {source: tuple(tokens) for source, tokens in source_catalog.items()}
            if source_catalog is not None
            else None
        )
        self._catalog: Dict[NodeId, Tuple[Token, ...]] = {}
        self._catalog_sources: List[NodeId] = []
        # I_v, R_v(x), S_v(x) of the paper.
        self._complete_wrt: Dict[NodeId, Set[NodeId]] = {}
        self._informed: Dict[NodeId, Dict[NodeId, Set[NodeId]]] = {}
        self._known_complete: Dict[NodeId, Dict[NodeId, Set[NodeId]]] = {}
        # Request bookkeeping, as in the single-source algorithm.
        self._requests_to_answer: Dict[NodeId, Dict[NodeId, Token]] = {}
        self._requests_sent_previous: Dict[NodeId, Dict[NodeId, Token]] = {}
        self._requests_sent_current: Dict[NodeId, Dict[NodeId, Token]] = {}

    # -- catalog management --------------------------------------------------------

    def default_catalog(self) -> Dict[NodeId, Tuple[Token, ...]]:
        """The catalog derived from the problem's initial token placement."""
        catalog: Dict[NodeId, Tuple[Token, ...]] = {}
        for source, tokens in tokens_by_source(self.problem.tokens).items():
            catalog[source] = tuple(sorted(tokens))
        return catalog

    def configure_catalog(self, catalog: Mapping[NodeId, Sequence[Token]]) -> None:
        """(Re)initialize the per-source completeness machinery for a new catalog.

        Used by the Oblivious-Multi-Source algorithm when it starts its second
        phase with the centers as sources.  Token knowledge is preserved; all
        completeness/request bookkeeping is reset.
        """
        covered: Set[Token] = set()
        validated: Dict[NodeId, Tuple[Token, ...]] = {}
        for source in sorted(catalog):
            tokens = tuple(catalog[source])
            if not tokens:
                raise ConfigurationError(f"catalog source {source} has no tokens")
            if source not in self.nodes:
                raise ConfigurationError(f"catalog source {source} is not a node")
            overlap = covered & set(tokens)
            if overlap:
                raise ConfigurationError(f"tokens assigned to multiple sources: {overlap}")
            covered |= set(tokens)
            validated[source] = tokens
        if covered != set(self.problem.tokens):
            raise ConfigurationError("the catalog must cover the token universe exactly")
        self._catalog = validated
        self._catalog_sources = sorted(validated)
        self._complete_wrt = {node: set() for node in self.nodes}
        self._informed = {
            node: {source: set() for source in self._catalog_sources} for node in self.nodes
        }
        self._known_complete = {
            node: {source: set() for source in self._catalog_sources} for node in self.nodes
        }
        self._requests_to_answer = {node: {} for node in self.nodes}
        self._requests_sent_previous = {node: {} for node in self.nodes}
        self._requests_sent_current = {node: {} for node in self.nodes}
        for node in self.nodes:
            for source in self._catalog_sources:
                if self._holds_all_of(node, source):
                    self._complete_wrt[node].add(source)

    def on_setup(self) -> None:
        catalog = (
            self._configured_catalog
            if self._configured_catalog is not None
            else self.default_catalog()
        )
        self.configure_catalog(catalog)

    # -- per-source completeness -----------------------------------------------------

    def catalog_of(self, source: NodeId) -> Tuple[Token, ...]:
        """The tokens the given source is responsible for."""
        return self._catalog[source]

    def catalog_sources(self) -> List[NodeId]:
        """The sources of the active catalog, in increasing ID order."""
        return list(self._catalog_sources)

    def _holds_all_of(self, node: NodeId, source: NodeId) -> bool:
        known = self.known_tokens(node)
        return all(token in known for token in self._catalog[source])

    def is_complete_wrt(self, node: NodeId, source: NodeId) -> bool:
        """True iff ``node`` is complete with respect to ``source``."""
        return source in self._complete_wrt[node]

    def on_learn(self, node: NodeId, token: Token) -> None:
        if not self._catalog:
            return
        for source in self._catalog_sources:
            if source in self._complete_wrt[node]:
                continue
            if token in self._catalog[source] and self._holds_all_of(node, source):
                self._complete_wrt[node].add(source)

    # -- helpers -------------------------------------------------------------------

    def _pending_arrivals(self, node: NodeId, neighbors: FrozenSet[NodeId]) -> Set[Token]:
        pending: Set[Token] = set()
        for neighbor, token in self._requests_sent_previous[node].items():
            if neighbor in neighbors:
                pending.add(token)
        return pending

    def _active_source(self, node: NodeId) -> Optional[NodeId]:
        """The minimum source v is incomplete w.r.t. and knows a complete node for."""
        for source in self._catalog_sources:
            if source in self._complete_wrt[node]:
                continue
            if self._known_complete[node][source]:
                return source
        return None

    def _prioritized_edges(
        self,
        node: NodeId,
        source: NodeId,
        neighbors: FrozenSet[NodeId],
        round_index: int,
    ) -> List[NodeId]:
        complete_neighbors = sorted(
            neighbor
            for neighbor in neighbors
            if neighbor in self._known_complete[node][source]
        )
        new_edges = [
            n for n in complete_neighbors if self.is_new_edge(node, n, round_index)
        ]
        idle_edges = [
            n for n in complete_neighbors if self.is_idle_edge(node, n, round_index)
        ]
        contributive_edges = [
            n for n in complete_neighbors if self.is_contributive_edge(node, n, round_index)
        ]
        return new_edges + idle_edges + contributive_edges

    # -- round behaviour --------------------------------------------------------------

    def select_messages(
        self, round_index: int, neighbors: Mapping[NodeId, FrozenSet[NodeId]]
    ) -> Dict[NodeId, Dict[NodeId, List[Payload]]]:
        sends: Dict[NodeId, Dict[NodeId, List[Payload]]] = {}
        self._requests_sent_current = {node: {} for node in self.nodes}

        def out(sender: NodeId, receiver: NodeId, payload: Payload) -> None:
            sends.setdefault(sender, {}).setdefault(receiver, []).append(payload)

        for node in self.nodes:
            current = neighbors.get(node, frozenset())

            # Task 1: completeness announcements (minimum unannounced source per edge).
            for neighbor in sorted(current):
                for source in self._catalog_sources:
                    if source not in self._complete_wrt[node]:
                        continue
                    if neighbor in self._informed[node][source]:
                        continue
                    out(node, neighbor, CompletenessMessage(source=source))
                    self._informed[node][source].add(neighbor)
                    break

            # Task 2: answer the requests received in the previous round.
            pending_answers = self._requests_to_answer[node]
            for neighbor in sorted(current):
                if neighbor in pending_answers:
                    out(node, neighbor, TokenMessage(pending_answers[neighbor]))
            self._requests_to_answer[node] = {}

            # Task 3: request tokens of the highest-priority incomplete source.
            source = self._active_source(node)
            if source is None:
                continue
            pending = self._pending_arrivals(node, current)
            missing = [
                token
                for token in self._catalog[source]
                if not self.knows(node, token) and token not in pending
            ]
            if not missing:
                continue
            targets = self._prioritized_edges(node, source, current, round_index)
            for position, neighbor in enumerate(targets):
                if position >= len(missing):
                    break
                token = missing[position]
                out(node, neighbor, RequestMessage(source=token.source, index=token.index))
                self._requests_sent_current[node][neighbor] = token
        return sends

    def receive_messages(
        self, round_index: int, inbox: Mapping[NodeId, List[ReceivedMessage]]
    ) -> None:
        for node, messages in inbox.items():
            for message in messages:
                payload = message.payload
                if isinstance(payload, CompletenessMessage):
                    if payload.source in self._known_complete[node]:
                        self._known_complete[node][payload.source].add(message.sender)
                elif isinstance(payload, TokenMessage):
                    learned = self.learn(node, payload.token)
                    if learned:
                        self.record_token_over_edge(node, message.sender, round_index)
                elif isinstance(payload, RequestMessage):
                    self._requests_to_answer[node][message.sender] = payload.token
        self._requests_sent_previous = self._requests_sent_current
        self._requests_sent_current = {node: {} for node in self.nodes}

    # -- diagnostics --------------------------------------------------------------------

    def complete_sources_of(self, node: NodeId) -> List[NodeId]:
        """``I_v`` — the sources the node is complete with respect to."""
        return sorted(self._complete_wrt[node])

    def observation_extra(self) -> Dict[str, object]:
        return {
            "catalog_sources": tuple(self._catalog_sources),
            "complete_wrt": {
                node: tuple(sorted(self._complete_wrt[node])) for node in self.nodes
            },
        }

    def fast_program_factory(self) -> Optional[Callable]:
        # The fast program derives the catalog from the problem's initial
        # placement; explicitly configured catalogs (and subclasses such as
        # the oblivious algorithm) take the generic exchange path.
        if type(self) is not MultiSourceUnicastAlgorithm:
            return None
        if self._configured_catalog is not None:
            return None
        return lambda kernel: _MultiSourceFastProgram(kernel, self)

    def batch_program_factory(self) -> Optional[Callable]:
        # Same guards as the fast program: exact type, default catalog only.
        if type(self) is not MultiSourceUnicastAlgorithm:
            return None
        if self._configured_catalog is not None:
            return None
        return lambda kernel: _MultiSourceBatchProgram(kernel, self)


class _MultiSourceFastProgram(FastRoundProgram):
    """Multi-Source-Unicast (Section 3.2.1) on bitmask state.

    Mirrors :class:`MultiSourceUnicastAlgorithm` with the default catalog:
    per-source completeness masks (``I_v`` as a source-index bitmask,
    ``R_v(x)`` / ``S_v(x)`` as node bitmasks per source), the three per-round
    tasks in the paper's order, and the same request bookkeeping as the
    single-source fast program.

    ``catalog`` overrides the source catalog (the oblivious two-phase
    program hands in the center catalog fixed at its phase transition);
    by default it is derived from the problem's initial placement, exactly
    like :meth:`MultiSourceUnicastAlgorithm.default_catalog`.
    """

    track_edge_history = True

    def __init__(
        self,
        kernel,
        algorithm,
        *,
        catalog: Optional[Mapping[NodeId, Sequence[Token]]] = None,
    ) -> None:
        super().__init__(kernel, algorithm)
        self._catalog_override = catalog

    def setup(self) -> None:
        problem = self.kernel.problem
        token_index = self.token_index
        catalog = (
            self._catalog_override
            if self._catalog_override is not None
            else tokens_by_source(problem.tokens)
        )
        self.sources: List[NodeId] = sorted(catalog)
        s = self.s = len(self.sources)
        self.catalog_bits: List[Tuple[int, ...]] = [
            tuple(sorted(token_index[token] for token in catalog[source]))
            for source in self.sources
        ]
        self.catalog_mask: List[int] = [
            sum(1 << bit for bit in bits) for bits in self.catalog_bits
        ]
        n = self.n
        know = self.state.know
        self.complete_wrt: List[int] = [0] * n  # bit x = complete w.r.t. sources[x]
        for v in range(n):
            mask = 0
            know_v = know[v]
            for x in range(s):
                catalog_mask = self.catalog_mask[x]
                if know_v & catalog_mask == catalog_mask:
                    mask |= 1 << x
            self.complete_wrt[v] = mask
        self.informed: List[List[int]] = [[0] * s for _ in range(n)]
        self.known_complete: List[List[int]] = [[0] * s for _ in range(n)]
        self.answers: List[Dict[int, int]] = [{} for _ in range(n)]
        self.req_prev: List[Optional[Dict[int, int]]] = [None] * n

    def observation_extra(self) -> Dict[str, object]:
        sources = self.sources
        nodes = self.nodes
        return {
            "catalog_sources": tuple(sources),
            "complete_wrt": {
                nodes[v]: tuple(
                    sources[x] for x in range(self.s) if (self.complete_wrt[v] >> x) & 1
                )
                for v in range(self.n)
            },
        }

    def _update_completeness(self, node_index: int) -> None:
        """Mirror of ``on_learn``: refresh ``I_v`` after a new token."""
        mask = self.complete_wrt[node_index]
        know_v = self.state.know[node_index]
        for x in range(self.s):
            if (mask >> x) & 1:
                continue
            catalog_mask = self.catalog_mask[x]
            if know_v & catalog_mask == catalog_mask:
                mask |= 1 << x
        self.complete_wrt[node_index] = mask

    def deliver(self, round_index: int, commitment) -> None:
        n = self.n
        s = self.s
        adj = self.adj
        state = self.state
        know = state.know
        full = self.full_mask
        complete_wrt = self.complete_wrt
        informed = self.informed
        known_complete = self.known_complete
        answers = self.answers
        req_prev = self.req_prev
        req_cur: List[Optional[Dict[int, int]]] = [None] * n
        edge_token_round = self.edge_token_round
        per_node = self.per_node
        deliveries: List[Optional[List[Tuple[int, int, int]]]] = [None] * n
        observe = self.kernel.observe_messages
        records: Optional[List[SentRecord]] = [] if observe else None
        nodes = self.nodes
        tokens = self.tokens

        token_count = 0
        completeness_count = 0
        request_count = 0

        for v in range(n):
            neighbors = adj[v]
            outbox: Dict[int, List[Tuple[int, int]]] = {}

            # Task 1: completeness announcements (minimum unannounced source
            # per edge, in increasing source order).
            cw = complete_wrt[v]
            if cw and neighbors:
                informed_v = informed[v]
                to_visit = neighbors
                while to_visit:
                    low = to_visit & -to_visit
                    u = low.bit_length() - 1
                    to_visit ^= low
                    remaining = cw
                    while remaining:
                        low_x = remaining & -remaining
                        x = low_x.bit_length() - 1
                        remaining ^= low_x
                        if (informed_v[x] >> u) & 1:
                            continue
                        informed_v[x] |= 1 << u
                        completeness_count += 1
                        per_node[v] += 1
                        outbox.setdefault(u, []).append((_TAG_COMPLETENESS, x))
                        break

            # Task 2: answer the requests received in the previous round.
            pending_answers = answers[v]
            if pending_answers:
                to_visit = neighbors
                while to_visit:
                    low = to_visit & -to_visit
                    u = low.bit_length() - 1
                    to_visit ^= low
                    answer = pending_answers.get(u)
                    if answer is not None:
                        token_count += 1
                        per_node[v] += 1
                        outbox.setdefault(u, []).append((_TAG_TOKEN, answer))
            answers[v] = {}

            # Task 3: request tokens of the highest-priority incomplete source.
            active = -1
            known_complete_v = known_complete[v]
            for x in range(s):
                if (cw >> x) & 1:
                    continue
                if known_complete_v[x]:
                    active = x
                    break
            if active >= 0:
                pending_mask = self.pending_request_mask(req_prev[v], neighbors)
                know_v = know[v]
                missing = [
                    bit
                    for bit in self.catalog_bits[active]
                    if not (know_v >> bit) & 1 and not (pending_mask >> bit) & 1
                ]
                if missing:
                    complete_neighbors = neighbors & known_complete_v[active]
                    sent: Optional[Dict[int, int]] = None
                    for position, u in enumerate(
                        self.prioritized_edges(v, complete_neighbors, round_index)
                    ):
                        if position >= len(missing):
                            break
                        bit = missing[position]
                        request_count += 1
                        per_node[v] += 1
                        outbox.setdefault(u, []).append((_TAG_REQUEST, bit))
                        if sent is None:
                            sent = req_cur[v] = {}
                        sent[u] = bit

            # Flush in ascending-receiver order (the kernel's delivery order).
            for u in sorted(outbox):
                box = deliveries[u]
                if box is None:
                    box = deliveries[u] = []
                pairs = outbox[u]
                box.extend((v, tag, value) for tag, value in pairs)
                if records is not None:
                    sender = nodes[v]
                    receiver = nodes[u]
                    for tag, value in pairs:
                        if tag == _TAG_COMPLETENESS:
                            payload: Payload = CompletenessMessage(
                                source=self.sources[value]
                            )
                        elif tag == _TAG_TOKEN:
                            payload = TokenMessage(tokens[value])
                        else:
                            token = tokens[value]
                            payload = RequestMessage(
                                source=token.source, index=token.index
                            )
                        records.append(
                            SentRecord(sender=sender, receiver=receiver, payload=payload)
                        )

        learn_index = state.learn_index
        for u in range(n):
            box = deliveries[u]
            if not box:
                continue
            for sender, tag, value in box:
                if tag == _TAG_COMPLETENESS:
                    known_complete[u][value] |= 1 << sender
                elif tag == _TAG_TOKEN:
                    if learn_index(u, value):
                        eid = edge_id(u, sender, n)
                        edge_token_round[eid] = round_index
                        if know[u] != full:
                            self._update_completeness(u)
                        else:
                            complete_wrt[u] = (1 << s) - 1
                else:  # _TAG_REQUEST
                    answers[u][sender] = value

        self.req_prev = req_cur
        accounting = self.accounting
        accounting.count_bulk(_KIND_TOKEN, token_count)
        accounting.count_bulk(_KIND_COMPLETENESS, completeness_count)
        accounting.count_bulk(_KIND_REQUEST, request_count)
        if records is not None:
            self.store_sent_records(records)


class _MultiSourceLaneMachine:
    """One lane's Multi-Source-Unicast replay state.

    The per-lane analogue of :class:`_MultiSourceFastProgram`: the same
    three tasks per round on integer bitmasks, driven against one lane's
    adjacency and edge-history dicts.  Shared between the multi-source
    batch program (every lane runs the same problem-derived catalog) and
    the oblivious two-phase batch program (each lane hands in its own
    center catalog — and its phase-1 edge history — at its phase
    transition).  The batch kernel admits only oblivious adversaries, so
    no ``SentRecord`` stream exists here.
    """

    __slots__ = (
        "n",
        "s",
        "full_mask",
        "catalog_bits",
        "catalog_mask",
        "know_masks",
        "complete_wrt",
        "informed",
        "known_complete",
        "answers",
        "req_prev",
        "edge_inserted",
        "edge_token_round",
    )

    def __init__(
        self,
        n: int,
        full_mask: int,
        catalog_bits: List[Tuple[int, ...]],
        know_masks: List[int],
        *,
        edge_inserted: Optional[Dict[int, int]] = None,
        edge_token_round: Optional[Dict[int, int]] = None,
    ) -> None:
        self.n = n
        self.s = s = len(catalog_bits)
        self.full_mask = full_mask
        self.catalog_bits = catalog_bits
        self.catalog_mask = [sum(1 << bit for bit in bits) for bits in catalog_bits]
        self.know_masks = know_masks
        self.complete_wrt: List[int] = []
        for v in range(n):
            mask = 0
            know_v = know_masks[v]
            for x in range(s):
                catalog_mask = self.catalog_mask[x]
                if know_v & catalog_mask == catalog_mask:
                    mask |= 1 << x
            self.complete_wrt.append(mask)
        self.informed: List[List[int]] = [[0] * s for _ in range(n)]
        self.known_complete: List[List[int]] = [[0] * s for _ in range(n)]
        self.answers: List[Dict[int, int]] = [{} for _ in range(n)]
        self.req_prev: List[Optional[Dict[int, int]]] = [None] * n
        self.edge_inserted = edge_inserted if edge_inserted is not None else {}
        self.edge_token_round = edge_token_round if edge_token_round is not None else {}

    def _update_completeness(self, node_index: int) -> None:
        """Mirror of ``on_learn``: refresh ``I_v`` after a new token."""
        mask = self.complete_wrt[node_index]
        know_v = self.know_masks[node_index]
        for x in range(self.s):
            if (mask >> x) & 1:
                continue
            catalog_mask = self.catalog_mask[x]
            if know_v & catalog_mask == catalog_mask:
                mask |= 1 << x
        self.complete_wrt[node_index] = mask

    def play_round(
        self,
        lane: int,
        round_index: int,
        adj: List[int],
        inserted_ids,
        state,
        accounting,
    ) -> None:
        """One round of Section 3.2.1 on this lane.

        ``inserted_ids`` is ``None`` when the lane's adversary stage did not
        step this round (steady topology) — a serial run would have seen an
        empty insertion set, so the history fold is skipped identically.
        """
        n = self.n
        s = self.s
        if inserted_ids is not None:
            record_edge_insertions(
                self.edge_inserted, self.edge_token_round, inserted_ids, round_index
            )
        know = self.know_masks
        full = self.full_mask
        complete_wrt = self.complete_wrt
        informed = self.informed
        known_complete = self.known_complete
        answers = self.answers
        req_prev = self.req_prev
        req_cur: List[Optional[Dict[int, int]]] = [None] * n
        edge_inserted = self.edge_inserted
        edge_token_round = self.edge_token_round
        per_node_lane = accounting.per_node[lane]
        deliveries: List[Optional[List[Tuple[int, int, int]]]] = [None] * n

        token_count = 0
        completeness_count = 0
        request_count = 0

        for v in range(n):
            neighbors = adj[v]
            outbox: Dict[int, List[Tuple[int, int]]] = {}

            # Task 1: completeness announcements (minimum unannounced source
            # per edge, in increasing source order).
            cw = complete_wrt[v]
            if cw and neighbors:
                informed_v = informed[v]
                to_visit = neighbors
                while to_visit:
                    low = to_visit & -to_visit
                    u = low.bit_length() - 1
                    to_visit ^= low
                    remaining = cw
                    while remaining:
                        low_x = remaining & -remaining
                        x = low_x.bit_length() - 1
                        remaining ^= low_x
                        if (informed_v[x] >> u) & 1:
                            continue
                        informed_v[x] |= 1 << u
                        completeness_count += 1
                        per_node_lane[v] += 1
                        outbox.setdefault(u, []).append((_TAG_COMPLETENESS, x))
                        break

            # Task 2: answer the requests received in the previous round.
            pending_answers = answers[v]
            if pending_answers:
                to_visit = neighbors
                while to_visit:
                    low = to_visit & -to_visit
                    u = low.bit_length() - 1
                    to_visit ^= low
                    answer = pending_answers.get(u)
                    if answer is not None:
                        token_count += 1
                        per_node_lane[v] += 1
                        outbox.setdefault(u, []).append((_TAG_TOKEN, answer))
            answers[v] = {}

            # Task 3: request tokens of the highest-priority incomplete source.
            active = -1
            known_complete_v = known_complete[v]
            for x in range(s):
                if (cw >> x) & 1:
                    continue
                if known_complete_v[x]:
                    active = x
                    break
            if active >= 0:
                pending_mask = pending_request_bits(req_prev[v], neighbors)
                know_v = know[v]
                missing = [
                    bit
                    for bit in self.catalog_bits[active]
                    if not (know_v >> bit) & 1 and not (pending_mask >> bit) & 1
                ]
                if missing:
                    complete_neighbors = neighbors & known_complete_v[active]
                    sent: Optional[Dict[int, int]] = None
                    for position, u in enumerate(
                        prioritized_edge_indices(
                            n,
                            v,
                            complete_neighbors,
                            round_index,
                            edge_inserted,
                            edge_token_round,
                        )
                    ):
                        if position >= len(missing):
                            break
                        bit = missing[position]
                        request_count += 1
                        per_node_lane[v] += 1
                        outbox.setdefault(u, []).append((_TAG_REQUEST, bit))
                        if sent is None:
                            sent = req_cur[v] = {}
                        sent[u] = bit

            # Flush in ascending-receiver order (the kernel's delivery order).
            for u in sorted(outbox):
                box = deliveries[u]
                if box is None:
                    box = deliveries[u] = []
                box.extend((v, tag, value) for tag, value in outbox[u])

        learn_lane_index = state.learn_lane_index
        for u in range(n):
            box = deliveries[u]
            if not box:
                continue
            for sender, tag, value in box:
                if tag == _TAG_COMPLETENESS:
                    known_complete[u][value] |= 1 << sender
                elif tag == _TAG_TOKEN:
                    if not (know[u] >> value) & 1:
                        know[u] |= 1 << value
                        learn_lane_index(lane, u, value)
                        edge_token_round[edge_id(u, sender, n)] = round_index
                        if know[u] != full:
                            self._update_completeness(u)
                        else:
                            complete_wrt[u] = (1 << s) - 1
                else:  # _TAG_REQUEST
                    answers[u][sender] = value

        self.req_prev = req_cur
        accounting.count_lane(lane, _KIND_TOKEN, token_count)
        accounting.count_lane(lane, _KIND_COMPLETENESS, completeness_count)
        accounting.count_lane(lane, _KIND_REQUEST, request_count)


class _MultiSourceBatchProgram(BatchRoundProgram):
    """Multi-Source-Unicast across lanes: per-lane protocol state, lockstep rounds.

    Requests depend on each lane's own edge history (the new > idle >
    contributive priority of Section 3.1.1), so the round body replays
    :class:`_MultiSourceFastProgram` lane by lane through one
    :class:`_MultiSourceLaneMachine` per lane, each fed from that lane's
    :class:`~repro.core.rounds.AdversaryStage` insertions.  Every lane runs
    the catalog derived from the problem's initial placement, exactly like
    :meth:`MultiSourceUnicastAlgorithm.default_catalog`.
    """

    def setup(self) -> None:
        kernel = self.kernel
        problem = kernel.problem
        token_index = kernel.token_index
        catalog = tokens_by_source(problem.tokens)
        catalog_bits = [
            tuple(sorted(token_index[token] for token in catalog[source]))
            for source in sorted(catalog)
        ]
        initial_masks = [
            sum(1 << token_index[token] for token in problem.initial_knowledge[node])
            for node in self.nodes
        ]
        full_mask = (1 << self.k) - 1
        n = self.n
        self.machines: List[_MultiSourceLaneMachine] = [
            _MultiSourceLaneMachine(n, full_mask, catalog_bits, list(initial_masks))
            for _ in range(kernel.lanes)
        ]

    def deliver(self, round_index: int, commitment) -> None:
        kernel = self.kernel
        stages = kernel.stages
        state = self.state
        accounting = self.accounting
        # Once every lane's topology is steady the kernel stops stepping the
        # stages and their inserted_ids go stale; a serial run would see
        # empty insertions from then on, so skipping the fold is identical.
        stages_advanced = kernel.stages_advanced(round_index)
        machines = self.machines
        for lane in self.np.nonzero(kernel.active_lanes)[0]:
            lane = int(lane)
            stage = stages[lane]
            machines[lane].play_round(
                lane,
                round_index,
                stage.adj,
                stage.inserted_ids if stages_advanced else None,
                state,
                accounting,
            )
