"""Static-network spanning-tree baseline.

Section 1 recalls the static-network strategy: "one can first build a
spanning tree (which can take as much as Ω(n²) messages in graphs with Θ(n²)
edges), and then use the spanning tree edges to disseminate the tokens to all
nodes; this takes O(n² + nk) messages overall or O(n²/k + n) amortized
messages per token".

:class:`SpanningTreeAlgorithm` implements this strategy as an honest unicast
protocol on a (presumed static) network:

1. **Tree construction** — the root floods a ``join`` beacon; every node, on
   first hearing a ``join``, adopts the sender as its parent, acknowledges
   with a ``parent`` message, and forwards the beacon to all of its
   neighbours in the next round.  Cost ``O(m + n)`` messages (``Θ(n²)`` on
   dense graphs, matching the KT0 bound quoted by the paper).
2. **Convergecast** — every node pipelines its initial tokens up the tree,
   one token per tree edge per round.
3. **Broadcast down** — every node pipelines every token it received from its
   parent (and, for the root, from its children) to each of its children.

The algorithm assumes the topology does not change; on a dynamic graph it
degrades gracefully (transfers only happen over tree edges that are currently
present) but gives no guarantees — it is a baseline for the static case only.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Dict, FrozenSet, List, Mapping, Optional, Set, Tuple

from repro.algorithms.base import UnicastAlgorithm
from repro.batch.programs import BatchRoundProgram
from repro.core.messages import (
    ControlMessage,
    MessageKind,
    Payload,
    ReceivedMessage,
    TokenMessage,
)
from repro.core.observation import SentRecord
from repro.core.rounds import FastRoundProgram
from repro.core.tokens import Token
from repro.utils.ids import NodeId

_KIND_TOKEN = MessageKind.TOKEN.value
_KIND_CONTROL = MessageKind.CONTROL.value

#: Delivery tags used in the flat (sender, tag, value) message tuples.
_TAG_TOKEN = 0
_TAG_JOIN = 1
_TAG_PARENT = 2


class SpanningTreeAlgorithm(UnicastAlgorithm):
    """Spanning-tree construction plus token pipelining (static baseline)."""

    name = "spanning-tree"

    def __init__(self, root: Optional[NodeId] = None):
        super().__init__()
        self._configured_root = root
        self._root: NodeId = 0
        self._parent: Dict[NodeId, Optional[NodeId]] = {}
        self._children: Dict[NodeId, List[NodeId]] = {}
        self._must_flood_join: Set[NodeId] = set()
        self._pending_parent_ack: Dict[NodeId, NodeId] = {}
        self._up_queue: Dict[NodeId, List[Token]] = {}
        self._distribute_list: Dict[NodeId, List[Token]] = {}
        self._distributed_seen: Dict[NodeId, Set[Token]] = {}
        self._down_progress: Dict[NodeId, Dict[NodeId, int]] = {}

    @property
    def configured_root(self) -> Optional[NodeId]:
        """The root requested at construction time (``None`` = lowest node ID).

        Exposed so alternative execution backends pick the same root without
        going through :meth:`setup`.
        """
        return self._configured_root

    # -- setup -----------------------------------------------------------------

    def on_setup(self) -> None:
        self._root = (
            self._configured_root if self._configured_root is not None else min(self.nodes)
        )
        if self._root not in self.nodes:
            self._root = min(self.nodes)
        self._parent = {node: None for node in self.nodes}
        self._parent[self._root] = self._root
        self._children = {node: [] for node in self.nodes}
        self._must_flood_join = {self._root}
        self._pending_parent_ack = {}
        self._up_queue = {
            node: sorted(self.problem.initial_knowledge[node])
            for node in self.nodes
            if node != self._root
        }
        self._up_queue.setdefault(self._root, [])
        self._distribute_list = {node: [] for node in self.nodes}
        self._distributed_seen = {node: set() for node in self.nodes}
        self._down_progress = {node: {} for node in self.nodes}
        for token in sorted(self.problem.initial_knowledge[self._root]):
            self._add_to_distribution(self._root, token)

    def _add_to_distribution(self, node: NodeId, token: Token) -> None:
        """Queue ``token`` for delivery to every (current and future) child of ``node``."""
        if token in self._distributed_seen[node]:
            return
        self._distributed_seen[node].add(token)
        self._distribute_list[node].append(token)

    # -- round behaviour --------------------------------------------------------

    def select_messages(
        self, round_index: int, neighbors: Mapping[NodeId, FrozenSet[NodeId]]
    ) -> Dict[NodeId, Dict[NodeId, List[Payload]]]:
        sends: Dict[NodeId, Dict[NodeId, List[Payload]]] = {}

        def out(sender: NodeId, receiver: NodeId, payload: Payload) -> None:
            sends.setdefault(sender, {}).setdefault(receiver, []).append(payload)

        for node in self.nodes:
            current = neighbors.get(node, frozenset())

            # 1. Tree construction: flood the join beacon once, acknowledge parent.
            if node in self._must_flood_join:
                for neighbor in sorted(current):
                    out(node, neighbor, ControlMessage(tag="join", data=self._root))
                self._must_flood_join.discard(node)
            ack_target = self._pending_parent_ack.get(node)
            if ack_target is not None and ack_target in current:
                out(node, ack_target, ControlMessage(tag="parent"))
                del self._pending_parent_ack[node]

            # 2. Convergecast one token per round toward the parent.
            parent = self._parent[node]
            if (
                node != self._root
                and parent is not None
                and parent in current
                and self._up_queue[node]
            ):
                token = self._up_queue[node].pop(0)
                out(node, parent, TokenMessage(token))

            # 3. Pipeline the distribution list down to each child.
            for child in self._children[node]:
                if child not in current:
                    continue
                progress = self._down_progress[node].get(child, 0)
                if progress < len(self._distribute_list[node]):
                    token = self._distribute_list[node][progress]
                    out(node, child, TokenMessage(token))
                    self._down_progress[node][child] = progress + 1
        return sends

    def receive_messages(
        self, round_index: int, inbox: Mapping[NodeId, List[ReceivedMessage]]
    ) -> None:
        for node, messages in inbox.items():
            for message in messages:
                payload = message.payload
                if isinstance(payload, ControlMessage):
                    if payload.tag == "join" and self._parent[node] is None:
                        self._parent[node] = message.sender
                        self._pending_parent_ack[node] = message.sender
                        self._must_flood_join.add(node)
                    elif payload.tag == "parent":
                        if message.sender not in self._children[node]:
                            self._children[node].append(message.sender)
                elif isinstance(payload, TokenMessage):
                    token = payload.token
                    learned = self.learn(node, token)
                    if learned:
                        self.record_token_over_edge(node, message.sender, round_index)
                    if message.sender == self._parent[node]:
                        # Downward traffic: forward to all children.
                        self._add_to_distribution(node, token)
                    else:
                        # Upward traffic from a child.
                        if node == self._root:
                            self._add_to_distribution(node, token)
                        else:
                            self._up_queue[node].append(token)

    # -- diagnostics -------------------------------------------------------------

    @property
    def root(self) -> NodeId:
        """The root of the spanning tree."""
        return self._root

    def tree_parent(self, node: NodeId) -> Optional[NodeId]:
        """The parent adopted by ``node`` (``None`` until it joins the tree)."""
        return self._parent[node]

    def tree_children(self, node: NodeId) -> List[NodeId]:
        """The children of ``node`` in the constructed tree."""
        return list(self._children[node])

    def fast_program_factory(self) -> Optional[Callable]:
        if type(self) is not SpanningTreeAlgorithm:
            return None
        return lambda kernel: _SpanningTreeFastProgram(kernel, self)

    def batch_program_factory(self) -> Optional[Callable]:
        if type(self) is not SpanningTreeAlgorithm:
            return None
        return lambda kernel: _SpanningTreeBatchProgram(kernel, self)


class _SpanningTreeFastProgram(FastRoundProgram):
    """Spanning-tree construction plus token pipelining on bitmask state.

    Mirrors :class:`SpanningTreeAlgorithm`: join-beacon flooding, parent
    acknowledgements, one-token-per-round convergecast toward the root and
    pipelined distribution to children, with tokens carried as sorted-order
    bit indices.
    """

    def setup(self) -> None:
        configured = self.algorithm.configured_root
        if configured is not None and configured in self.index_of:
            self.root = self.index_of[configured]
        else:
            self.root = 0  # nodes are sorted, so index 0 is the lowest ID
        n = self.n
        token_index = self.token_index
        initial = self.kernel.problem.initial_knowledge
        self.parent: List[int] = [-1] * n
        self.parent[self.root] = self.root
        self.children: List[List[int]] = [[] for _ in range(n)]
        self.children_seen: List[Set[int]] = [set() for _ in range(n)]
        self.flood_pending: List[bool] = [False] * n
        self.flood_pending[self.root] = True
        self.pending_ack: List[int] = [-1] * n
        self.up_queue: List[deque] = [
            deque(
                sorted(token_index[token] for token in initial[node])
                if index != self.root
                else ()
            )
            for index, node in enumerate(self.nodes)
        ]
        self.distribute: List[List[int]] = [[] for _ in range(n)]
        self.distribute_seen: List[int] = [0] * n
        self.down_progress: List[Dict[int, int]] = [{} for _ in range(n)]
        for token_bit_index in sorted(
            token_index[token] for token in initial[self.nodes[self.root]]
        ):
            self._add_to_distribution(self.root, token_bit_index)

    def _add_to_distribution(self, node_index: int, token_bit_index: int) -> None:
        bit = 1 << token_bit_index
        if self.distribute_seen[node_index] & bit:
            return
        self.distribute_seen[node_index] |= bit
        self.distribute[node_index].append(token_bit_index)

    def _payload_for(self, tag: int, value: int) -> Payload:
        if tag == _TAG_TOKEN:
            return TokenMessage(self.tokens[value])
        if tag == _TAG_JOIN:
            return ControlMessage(tag="join", data=self.nodes[self.root])
        return ControlMessage(tag="parent")

    def deliver(self, round_index: int, commitment) -> None:
        n = self.n
        adj = self.adj
        parent = self.parent
        root = self.root
        per_node = self.per_node
        deliveries: List[Optional[List[Tuple[int, int, int]]]] = [None] * n
        observe = self.kernel.observe_messages
        records: Optional[List[SentRecord]] = [] if observe else None
        nodes = self.nodes

        token_count = 0
        control_count = 0

        for v in range(n):
            neighbors = adj[v]
            sends: Dict[int, List[Tuple[int, int, int]]] = {}

            # 1. Tree construction: flood the join beacon once, acknowledge
            #    the adopted parent.
            if self.flood_pending[v]:
                to_visit = neighbors
                while to_visit:
                    low = to_visit & -to_visit
                    u = low.bit_length() - 1
                    to_visit ^= low
                    control_count += 1
                    per_node[v] += 1
                    sends.setdefault(u, []).append((v, _TAG_JOIN, 0))
                self.flood_pending[v] = False
            ack_target = self.pending_ack[v]
            if ack_target >= 0 and (neighbors >> ack_target) & 1:
                control_count += 1
                per_node[v] += 1
                sends.setdefault(ack_target, []).append((v, _TAG_PARENT, 0))
                self.pending_ack[v] = -1

            # 2. Convergecast one token per round toward the parent.
            parent_of_v = parent[v]
            if (
                v != root
                and parent_of_v >= 0
                and (neighbors >> parent_of_v) & 1
                and self.up_queue[v]
            ):
                token_bit_index = self.up_queue[v].popleft()
                token_count += 1
                per_node[v] += 1
                sends.setdefault(parent_of_v, []).append(
                    (v, _TAG_TOKEN, token_bit_index)
                )

            # 3. Pipeline the distribution list down to each child.
            distribute = self.distribute[v]
            progress_map = self.down_progress[v]
            for child in self.children[v]:
                if not (neighbors >> child) & 1:
                    continue
                progress = progress_map.get(child, 0)
                if progress < len(distribute):
                    token_count += 1
                    per_node[v] += 1
                    sends.setdefault(child, []).append(
                        (v, _TAG_TOKEN, distribute[progress])
                    )
                    progress_map[child] = progress + 1

            # Flush in ascending-receiver order (the kernel's delivery order);
            # since senders are visited ascending, each receiver's box ends up
            # in the exchange-program inbox order.
            for u in sorted(sends):
                box = deliveries[u]
                if box is None:
                    box = deliveries[u] = []
                box.extend(sends[u])
                if records is not None:
                    sender = nodes[v]
                    receiver = nodes[u]
                    for _, tag, value in sends[u]:
                        records.append(
                            SentRecord(
                                sender=sender,
                                receiver=receiver,
                                payload=self._payload_for(tag, value),
                            )
                        )

        learn_index = self.state.learn_index
        for u in range(n):
            box = deliveries[u]
            if not box:
                continue
            for sender, tag, value in box:
                if tag == _TAG_TOKEN:
                    learn_index(u, value)
                    if sender == parent[u]:
                        # Downward traffic: forward to all children.
                        self._add_to_distribution(u, value)
                    elif u == root:
                        self._add_to_distribution(u, value)
                    else:
                        self.up_queue[u].append(value)
                elif tag == _TAG_JOIN:
                    if parent[u] == -1:
                        parent[u] = sender
                        self.pending_ack[u] = sender
                        self.flood_pending[u] = True
                else:  # _TAG_PARENT
                    if sender not in self.children_seen[u]:
                        self.children_seen[u].add(sender)
                        self.children[u].append(sender)

        accounting = self.accounting
        accounting.count_bulk(_KIND_TOKEN, token_count)
        accounting.count_bulk(_KIND_CONTROL, control_count)
        if records is not None:
            self.store_sent_records(records)


class _SpanningTreeBatchProgram(BatchRoundProgram):
    """Spanning-tree construction across lanes: per-lane tree state,
    lockstep rounds.

    Tree membership, convergecast queues and distribution progress are all
    per-lane (each lane's adversary presents different edges, so the trees
    diverge), so the round body replays :class:`_SpanningTreeFastProgram`
    lane by lane on the lane's adjacency bitmasks.  Learnings go straight
    to the batch state — ``learn_lane_index`` is idempotent, mirroring the
    fast program's unconditional ``learn_index``.
    """

    def setup(self) -> None:
        configured = self.algorithm.configured_root
        index_of = self.kernel.index_of
        if configured is not None and configured in index_of:
            self.root = index_of[configured]
        else:
            self.root = 0  # nodes are sorted, so index 0 is the lowest ID
        n = self.n
        root = self.root
        lanes = self.kernel.lanes
        token_index = self.kernel.token_index
        initial = self.kernel.problem.initial_knowledge
        up_template = [
            sorted(token_index[token] for token in initial[node])
            if index != root
            else []
            for index, node in enumerate(self.nodes)
        ]
        root_tokens = sorted(
            token_index[token] for token in initial[self.nodes[root]]
        )
        self.parent: List[List[int]] = []
        self.children: List[List[List[int]]] = []
        self.children_seen: List[List[Set[int]]] = []
        self.flood_pending: List[List[bool]] = []
        self.pending_ack: List[List[int]] = []
        self.up_queue: List[List[deque]] = []
        self.distribute: List[List[List[int]]] = []
        self.distribute_seen: List[List[int]] = []
        self.down_progress: List[List[Dict[int, int]]] = []
        for _ in range(lanes):
            parent = [-1] * n
            parent[root] = root
            self.parent.append(parent)
            self.children.append([[] for _ in range(n)])
            self.children_seen.append([set() for _ in range(n)])
            flood_pending = [False] * n
            flood_pending[root] = True
            self.flood_pending.append(flood_pending)
            self.pending_ack.append([-1] * n)
            self.up_queue.append([deque(queue) for queue in up_template])
            distribute = [[] for _ in range(n)]
            distribute_seen = [0] * n
            for token_bit_index in root_tokens:
                distribute_seen[root] |= 1 << token_bit_index
                distribute[root].append(token_bit_index)
            self.distribute.append(distribute)
            self.distribute_seen.append(distribute_seen)
            self.down_progress.append([{} for _ in range(n)])

    def _add_to_distribution(
        self, lane: int, node_index: int, token_bit_index: int
    ) -> None:
        bit = 1 << token_bit_index
        if self.distribute_seen[lane][node_index] & bit:
            return
        self.distribute_seen[lane][node_index] |= bit
        self.distribute[lane][node_index].append(token_bit_index)

    def deliver(self, round_index: int, commitment) -> None:
        n = self.n
        root = self.root
        state = self.state
        stages = self.kernel.stages
        accounting = self.accounting
        per_node = accounting.per_node
        for lane in self.np.nonzero(self.kernel.active_lanes)[0]:
            lane = int(lane)
            adj = stages[lane].adj
            parent = self.parent[lane]
            children = self.children[lane]
            children_seen = self.children_seen[lane]
            flood_pending = self.flood_pending[lane]
            pending_ack = self.pending_ack[lane]
            up_queue = self.up_queue[lane]
            distribute_lane = self.distribute[lane]
            down_progress = self.down_progress[lane]
            per_node_lane = per_node[lane]
            deliveries: List[Optional[List[Tuple[int, int, int]]]] = [None] * n
            token_count = 0
            control_count = 0

            for v in range(n):
                neighbors = adj[v]
                sends: Dict[int, List[Tuple[int, int, int]]] = {}

                # 1. Tree construction: flood the join beacon once,
                #    acknowledge the adopted parent.
                if flood_pending[v]:
                    to_visit = neighbors
                    while to_visit:
                        low = to_visit & -to_visit
                        u = low.bit_length() - 1
                        to_visit ^= low
                        control_count += 1
                        per_node_lane[v] += 1
                        sends.setdefault(u, []).append((v, _TAG_JOIN, 0))
                    flood_pending[v] = False
                ack_target = pending_ack[v]
                if ack_target >= 0 and (neighbors >> ack_target) & 1:
                    control_count += 1
                    per_node_lane[v] += 1
                    sends.setdefault(ack_target, []).append((v, _TAG_PARENT, 0))
                    pending_ack[v] = -1

                # 2. Convergecast one token per round toward the parent.
                parent_of_v = parent[v]
                if (
                    v != root
                    and parent_of_v >= 0
                    and (neighbors >> parent_of_v) & 1
                    and up_queue[v]
                ):
                    token_bit_index = up_queue[v].popleft()
                    token_count += 1
                    per_node_lane[v] += 1
                    sends.setdefault(parent_of_v, []).append(
                        (v, _TAG_TOKEN, token_bit_index)
                    )

                # 3. Pipeline the distribution list down to each child.
                distribute = distribute_lane[v]
                progress_map = down_progress[v]
                for child in children[v]:
                    if not (neighbors >> child) & 1:
                        continue
                    progress = progress_map.get(child, 0)
                    if progress < len(distribute):
                        token_count += 1
                        per_node_lane[v] += 1
                        sends.setdefault(child, []).append(
                            (v, _TAG_TOKEN, distribute[progress])
                        )
                        progress_map[child] = progress + 1

                # Flush in ascending-receiver order (the kernel's delivery
                # order), matching the fast program's inbox ordering.
                for u in sorted(sends):
                    box = deliveries[u]
                    if box is None:
                        box = deliveries[u] = []
                    box.extend(sends[u])

            for u in range(n):
                box = deliveries[u]
                if not box:
                    continue
                for sender, tag, value in box:
                    if tag == _TAG_TOKEN:
                        state.learn_lane_index(lane, u, value)
                        if sender == parent[u]:
                            # Downward traffic: forward to all children.
                            self._add_to_distribution(lane, u, value)
                        elif u == root:
                            self._add_to_distribution(lane, u, value)
                        else:
                            up_queue[u].append(value)
                    elif tag == _TAG_JOIN:
                        if parent[u] == -1:
                            parent[u] = sender
                            pending_ack[u] = sender
                            flood_pending[u] = True
                    else:  # _TAG_PARENT
                        if sender not in children_seen[u]:
                            children_seen[u].add(sender)
                            children[u].append(sender)

            accounting.count_lane(lane, _KIND_TOKEN, token_count)
            accounting.count_lane(lane, _KIND_CONTROL, control_count)
