"""Static-network spanning-tree baseline.

Section 1 recalls the static-network strategy: "one can first build a
spanning tree (which can take as much as Ω(n²) messages in graphs with Θ(n²)
edges), and then use the spanning tree edges to disseminate the tokens to all
nodes; this takes O(n² + nk) messages overall or O(n²/k + n) amortized
messages per token".

:class:`SpanningTreeAlgorithm` implements this strategy as an honest unicast
protocol on a (presumed static) network:

1. **Tree construction** — the root floods a ``join`` beacon; every node, on
   first hearing a ``join``, adopts the sender as its parent, acknowledges
   with a ``parent`` message, and forwards the beacon to all of its
   neighbours in the next round.  Cost ``O(m + n)`` messages (``Θ(n²)`` on
   dense graphs, matching the KT0 bound quoted by the paper).
2. **Convergecast** — every node pipelines its initial tokens up the tree,
   one token per tree edge per round.
3. **Broadcast down** — every node pipelines every token it received from its
   parent (and, for the root, from its children) to each of its children.

The algorithm assumes the topology does not change; on a dynamic graph it
degrades gracefully (transfers only happen over tree edges that are currently
present) but gives no guarantees — it is a baseline for the static case only.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Mapping, Optional, Set

from repro.algorithms.base import UnicastAlgorithm
from repro.core.messages import ControlMessage, Payload, ReceivedMessage, TokenMessage
from repro.core.tokens import Token
from repro.utils.ids import NodeId


class SpanningTreeAlgorithm(UnicastAlgorithm):
    """Spanning-tree construction plus token pipelining (static baseline)."""

    name = "spanning-tree"

    def __init__(self, root: Optional[NodeId] = None):
        super().__init__()
        self._configured_root = root
        self._root: NodeId = 0
        self._parent: Dict[NodeId, Optional[NodeId]] = {}
        self._children: Dict[NodeId, List[NodeId]] = {}
        self._must_flood_join: Set[NodeId] = set()
        self._pending_parent_ack: Dict[NodeId, NodeId] = {}
        self._up_queue: Dict[NodeId, List[Token]] = {}
        self._distribute_list: Dict[NodeId, List[Token]] = {}
        self._distributed_seen: Dict[NodeId, Set[Token]] = {}
        self._down_progress: Dict[NodeId, Dict[NodeId, int]] = {}

    @property
    def configured_root(self) -> Optional[NodeId]:
        """The root requested at construction time (``None`` = lowest node ID).

        Exposed so alternative execution backends pick the same root without
        going through :meth:`setup`.
        """
        return self._configured_root

    # -- setup -----------------------------------------------------------------

    def on_setup(self) -> None:
        self._root = (
            self._configured_root if self._configured_root is not None else min(self.nodes)
        )
        if self._root not in self.nodes:
            self._root = min(self.nodes)
        self._parent = {node: None for node in self.nodes}
        self._parent[self._root] = self._root
        self._children = {node: [] for node in self.nodes}
        self._must_flood_join = {self._root}
        self._pending_parent_ack = {}
        self._up_queue = {
            node: sorted(self.problem.initial_knowledge[node])
            for node in self.nodes
            if node != self._root
        }
        self._up_queue.setdefault(self._root, [])
        self._distribute_list = {node: [] for node in self.nodes}
        self._distributed_seen = {node: set() for node in self.nodes}
        self._down_progress = {node: {} for node in self.nodes}
        for token in sorted(self.problem.initial_knowledge[self._root]):
            self._add_to_distribution(self._root, token)

    def _add_to_distribution(self, node: NodeId, token: Token) -> None:
        """Queue ``token`` for delivery to every (current and future) child of ``node``."""
        if token in self._distributed_seen[node]:
            return
        self._distributed_seen[node].add(token)
        self._distribute_list[node].append(token)

    # -- round behaviour --------------------------------------------------------

    def select_messages(
        self, round_index: int, neighbors: Mapping[NodeId, FrozenSet[NodeId]]
    ) -> Dict[NodeId, Dict[NodeId, List[Payload]]]:
        sends: Dict[NodeId, Dict[NodeId, List[Payload]]] = {}

        def out(sender: NodeId, receiver: NodeId, payload: Payload) -> None:
            sends.setdefault(sender, {}).setdefault(receiver, []).append(payload)

        for node in self.nodes:
            current = neighbors.get(node, frozenset())

            # 1. Tree construction: flood the join beacon once, acknowledge parent.
            if node in self._must_flood_join:
                for neighbor in sorted(current):
                    out(node, neighbor, ControlMessage(tag="join", data=self._root))
                self._must_flood_join.discard(node)
            ack_target = self._pending_parent_ack.get(node)
            if ack_target is not None and ack_target in current:
                out(node, ack_target, ControlMessage(tag="parent"))
                del self._pending_parent_ack[node]

            # 2. Convergecast one token per round toward the parent.
            parent = self._parent[node]
            if (
                node != self._root
                and parent is not None
                and parent in current
                and self._up_queue[node]
            ):
                token = self._up_queue[node].pop(0)
                out(node, parent, TokenMessage(token))

            # 3. Pipeline the distribution list down to each child.
            for child in self._children[node]:
                if child not in current:
                    continue
                progress = self._down_progress[node].get(child, 0)
                if progress < len(self._distribute_list[node]):
                    token = self._distribute_list[node][progress]
                    out(node, child, TokenMessage(token))
                    self._down_progress[node][child] = progress + 1
        return sends

    def receive_messages(
        self, round_index: int, inbox: Mapping[NodeId, List[ReceivedMessage]]
    ) -> None:
        for node, messages in inbox.items():
            for message in messages:
                payload = message.payload
                if isinstance(payload, ControlMessage):
                    if payload.tag == "join" and self._parent[node] is None:
                        self._parent[node] = message.sender
                        self._pending_parent_ack[node] = message.sender
                        self._must_flood_join.add(node)
                    elif payload.tag == "parent":
                        if message.sender not in self._children[node]:
                            self._children[node].append(message.sender)
                elif isinstance(payload, TokenMessage):
                    token = payload.token
                    learned = self.learn(node, token)
                    if learned:
                        self.record_token_over_edge(node, message.sender, round_index)
                    if message.sender == self._parent[node]:
                        # Downward traffic: forward to all children.
                        self._add_to_distribution(node, token)
                    else:
                        # Upward traffic from a child.
                        if node == self._root:
                            self._add_to_distribution(node, token)
                        else:
                            self._up_queue[node].append(token)

    # -- diagnostics -------------------------------------------------------------

    @property
    def root(self) -> NodeId:
        """The root of the spanning tree."""
        return self._root

    def tree_parent(self, node: NodeId) -> Optional[NodeId]:
        """The parent adopted by ``node`` (``None`` until it joins the tree)."""
        return self._parent[node]

    def tree_children(self, node: NodeId) -> List[NodeId]:
        """The children of ``node`` in the constructed tree."""
        return list(self._children[node])
