"""Naive flooding in the local broadcast model.

Section 2 of the paper notes that an ``O(n²)`` amortized message upper bound
per token "is straightforward to obtain by using flooding (each node
broadcasts each token for n rounds)".  :class:`FloodingAlgorithm` implements
this naive algorithm in its phase-by-phase form: the tokens are processed in
a globally known order, and for ``rounds_per_token`` consecutive rounds every
node that knows the current token broadcasts it.  Because every round graph
is connected, at least one new node learns the token per round of its phase,
so ``n - 1`` rounds per token always suffice — even against the strongly
adaptive adversary.

Cost: at most ``n`` broadcasts per node per token, i.e. ``O(n²k)`` messages
in total and ``O(n²)`` amortized per token, matching the lower bound of
Theorem 2.3 up to logarithmic factors.

:class:`OneShotFloodingAlgorithm` is the optimistic variant in which every
node broadcasts every token it knows exactly once (a work queue).  It is much
cheaper on benign dynamic graphs but has no worst-case guarantee against an
adaptive adversary; it is used as a comparison point in the benchmarks.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Dict, List, Optional, Tuple

from repro.algorithms.base import LocalBroadcastAlgorithm
from repro.batch.programs import BatchRoundProgram
from repro.core.messages import MessageKind, Payload, TokenMessage
from repro.core.observation import SentRecord
from repro.core.rounds import FastRoundProgram
from repro.core.state import bit_indices
from repro.core.tokens import Token
from repro.utils.ids import NodeId
from repro.utils.validation import require_positive_int

_KIND_TOKEN = MessageKind.TOKEN.value


class FloodingAlgorithm(LocalBroadcastAlgorithm):
    """Phase-based naive flooding: token ``i`` is flooded for ``rounds_per_token`` rounds.

    Args:
        rounds_per_token: length of each token's flooding phase.  Defaults to
            ``n`` (the paper's description); ``n - 1`` already guarantees
            dissemination on always-connected dynamic graphs.
    """

    name = "flooding"

    def __init__(self, rounds_per_token: Optional[int] = None):
        super().__init__()
        if rounds_per_token is not None:
            require_positive_int(rounds_per_token, "rounds_per_token")
        self._rounds_per_token = rounds_per_token
        self._token_order: Tuple[Token, ...] = ()
        self._phase_length = 0

    def on_setup(self) -> None:
        self._token_order = tuple(sorted(self.problem.tokens))
        self._phase_length = self.phase_length_for(self.problem.num_nodes)

    @property
    def configured_rounds_per_token(self) -> Optional[int]:
        """The explicit phase length, or ``None`` for the n-round default."""
        return self._rounds_per_token

    def phase_length_for(self, num_nodes: int) -> int:
        """The phase length used on an ``num_nodes``-node problem.

        Exposed so alternative execution backends reproduce the exact
        phase schedule without going through :meth:`setup`.
        """
        if self._rounds_per_token is not None:
            return self._rounds_per_token
        return max(1, num_nodes)

    def current_token(self, round_index: int) -> Optional[Token]:
        """The token being flooded in the given round (None once all phases ended)."""
        phase = (round_index - 1) // self._phase_length
        if phase >= len(self._token_order):
            return None
        return self._token_order[phase]

    def select_broadcasts(self, round_index: int) -> Dict[NodeId, Optional[Payload]]:
        token = self.current_token(round_index)
        broadcasts: Dict[NodeId, Optional[Payload]] = {}
        for node in self.nodes:
            if token is not None and self.knows(node, token):
                broadcasts[node] = TokenMessage(token)
            else:
                broadcasts[node] = None
        return broadcasts

    def is_quiescent(self) -> bool:
        return False

    def fast_program_factory(self) -> Optional[Callable]:
        if type(self) is not FloodingAlgorithm:
            return None
        return lambda kernel: _FloodingFastProgram(kernel, self)

    def batch_program_factory(self) -> Optional[Callable]:
        if type(self) is not FloodingAlgorithm:
            return None
        return lambda kernel: _FloodingBatchProgram(kernel, self)


class _FloodingFastProgram(FastRoundProgram):
    """Phase-based flooding on bitmask state: one global token per phase.

    Round ``r`` floods token ``(r - 1) // phase_length`` (in sorted token
    order); every node whose knowledge bit is set commits to broadcasting
    it, and after the adversary fixes the graph every neighbour of a holder
    learns the token.  The holder set is one node bitmask, so a round is a
    popcount, a union of adjacency masks and a handful of bit updates.
    """

    def setup(self) -> None:
        self.phase_length = self.algorithm.phase_length_for(self.n)
        self._current_phase = -1
        self._holders_mask = 0

    def commit(self, round_index: int) -> Tuple[int, int]:
        phase = (round_index - 1) // self.phase_length
        if phase >= self.k:
            return phase, 0
        if phase != self._current_phase:
            self._current_phase = phase
            self._holders_mask = self.state.holders_mask(phase)
        return phase, self._holders_mask

    def commit_payloads(self, commitment) -> Dict[NodeId, Optional[Payload]]:
        phase, holders = commitment
        if phase >= self.k:
            return {node: None for node in self.nodes}
        token = self.tokens[phase]
        return {
            node: TokenMessage(token) if (holders >> index) & 1 else None
            for index, node in enumerate(self.nodes)
        }

    def deliver(self, round_index: int, commitment) -> None:
        phase, holders = commitment
        observe = self.kernel.observe_messages
        if phase >= self.k or not holders:
            if observe:
                self.store_sent_records([])
            return
        broadcasters = bit_indices(holders)
        self.accounting.count_bulk(_KIND_TOKEN, len(broadcasters))
        per_node = self.per_node
        adj = self.adj
        reach = 0
        for index in broadcasters:
            per_node[index] += 1
            reach |= adj[index]
        if observe:
            nodes = self.nodes
            token = self.tokens[phase]
            self.store_sent_records(
                [
                    SentRecord(sender=nodes[index], receiver=None, payload=TokenMessage(token))
                    for index in broadcasters
                ]
            )
        learners = reach & ~holders
        if learners:
            learn_index = self.state.learn_index
            mask = learners
            while mask:
                low = mask & -mask
                learn_index(low.bit_length() - 1, phase)
                mask ^= low
            self._holders_mask = holders | learners


class _FloodingBatchProgram(BatchRoundProgram):
    """Phase-based flooding across all lanes: one matmul per round.

    The per-lane round body is identical to :class:`_FloodingFastProgram`,
    lifted to arrays: the phase-token holder sets of every lane form one
    ``(lanes, n)`` bool matrix (a live view into the batch knowledge cube),
    reachability is a batched matrix product against the dense per-lane
    adjacency, and the new learners of every lane are committed in one
    :meth:`~repro.core.state.BatchKnowledgeState.learn_token_bulk` call —
    which appends events node-ascending per lane, exactly the order the
    serial program's ascending-bit learning loop produces.

    Once every active lane's holder set saturates (all ``n`` nodes hold the
    phase token) the matmul is skipped for the rest of the phase — no lane
    can learn anything, only the broadcast counting remains.
    """

    needs_dense_adjacency = True

    def setup(self) -> None:
        self.phase_length = self.algorithm.phase_length_for(self.n)
        self._current_phase = -1
        self._saturated = False

    def commit(self, round_index: int) -> int:
        phase = (round_index - 1) // self.phase_length
        if phase != self._current_phase:
            self._current_phase = phase
            self._saturated = False
        return phase

    def deliver(self, round_index: int, commitment) -> None:
        phase = commitment
        if phase >= self.k:
            return
        np = self.np
        active = self.kernel.active_lanes
        holders = self.state.holders_column(phase)
        senders = holders & active[:, None]
        counts = senders.sum(axis=1)
        self.accounting.count_lanes(_KIND_TOKEN, counts)
        self.accounting.per_node += senders
        if self._saturated:
            return
        if bool((counts[active] == self.n).all()):
            self._saturated = True
            return
        reach = (
            np.matmul(
                self.kernel.dense_adj,
                senders.astype(np.float32)[:, :, None],
            )[:, :, 0]
            > 0.5
        )
        learners = reach & ~holders & active[:, None]
        if learners.any():
            self.state.learn_token_bulk(phase, learners)


class OneShotFloodingAlgorithm(LocalBroadcastAlgorithm):
    """Optimistic flooding: every node broadcasts every token it knows exactly once.

    Each node keeps a FIFO queue of tokens it has not broadcast yet (initial
    tokens plus every newly learned token) and broadcasts the head of the
    queue each round.  The total number of broadcasts is at most ``nk`` (each
    node broadcasts each token at most once), i.e. ``O(n)`` amortized, but the
    algorithm can fail to disseminate against worst-case dynamic graphs — it
    exists as an optimistic baseline for benign schedules.
    """

    name = "one-shot-flooding"

    def __init__(self) -> None:
        super().__init__()
        self._queues: Dict[NodeId, Deque[Token]] = {}

    def on_setup(self) -> None:
        self._queues = {
            node: deque(sorted(self.problem.initial_knowledge[node])) for node in self.nodes
        }

    def on_learn(self, node: NodeId, token: Token) -> None:
        self._queues[node].append(token)

    def select_broadcasts(self, round_index: int) -> Dict[NodeId, Optional[Payload]]:
        broadcasts: Dict[NodeId, Optional[Payload]] = {}
        for node in self.nodes:
            queue = self._queues[node]
            broadcasts[node] = TokenMessage(queue.popleft()) if queue else None
        return broadcasts

    def is_quiescent(self) -> bool:
        return all(not queue for queue in self._queues.values())

    def fast_program_factory(self) -> Optional[Callable]:
        if type(self) is not OneShotFloodingAlgorithm:
            return None
        return lambda kernel: _OneShotFloodingFastProgram(kernel, self)

    def batch_program_factory(self) -> Optional[Callable]:
        if type(self) is not OneShotFloodingAlgorithm:
            return None
        return lambda kernel: _OneShotFloodingBatchProgram(kernel, self)


class _OneShotFloodingFastProgram(FastRoundProgram):
    """One-shot flooding on bitmask state: per-node FIFO queues of bit indices.

    Each round every node with a non-empty queue commits its head token;
    after delivery, every first-time learner enqueues the token it learned
    (mirroring :meth:`OneShotFloodingAlgorithm.on_learn`), and the program is
    quiescent once all queues drain.
    """

    def setup(self) -> None:
        initial = self.kernel.problem.initial_knowledge
        token_index = self.token_index
        self.queues: List[Deque[int]] = [
            deque(sorted(token_index[token] for token in initial[node]))
            for node in self.nodes
        ]

    def commit(self, round_index: int) -> Tuple[int, List[int]]:
        token_of = [-1] * self.n
        senders = 0
        for index, queue in enumerate(self.queues):
            if queue:
                token_of[index] = queue.popleft()
                senders |= 1 << index
        return senders, token_of

    def commit_payloads(self, commitment) -> Dict[NodeId, Optional[Payload]]:
        senders, token_of = commitment
        tokens = self.tokens
        return {
            node: TokenMessage(tokens[token_of[index]]) if (senders >> index) & 1 else None
            for index, node in enumerate(self.nodes)
        }

    def deliver(self, round_index: int, commitment) -> None:
        senders, token_of = commitment
        observe = self.kernel.observe_messages
        if not senders:
            if observe:
                self.store_sent_records([])
            return
        broadcasters = bit_indices(senders)
        self.accounting.count_bulk(_KIND_TOKEN, len(broadcasters))
        per_node = self.per_node
        for index in broadcasters:
            per_node[index] += 1
        if observe:
            nodes = self.nodes
            tokens = self.tokens
            self.store_sent_records(
                [
                    SentRecord(
                        sender=nodes[index],
                        receiver=None,
                        payload=TokenMessage(tokens[token_of[index]]),
                    )
                    for index in broadcasters
                ]
            )
        adj = self.adj
        queues = self.queues
        learn_index = self.state.learn_index
        # Delivery order mirrors the exchange program: receivers ascending,
        # and within a receiver the senders ascending.
        for receiver in range(self.n):
            incoming = adj[receiver] & senders
            while incoming:
                low = incoming & -incoming
                sender = low.bit_length() - 1
                incoming ^= low
                token_bit = token_of[sender]
                if learn_index(receiver, token_bit):
                    queues[receiver].append(token_bit)

    def is_quiescent(self) -> bool:
        return all(not queue for queue in self.queues)


class _OneShotFloodingBatchProgram(BatchRoundProgram):
    """One-shot flooding across lanes: array-backed queues, bulk delivery.

    The per-node FIFO queues of every lane live in one ``(lanes, n, k)``
    ring-free buffer (each node enqueues each token at most once, so ``k``
    slots always suffice) with ``(lanes, n)`` head/tail cursors.  A round's
    commit is then pure array work: every node whose cursor window is
    non-empty broadcasts its head token, and the pop is one masked cursor
    increment.  Delivery builds a one-hot ``(lanes, n, k)`` sender cube and
    one batched matmul against the dense per-lane adjacency yields, for all
    lanes at once, which (receiver, token) pairs were reached; learners are
    the reached pairs not yet in the knowledge cube.  Only the actual
    learnings (at most ``n·k`` per lane over the whole run) drop back to
    python — ordered receiver-ascending and, within a receiver, by the
    lowest adjacent sender that carried the token, which is exactly the
    order the serial fast program's ascending-bit delivery loop learns in.
    """

    needs_dense_adjacency = True

    def setup(self) -> None:
        np = self.np
        initial = self.kernel.problem.initial_knowledge
        token_index = self.kernel.token_index
        lanes = self.kernel.lanes
        self.queue_buf = np.zeros((lanes, self.n, self.k), dtype=np.int64)
        self.qhead = np.zeros((lanes, self.n), dtype=np.int64)
        self.qtail = np.zeros((lanes, self.n), dtype=np.int64)
        for index, node in enumerate(self.nodes):
            bits = sorted(token_index[token] for token in initial[node])
            if bits:
                self.queue_buf[:, index, : len(bits)] = bits
                self.qtail[:, index] = len(bits)
        # Once every lane's knowledge cube is full no broadcast can teach
        # anything — the remaining rounds only drain queues and count, so
        # the matmul is skipped for the rest of the run.
        self._saturated = False

    def commit(self, round_index: int) -> Tuple[object, object]:
        np = self.np
        senders = (self.qhead < self.qtail) & self.kernel.active_lanes[:, None]
        # Head tokens for every node at once; the clip keeps empty-queue
        # reads in bounds — they are masked out by ``senders`` anyway.
        heads = np.minimum(self.qhead, self.k - 1)
        token_of = np.take_along_axis(self.queue_buf, heads[:, :, None], axis=2)[:, :, 0]
        self.qhead += senders
        return senders, token_of

    def deliver(self, round_index: int, commitment) -> None:
        np = self.np
        senders, token_of = commitment
        counts = senders.sum(axis=1)
        self.accounting.count_lanes(_KIND_TOKEN, counts)
        self.accounting.per_node += senders
        if self._saturated or not counts.any():
            return
        lane_ids, sender_ids = np.nonzero(senders)
        sent_tokens = token_of[lane_ids, sender_ids]
        one_hot = np.zeros((self.kernel.lanes, self.n, self.k), dtype=np.float32)
        one_hot[lane_ids, sender_ids, sent_tokens] = 1.0
        reached = np.matmul(self.kernel.dense_adj, one_hot) > 0.5
        learned = reached & ~self.state.know
        if not learned.any():
            self._saturated = bool(
                (self.state.known_counts == self.k).all()
            )
            return
        ll, rr, tt = np.nonzero(learned)
        # Serial learning order within a receiver is sender-ascending, and a
        # token's learn event lands at its *first* delivering sender.  Build
        # per-lane token -> sender-bitmask maps (only for lanes that learn
        # this round) and sort the events by that first sender.
        stages = self.kernel.stages
        token_senders: Dict[int, Dict[int, int]] = {}
        for lane in np.unique(ll).tolist():
            bucket: Dict[int, int] = {}
            row = np.nonzero(senders[lane])[0]
            for sender, token_bit in zip(row.tolist(), token_of[lane, row].tolist()):
                bucket[token_bit] = bucket.get(token_bit, 0) | (1 << sender)
            token_senders[lane] = bucket
        lanes_list = ll.tolist()
        receivers_list = rr.tolist()
        tokens_list = tt.tolist()
        first_sender = np.empty(len(lanes_list), dtype=np.int64)
        for position, (lane, receiver, token_bit) in enumerate(
            zip(lanes_list, receivers_list, tokens_list)
        ):
            incoming = stages[lane].adj[receiver] & token_senders[lane][token_bit]
            first_sender[position] = (incoming & -incoming).bit_length() - 1
        learn = self.state.learn_lane_index
        queue_buf = self.queue_buf
        qtail = self.qtail
        for position in np.lexsort((first_sender, rr, ll)).tolist():
            lane = lanes_list[position]
            receiver = receivers_list[position]
            token_bit = tokens_list[position]
            learn(lane, receiver, token_bit)
            queue_buf[lane, receiver, qtail[lane, receiver]] = token_bit
            qtail[lane, receiver] += 1
        self._saturated = bool((self.state.known_counts == self.k).all())

    def quiescent_lanes(self):
        return (self.qhead >= self.qtail).all(axis=1)
