"""Naive flooding in the local broadcast model.

Section 2 of the paper notes that an ``O(n²)`` amortized message upper bound
per token "is straightforward to obtain by using flooding (each node
broadcasts each token for n rounds)".  :class:`FloodingAlgorithm` implements
this naive algorithm in its phase-by-phase form: the tokens are processed in
a globally known order, and for ``rounds_per_token`` consecutive rounds every
node that knows the current token broadcasts it.  Because every round graph
is connected, at least one new node learns the token per round of its phase,
so ``n - 1`` rounds per token always suffice — even against the strongly
adaptive adversary.

Cost: at most ``n`` broadcasts per node per token, i.e. ``O(n²k)`` messages
in total and ``O(n²)`` amortized per token, matching the lower bound of
Theorem 2.3 up to logarithmic factors.

:class:`OneShotFloodingAlgorithm` is the optimistic variant in which every
node broadcasts every token it knows exactly once (a work queue).  It is much
cheaper on benign dynamic graphs but has no worst-case guarantee against an
adaptive adversary; it is used as a comparison point in the benchmarks.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional, Tuple

from repro.algorithms.base import LocalBroadcastAlgorithm
from repro.core.messages import Payload, TokenMessage
from repro.core.tokens import Token
from repro.utils.ids import NodeId
from repro.utils.validation import require_positive_int


class FloodingAlgorithm(LocalBroadcastAlgorithm):
    """Phase-based naive flooding: token ``i`` is flooded for ``rounds_per_token`` rounds.

    Args:
        rounds_per_token: length of each token's flooding phase.  Defaults to
            ``n`` (the paper's description); ``n - 1`` already guarantees
            dissemination on always-connected dynamic graphs.
    """

    name = "flooding"

    def __init__(self, rounds_per_token: Optional[int] = None):
        super().__init__()
        if rounds_per_token is not None:
            require_positive_int(rounds_per_token, "rounds_per_token")
        self._rounds_per_token = rounds_per_token
        self._token_order: Tuple[Token, ...] = ()
        self._phase_length = 0

    def on_setup(self) -> None:
        self._token_order = tuple(sorted(self.problem.tokens))
        self._phase_length = self.phase_length_for(self.problem.num_nodes)

    @property
    def configured_rounds_per_token(self) -> Optional[int]:
        """The explicit phase length, or ``None`` for the n-round default."""
        return self._rounds_per_token

    def phase_length_for(self, num_nodes: int) -> int:
        """The phase length used on an ``num_nodes``-node problem.

        Exposed so alternative execution backends reproduce the exact
        phase schedule without going through :meth:`setup`.
        """
        if self._rounds_per_token is not None:
            return self._rounds_per_token
        return max(1, num_nodes)

    def current_token(self, round_index: int) -> Optional[Token]:
        """The token being flooded in the given round (None once all phases ended)."""
        phase = (round_index - 1) // self._phase_length
        if phase >= len(self._token_order):
            return None
        return self._token_order[phase]

    def select_broadcasts(self, round_index: int) -> Dict[NodeId, Optional[Payload]]:
        token = self.current_token(round_index)
        broadcasts: Dict[NodeId, Optional[Payload]] = {}
        for node in self.nodes:
            if token is not None and self.knows(node, token):
                broadcasts[node] = TokenMessage(token)
            else:
                broadcasts[node] = None
        return broadcasts

    def is_quiescent(self) -> bool:
        return False


class OneShotFloodingAlgorithm(LocalBroadcastAlgorithm):
    """Optimistic flooding: every node broadcasts every token it knows exactly once.

    Each node keeps a FIFO queue of tokens it has not broadcast yet (initial
    tokens plus every newly learned token) and broadcasts the head of the
    queue each round.  The total number of broadcasts is at most ``nk`` (each
    node broadcasts each token at most once), i.e. ``O(n)`` amortized, but the
    algorithm can fail to disseminate against worst-case dynamic graphs — it
    exists as an optimistic baseline for benign schedules.
    """

    name = "one-shot-flooding"

    def __init__(self) -> None:
        super().__init__()
        self._queues: Dict[NodeId, Deque[Token]] = {}

    def on_setup(self) -> None:
        self._queues = {
            node: deque(sorted(self.problem.initial_knowledge[node])) for node in self.nodes
        }

    def on_learn(self, node: NodeId, token: Token) -> None:
        self._queues[node].append(token)

    def select_broadcasts(self, round_index: int) -> Dict[NodeId, Optional[Payload]]:
        broadcasts: Dict[NodeId, Optional[Payload]] = {}
        for node in self.nodes:
            queue = self._queues[node]
            broadcasts[node] = TokenMessage(queue.popleft()) if queue else None
        return broadcasts

    def is_quiescent(self) -> bool:
        return all(not queue for queue in self._queues.values())
