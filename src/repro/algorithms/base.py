"""Base classes for token-forwarding algorithms.

A token-forwarding algorithm (Section 1) may store, copy and forward tokens
but never manipulate them.  The base classes here manage the per-node token
knowledge — delegated to a pluggable
:class:`~repro.core.state.KnowledgeState`, so any registered algorithm runs
unchanged on the dict-of-sets reference representation *or* on the integer
bitmasks of the fast backends — the buffering of token-learning events for
the round kernel, and, for unicast algorithms, the per-edge history
(insertion rounds, last token received) that the unicast algorithms of
Section 3 use to classify edges as *new*, *contributive* or *idle*.
"""

from __future__ import annotations

import abc
import random
from typing import Callable, Dict, FrozenSet, Iterable, List, Mapping, Optional, Tuple

from repro.core.comm import CommunicationModel
from repro.core.messages import Payload, ReceivedMessage, TokenMessage
from repro.core.problem import DisseminationProblem
from repro.core.state import KnowledgeState, MappingKnowledgeState
from repro.core.tokens import Token
from repro.utils.ids import Edge, NodeId, normalize_edge
from repro.utils.validation import SimulationError


class TokenForwardingAlgorithm(abc.ABC):
    """Common state management for all algorithms.

    Subclasses implement either the local broadcast or the unicast interface
    (see :class:`LocalBroadcastAlgorithm` / :class:`UnicastAlgorithm`).  The
    round kernel interacts with algorithms exclusively through these
    interfaces.  All knowledge reads and writes route through the bound
    :class:`~repro.core.state.KnowledgeState` — the per-round knowledge
    delta an algorithm produces is therefore representation-independent.
    """

    #: Human-readable algorithm name used in results and reports.
    name: str = "token-forwarding"
    #: Communication model the algorithm operates in.
    communication_model: CommunicationModel

    def __init__(self) -> None:
        self._problem: Optional[DisseminationProblem] = None
        self._rng: Optional[random.Random] = None
        self._state: Optional[KnowledgeState] = None

    # -- lifecycle -------------------------------------------------------

    def setup(
        self,
        problem: DisseminationProblem,
        rng: random.Random,
        state: Optional[KnowledgeState] = None,
    ) -> None:
        """Initialize per-node state from the problem's initial distribution.

        ``state`` binds an externally owned knowledge representation (the
        round kernel passes its own); when omitted, a fresh
        :class:`~repro.core.state.MappingKnowledgeState` is created.
        """
        self._problem = problem
        self._rng = rng
        self._state = state if state is not None else MappingKnowledgeState(problem)
        self.on_setup()

    def on_setup(self) -> None:
        """Subclass hook called at the end of :meth:`setup`."""

    # -- problem accessors -----------------------------------------------

    @property
    def problem(self) -> DisseminationProblem:
        """The problem instance this algorithm was set up with."""
        if self._problem is None:
            raise SimulationError("the algorithm has not been set up with a problem yet")
        return self._problem

    @property
    def rng(self) -> random.Random:
        """The algorithm's private random generator."""
        if self._rng is None:
            raise SimulationError("the algorithm has not been set up with an RNG yet")
        return self._rng

    @property
    def nodes(self) -> Tuple[NodeId, ...]:
        """The node set ``V``."""
        return self.problem.nodes

    @property
    def knowledge_state(self) -> KnowledgeState:
        """The bound knowledge representation."""
        if self._state is None:
            raise SimulationError("the algorithm has not been set up with a problem yet")
        return self._state

    # -- knowledge tracking ----------------------------------------------

    def known_tokens(self, node: NodeId) -> FrozenSet[Token]:
        """The tokens currently known by ``node`` (``K_v(t)``)."""
        return self.knowledge_state.known_tokens(node)

    def knows(self, node: NodeId, token: Token) -> bool:
        """True iff ``node`` already knows ``token``."""
        return self.knowledge_state.knows(node, token)

    def missing_tokens(self, node: NodeId) -> List[Token]:
        """The tokens ``node`` has not yet learned, in sorted order."""
        return self.knowledge_state.missing_tokens(node)

    def is_node_complete(self, node: NodeId) -> bool:
        """True iff ``node`` knows all ``k`` tokens (Definition 3.1)."""
        return self.knowledge_state.is_node_complete(node)

    def all_complete(self) -> bool:
        """True iff every node knows every token (dissemination solved)."""
        return self.knowledge_state.all_complete()

    def learn(self, node: NodeId, token: Token) -> bool:
        """Record that ``node`` received ``token``; True iff it is new to the node."""
        learned = self.knowledge_state.learn(node, token)
        if learned:
            self.on_learn(node, token)
        return learned

    def on_learn(self, node: NodeId, token: Token) -> None:
        """Subclass hook invoked whenever a node learns a new token."""

    def drain_token_learnings(self) -> List[Tuple[NodeId, Token]]:
        """Return (and clear) the token learnings buffered since the last drain."""
        return self.knowledge_state.drain_learnings()

    # -- engine hooks ------------------------------------------------------

    def fast_program_factory(self) -> Optional[Callable[[object], object]]:
        """A native bit-level round program for this algorithm, or ``None``.

        Algorithms with a fast path return a callable ``kernel ->
        FastRoundProgram`` (see :mod:`repro.core.rounds`); the bitset backend
        runs it instead of the generic exchange program.  Implementations
        must guard on their exact type — a subclass may override behaviour
        the program does not model, and then must fall back to the generic
        path (return ``None``), which drives the subclass's real methods.
        """
        return None

    def batch_program_factory(self) -> Optional[Callable[[object], object]]:
        """A vectorized many-repetition round program, or ``None``.

        Algorithms whose round bodies are data-parallel across independently
        seeded repetitions return a callable ``batch_kernel ->
        BatchRoundProgram`` (see :mod:`repro.batch.programs`); the batch
        backend steps all repetitions of a scenario in lockstep with it.
        The same exact-type guard as :meth:`fast_program_factory` applies.
        Algorithms without a batch program still run under the batch
        backend — each repetition falls back to the bitset kernel.
        """
        return None

    def is_quiescent(self) -> bool:
        """True if the algorithm will not send any further messages.

        The engine stops an execution as soon as the dissemination problem is
        solved; quiescence is only consulted for algorithms that may finish
        sending before completing (used by tests and diagnostics).
        """
        return False

    def observation_extra(self) -> Dict[str, object]:
        """Additional state exposed to strongly adaptive adversaries."""
        return {}

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(name={self.name!r})"


class LocalBroadcastAlgorithm(TokenForwardingAlgorithm):
    """Base class for algorithms in the local broadcast model.

    Per round the engine calls :meth:`select_broadcasts` *before* the round
    graph is known (nodes commit to their broadcast without neighbourhood
    information, as in the lower-bound model of Section 2), then delivers all
    broadcasts via :meth:`receive_broadcasts`.
    """

    communication_model = CommunicationModel.LOCAL_BROADCAST

    @abc.abstractmethod
    def select_broadcasts(self, round_index: int) -> Dict[NodeId, Optional[Payload]]:
        """Return the payload each node locally broadcasts this round (or ``None``)."""

    def receive_broadcasts(
        self,
        round_index: int,
        inbox: Mapping[NodeId, List[ReceivedMessage]],
        neighbors: Mapping[NodeId, FrozenSet[NodeId]],
    ) -> None:
        """Deliver broadcasts; the default learns every received token."""
        for node, messages in inbox.items():
            for message in messages:
                if isinstance(message.payload, TokenMessage):
                    self.learn(node, message.payload.token)


class UnicastAlgorithm(TokenForwardingAlgorithm):
    """Base class for algorithms in the unicast model.

    In the unicast model each node learns the IDs of its neighbours at the
    start of the round (Section 1.3).  The engine therefore calls, in order,

    1. :meth:`on_topology` with the round's adjacency and edge changes,
    2. :meth:`select_messages` to collect the messages to send,
    3. :meth:`receive_messages` to deliver them.

    The base class maintains per-edge history used by the algorithms of
    Section 3 to classify adjacent edges:

    * an edge is **new** in round ``r`` if it was inserted in round ``r`` or
      ``r - 1``;
    * it is **contributive** if it is not new but a new token was received
      over it since its last insertion;
    * otherwise it is **idle**.
    """

    communication_model = CommunicationModel.UNICAST

    def __init__(self) -> None:
        super().__init__()
        self._current_round = 0
        self._current_neighbors: Dict[NodeId, FrozenSet[NodeId]] = {}
        self._previous_neighbors: Dict[NodeId, FrozenSet[NodeId]] = {}
        self._edge_last_inserted: Dict[Edge, int] = {}
        self._edge_last_token_round: Dict[Edge, int] = {}

    # -- topology tracking -------------------------------------------------

    def on_topology(
        self,
        round_index: int,
        neighbors: Mapping[NodeId, FrozenSet[NodeId]],
        inserted_edges: Iterable[Edge],
        removed_edges: Iterable[Edge],
    ) -> None:
        """Engine callback: the adversary fixed the round graph.

        Subclasses overriding this hook must call ``super().on_topology`` to
        keep the edge history consistent.
        """
        self._current_round = round_index
        self._previous_neighbors = self._current_neighbors
        self._current_neighbors = dict(neighbors)
        for edge in inserted_edges:
            canonical = normalize_edge(*edge)
            self._edge_last_inserted[canonical] = round_index
            # A reinserted edge starts a fresh history: any token received on
            # a previous incarnation no longer makes it contributive.
            self._edge_last_token_round.pop(canonical, None)

    def neighbors_of(self, node: NodeId) -> FrozenSet[NodeId]:
        """The current-round neighbourhood of ``node``."""
        return self._current_neighbors.get(node, frozenset())

    def previous_neighbors_of(self, node: NodeId) -> FrozenSet[NodeId]:
        """The neighbourhood of ``node`` in the previous round."""
        return self._previous_neighbors.get(node, frozenset())

    def edge_inserted_round(self, node: NodeId, neighbor: NodeId) -> int:
        """The round in which the edge ``{node, neighbor}`` was last inserted."""
        return self._edge_last_inserted.get(normalize_edge(node, neighbor), 0)

    def record_token_over_edge(self, node: NodeId, neighbor: NodeId, round_index: int) -> None:
        """Record that a new token was received over ``{node, neighbor}``."""
        self._edge_last_token_round[normalize_edge(node, neighbor)] = round_index

    def is_new_edge(self, node: NodeId, neighbor: NodeId, round_index: int) -> bool:
        """True iff the edge was inserted in round ``round_index`` or ``round_index - 1``."""
        inserted = self.edge_inserted_round(node, neighbor)
        return inserted >= round_index - 1

    def is_contributive_edge(self, node: NodeId, neighbor: NodeId, round_index: int) -> bool:
        """True iff the edge is not new but carried a new token since its last insertion."""
        if self.is_new_edge(node, neighbor, round_index):
            return False
        canonical = normalize_edge(node, neighbor)
        inserted = self._edge_last_inserted.get(canonical, 0)
        token_round = self._edge_last_token_round.get(canonical)
        return token_round is not None and token_round >= inserted

    def is_idle_edge(self, node: NodeId, neighbor: NodeId, round_index: int) -> bool:
        """True iff the edge is neither new nor contributive."""
        return not self.is_new_edge(node, neighbor, round_index) and not self.is_contributive_edge(
            node, neighbor, round_index
        )

    # -- message interface -------------------------------------------------

    @abc.abstractmethod
    def select_messages(
        self, round_index: int, neighbors: Mapping[NodeId, FrozenSet[NodeId]]
    ) -> Dict[NodeId, Dict[NodeId, List[Payload]]]:
        """Return, for each sender, the payloads addressed to each neighbour."""

    def receive_messages(
        self, round_index: int, inbox: Mapping[NodeId, List[ReceivedMessage]]
    ) -> None:
        """Deliver unicast messages; the default learns every received token."""
        for node, messages in inbox.items():
            for message in messages:
                if isinstance(message.payload, TokenMessage):
                    learned = self.learn(node, message.payload.token)
                    if learned:
                        self.record_token_over_edge(node, message.sender, round_index)
