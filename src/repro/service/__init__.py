"""repro.service — a long-running experiment daemon with store-backed dedup.

The serving layer turns the lazy Experiment pipeline into a shared,
long-lived process: ``repro serve`` hosts an :mod:`asyncio` job queue over
a line-delimited JSON protocol (UNIX socket or TCP — stdlib only), expands
each submission to an :class:`~repro.api.ExperimentPlan`, coalesces
duplicate pending cells **across jobs**, fans work out to a
multiprocessing pool, streams :mod:`repro.obs.events` progress frames back
to subscribed clients in plan order and persists every completed record to
the shared :class:`~repro.results.store.RunStore` the moment it lands.

Layers::

    protocol.py   frame encode/decode + typed protocol errors
    scheduler.py  job queue, cross-job execution coalescing, persistence
    workers.py    process/thread pool executing cells off the event loop
    server.py     asyncio socket server, connection handling, drain logic
    client.py     blocking client used by the repro submit/status/... CLI
"""

from repro.service.client import ServiceClient, connect_with_retry
from repro.service.protocol import (
    PROTOCOL_VERSION,
    ProtocolError,
    decode_frame,
    encode_frame,
)
from repro.service.scheduler import Job, Scheduler
from repro.service.server import ExperimentServer
from repro.service.workers import WorkerPool

__all__ = [
    "ExperimentServer",
    "Job",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "Scheduler",
    "ServiceClient",
    "WorkerPool",
    "connect_with_retry",
    "decode_frame",
    "encode_frame",
]
