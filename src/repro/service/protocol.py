"""The wire protocol: one JSON object per line, both directions.

Requests are single frames carrying an ``"op"`` key::

    {"op": "ping"}
    {"op": "submit", "specs": [<spec dict>, ...], "watch": true}
    {"op": "watch", "job": "job-0001"}
    {"op": "status"}                      # or {"op": "status", "job": ...}
    {"op": "results", "job": "job-0001"}
    {"op": "shutdown"}

Responses carry ``"ok"``: ``{"ok": true, "op": ..., ...}`` on success or
``{"ok": false, "error": {"kind": ..., "message": ...}}`` on failure.
Error kinds are ``protocol`` (malformed frame), ``configuration`` (valid
frame, invalid content — e.g. an unknown algorithm), ``unknown-job``,
``shutting-down`` and ``internal``.  Errors never close the connection;
the client may keep sending frames.

A watched job additionally streams ``{"ok": true, "op": "event", "job":
..., "data": {<event_to_dict form>}}`` frames — the exact serialization of
:mod:`repro.obs.events` — in plan order, terminated by one
``{"ok": true, "op": "job-finished", "job": ..., "state": "done"|"failed"}``.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Union

from repro.utils.validation import ReproError

__all__ = [
    "MAX_FRAME_BYTES",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "decode_frame",
    "encode_frame",
    "error_frame",
    "ok_frame",
]

PROTOCOL_VERSION = 1

#: StreamReader line limit: a submit frame carries a whole spec batch.
MAX_FRAME_BYTES = 16 * 1024 * 1024

#: The error kinds a server may put in an error frame.
ERROR_KINDS = ("protocol", "configuration", "unknown-job", "shutting-down", "internal")


class ProtocolError(ReproError):
    """A frame that does not parse as a protocol object."""


def encode_frame(payload: Dict[str, Any]) -> bytes:
    """Serialize one frame: compact JSON plus the line terminator."""
    return (json.dumps(payload, separators=(",", ":")) + "\n").encode("utf-8")


def decode_frame(line: Union[str, bytes]) -> Dict[str, Any]:
    """Parse one frame, raising :class:`ProtocolError` on malformed input."""
    if isinstance(line, bytes):
        try:
            line = line.decode("utf-8")
        except UnicodeDecodeError as error:
            raise ProtocolError(f"frame is not valid UTF-8: {error}") from error
    try:
        payload = json.loads(line)
    except json.JSONDecodeError as error:
        raise ProtocolError(f"frame is not valid JSON: {error}") from error
    if not isinstance(payload, dict):
        raise ProtocolError(
            f"frame must be a JSON object, got {type(payload).__name__}"
        )
    return payload


def ok_frame(op: str, **fields: Any) -> Dict[str, Any]:
    """A success response frame."""
    frame: Dict[str, Any] = {"ok": True, "op": op}
    frame.update(fields)
    return frame


def error_frame(kind: str, message: str) -> Dict[str, Any]:
    """A typed error response frame (connection stays open)."""
    if kind not in ERROR_KINDS:
        raise ValueError(f"unknown error kind {kind!r}")
    return {"ok": False, "error": {"kind": kind, "message": message}}
