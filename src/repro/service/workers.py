"""The daemon's worker pool: cells execute off the event loop.

``workers >= 1`` uses a :class:`~concurrent.futures.ProcessPoolExecutor`
so simulations run on real cores; ``workers == 0`` degrades to a
single-thread :class:`~concurrent.futures.ThreadPoolExecutor`, which
keeps execution in-process — the mode the test suite uses to exercise the
full submit/coalesce/persist path without forking.

Cells travel as the same picklable payload tuples the parallel
:class:`~repro.api.RunSet` path ships to ``multiprocessing.Pool``:
``(spec_json, repetition, extension_modules, collect_timings)`` executed
by :func:`repro.api.execute_cell_payload`, and whole batch groups as
``(spec_json, repetitions, extension_modules, collect_timings)`` executed
by :func:`repro.api.execute_group_payload` — one vectorized batch-kernel
pass per worker task.
"""

from __future__ import annotations

import asyncio
import multiprocessing
import os
from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor
from typing import Any, Dict, List, Tuple

from repro.api import execute_cell_payload, execute_group_payload
from repro.utils.validation import ConfigurationError

__all__ = ["WorkerPool"]

#: (record, meta) as returned by repro.api.execute_cell.
CellOutcome = Tuple[Dict[str, Any], Dict[str, Any]]


class WorkerPool:
    """A thin async facade over a process (or inline thread) executor."""

    def __init__(self, workers: int = 1) -> None:
        if isinstance(workers, bool) or not isinstance(workers, int) or workers < 0:
            raise ConfigurationError(
                f"workers must be a non-negative int, got {workers!r}"
            )
        self.workers = workers
        self._executor: Executor
        if workers == 0:
            self._executor = ThreadPoolExecutor(
                max_workers=1, thread_name_prefix="repro-cell"
            )
        else:
            # spawn, not fork: a forked worker inherits every daemon FD, so
            # it would hold client connections (and the listening socket)
            # open after the daemon dies — a SIGKILLed daemon's clients
            # would never see EOF.  Spawned workers inherit nothing, and
            # forking a threaded asyncio process is hazardous anyway.
            self._executor = ProcessPoolExecutor(
                max_workers=workers,
                mp_context=multiprocessing.get_context("spawn"),
            )

    def warm(self) -> None:
        """Start the worker processes now (blocking).

        The server calls this before binding its socket, so the readiness
        line really means ready and no worker is ever spawned while client
        connections exist.
        """
        if self.workers:
            futures = [self._executor.submit(os.getpid) for _ in range(self.workers)]
            for future in futures:
                future.result()

    async def run(
        self, payload: Tuple[str, int, Tuple[str, ...], bool]
    ) -> CellOutcome:
        """Execute one cell payload on the pool and await its outcome."""
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(
            self._executor, execute_cell_payload, payload
        )

    async def run_group(
        self, payload: Tuple[str, Tuple[int, ...], Tuple[str, ...], bool]
    ) -> List[CellOutcome]:
        """Execute one batch-group payload on the pool and await its outcomes.

        The outcome list is in the payload's repetition order — one
        ``(record, meta)`` per repetition, exactly as if each cell had been
        shipped through :meth:`run` individually.
        """
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(
            self._executor, execute_group_payload, payload
        )

    def shutdown(self, wait: bool = True) -> None:
        """Release the pool (idempotent)."""
        self._executor.shutdown(wait=wait)
