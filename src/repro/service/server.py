"""The asyncio socket server hosting the scheduler.

One :class:`ExperimentServer` owns a :class:`~repro.service.scheduler.
Scheduler` plus a :class:`~repro.service.workers.WorkerPool` and serves
the line protocol on a UNIX socket (default) or a TCP port.  Each
connection is an independent frame loop: malformed frames produce typed
error responses and the connection stays open.

Graceful shutdown — the ``shutdown`` op or SIGTERM/SIGINT — stops
accepting connections and new jobs, drains every accepted job (in-flight
cells finish and persist), then closes remaining connections and exits.
A non-graceful death (``kill -9``) is also safe: records persist as they
land, so a restarted daemon resumes from the persisted prefix.
"""

from __future__ import annotations

import asyncio
import contextlib
import os
import signal
import socket as socket_module
import sys
from typing import Any, Dict, Optional, Sequence, TextIO

from repro.obs.logs import get_logger
from repro.scenarios.spec import ScenarioSpec
from repro.service.protocol import (
    MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    ProtocolError,
    decode_frame,
    encode_frame,
    error_frame,
    ok_frame,
)
from repro.service.scheduler import Job, Scheduler, ShuttingDownError
from repro.service.workers import WorkerPool
from repro.utils.validation import ConfigurationError, ReproError

__all__ = ["ExperimentServer"]

logger = get_logger(__name__)

DEFAULT_SOCKET = ".repro-service.sock"


class _UnknownJobError(ReproError):
    """A frame referenced a job id the scheduler does not know."""


class ExperimentServer:
    """The daemon: socket frontend + scheduler + worker pool."""

    def __init__(
        self,
        store: str,
        *,
        workers: int = 1,
        socket: Optional[str] = None,
        host: Optional[str] = None,
        port: Optional[int] = None,
        extensions: Sequence[str] = (),
        collect_timings: bool = False,
        stream: Optional[TextIO] = None,
    ) -> None:
        if host is None and socket is None:
            socket = DEFAULT_SOCKET
        if host is not None and socket is not None:
            raise ConfigurationError("serve on a UNIX socket or a TCP port, not both")
        self.store = str(store)
        self.workers = workers
        self.socket_path = socket
        self.host = host
        self.port = port or 0
        self.extensions = tuple(extensions)
        self.collect_timings = collect_timings
        self._stream = stream if stream is not None else sys.stdout
        self.scheduler: Optional[Scheduler] = None
        self._shutdown = None  # type: Optional[asyncio.Event]
        self._connections: set = set()

    # -- lifecycle ---------------------------------------------------------

    def run(self) -> int:
        """Serve until shutdown; the blocking entry point behind ``repro serve``."""
        return asyncio.run(self.serve())

    async def serve(self) -> int:
        loop = asyncio.get_running_loop()
        self._shutdown = asyncio.Event()
        pool = WorkerPool(self.workers)
        # Spawn the workers before the socket exists: no client connects
        # until the pool (and the readiness line below) is actually ready.
        pool.warm()
        self.scheduler = Scheduler(
            self.store,
            pool,
            extensions=self.extensions,
            collect_timings=self.collect_timings,
        )
        if self.socket_path is not None:
            self._remove_stale_socket(self.socket_path)
            server = await asyncio.start_unix_server(
                self._handle, path=self.socket_path, limit=MAX_FRAME_BYTES
            )
            address = self.socket_path
        else:
            server = await asyncio.start_server(
                self._handle, host=self.host, port=self.port, limit=MAX_FRAME_BYTES
            )
            bound = server.sockets[0].getsockname()
            self.port = bound[1]
            address = f"{bound[0]}:{bound[1]}"
        # Signal handlers only install on the main thread; embedded servers
        # (tests run one on a background thread) rely on the shutdown op.
        for signum in (signal.SIGTERM, signal.SIGINT):
            with contextlib.suppress(NotImplementedError, RuntimeError, ValueError):
                loop.add_signal_handler(signum, self._shutdown.set)
        # The readiness line: tests and wrapper scripts wait for it.
        print(f"repro service listening on {address}", file=self._stream, flush=True)
        try:
            await self._shutdown.wait()
            server.close()
            await server.wait_closed()
            await self.scheduler.drain()
        finally:
            pool.shutdown()
            for task in list(self._connections):
                task.cancel()
            if self._connections:
                await asyncio.gather(*self._connections, return_exceptions=True)
            if self.socket_path is not None:
                with contextlib.suppress(OSError):
                    os.unlink(self.socket_path)
        print("repro service drained, exiting", file=self._stream, flush=True)
        return 0

    @staticmethod
    def _remove_stale_socket(path: str) -> None:
        """Unlink a socket file no live daemon is listening on."""
        if not os.path.exists(path):
            return
        probe = socket_module.socket(socket_module.AF_UNIX, socket_module.SOCK_STREAM)
        try:
            probe.settimeout(0.25)
            probe.connect(path)
        except OSError:
            os.unlink(path)  # nobody home: a previous daemon died hard
        else:
            raise ConfigurationError(
                f"another repro service is already listening on {path}"
            )
        finally:
            probe.close()

    # -- connection handling ----------------------------------------------

    async def _handle(
        self, reader: "asyncio.StreamReader", writer: "asyncio.StreamWriter"
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._connections.add(task)
        try:
            await self._frame_loop(reader, writer)
        except (
            asyncio.CancelledError,
            ConnectionResetError,
            BrokenPipeError,
        ):
            pass
        finally:
            if task is not None:
                self._connections.discard(task)
            with contextlib.suppress(OSError):
                writer.close()

    async def _frame_loop(
        self, reader: "asyncio.StreamReader", writer: "asyncio.StreamWriter"
    ) -> None:
        while True:
            try:
                line = await reader.readline()
            except (asyncio.LimitOverrunError, ValueError):
                # An overlong frame leaves the stream mid-line; the only
                # safe recovery is to report and close this connection.
                await self._send(
                    writer, error_frame("protocol", "frame exceeds the size limit")
                )
                return
            if not line:
                return  # EOF: client went away
            if not line.strip():
                continue
            try:
                frame = decode_frame(line)
                await self._dispatch(frame, writer)
            except ProtocolError as error:
                await self._send(writer, error_frame("protocol", str(error)))
            except _UnknownJobError as error:
                await self._send(writer, error_frame("unknown-job", str(error)))
            except ShuttingDownError as error:
                await self._send(writer, error_frame("shutting-down", str(error)))
            except ReproError as error:
                await self._send(writer, error_frame("configuration", str(error)))
            except Exception as error:  # keep the daemon alive
                logger.error("internal error handling frame: %s", error)
                await self._send(
                    writer,
                    error_frame("internal", f"{type(error).__name__}: {error}"),
                )

    async def _send(self, writer: "asyncio.StreamWriter", frame: Dict[str, Any]) -> None:
        writer.write(encode_frame(frame))
        await writer.drain()

    # -- ops ---------------------------------------------------------------

    async def _dispatch(
        self, frame: Dict[str, Any], writer: "asyncio.StreamWriter"
    ) -> None:
        scheduler = self.scheduler
        assert scheduler is not None
        op = frame.get("op")
        if op == "ping":
            await self._send(
                writer,
                ok_frame(
                    "ping",
                    version=PROTOCOL_VERSION,
                    store=self.store,
                    workers=self.workers,
                    jobs=len(scheduler.jobs),
                    draining=scheduler.draining,
                ),
            )
        elif op == "submit":
            await self._op_submit(frame, writer)
        elif op == "watch":
            job = self._job_from(frame, scheduler)
            await self._send(writer, ok_frame("watch", job=job.id))
            await self._stream_job(writer, job)
        elif op == "status":
            if "job" in frame:
                job = self._job_from(frame, scheduler)
                await self._send(writer, ok_frame("status", jobs=[job.describe()]))
            else:
                await self._send(
                    writer, ok_frame("status", jobs=scheduler.describe())
                )
        elif op == "results":
            job = self._job_from(frame, scheduler)
            if job.state != "done":
                raise ConfigurationError(
                    f"job {job.id} has no results yet (state: {job.state}"
                    + (f", error: {job.error}" if job.error else "")
                    + ")"
                )
            await self._send(
                writer, ok_frame("results", job=job.id, records=job.records)
            )
        elif op == "shutdown":
            scheduler.draining = True  # reject new jobs from this moment
            await self._send(
                writer,
                ok_frame(
                    "shutdown",
                    draining=sum(
                        1 for job in scheduler.jobs.values() if not job.finished
                    ),
                ),
            )
            assert self._shutdown is not None
            self._shutdown.set()
        else:
            raise ProtocolError(f"unknown op {op!r}")

    async def _op_submit(
        self, frame: Dict[str, Any], writer: "asyncio.StreamWriter"
    ) -> None:
        scheduler = self.scheduler
        assert scheduler is not None
        raw_specs = frame.get("specs")
        if not isinstance(raw_specs, list) or not raw_specs:
            raise ProtocolError("submit needs a non-empty 'specs' list")
        specs = []
        for raw in raw_specs:
            if not isinstance(raw, dict):
                raise ProtocolError("each spec must be a JSON object")
            try:
                specs.append(ScenarioSpec.from_dict(raw))
            except ReproError:
                raise  # typed: reported as a configuration error
            except (TypeError, ValueError, KeyError) as error:
                raise ProtocolError(f"invalid spec: {error}") from error
        job = scheduler.submit(specs)
        counts = job.plan.describe()
        await self._send(
            writer,
            ok_frame(
                "submit",
                job=job.id,
                cells=counts["cells"],
                pending=counts["pending"],
                cached=counts["cached"],
                scenarios=counts["scenarios"],
            ),
        )
        if frame.get("watch"):
            await self._stream_job(writer, job)

    @staticmethod
    def _job_from(frame: Dict[str, Any], scheduler: Scheduler) -> Job:
        job_id = frame.get("job")
        if not isinstance(job_id, str) or not job_id:
            raise ProtocolError("this op needs a 'job' id")
        job = scheduler.get(job_id)
        if job is None:
            raise _UnknownJobError(f"unknown job {job_id!r}")
        return job

    async def _stream_job(
        self, writer: "asyncio.StreamWriter", job: Job, start: int = 0
    ) -> None:
        """Replay a job's event buffer from ``start``, then follow it live."""
        index = start
        while True:
            async with job.condition:
                await job.condition.wait_for(
                    lambda: len(job.events) > index or job.finished
                )
            while index < len(job.events):
                writer.write(
                    encode_frame(
                        ok_frame("event", job=job.id, data=job.events[index])
                    )
                )
                index += 1
            await writer.drain()
            if job.finished and index >= len(job.events):
                break
        await self._send(
            writer,
            ok_frame("job-finished", job=job.id, state=job.state, error=job.error),
        )
