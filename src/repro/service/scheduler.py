"""The daemon's job queue: plans, cross-job coalescing, persistence.

A submission becomes a :class:`Job`: the spec batch is expanded through
:meth:`repro.api.Experiment.plan` against the shared store (so cells whose
records already exist stream back as ``CellCached`` without executing),
and every *pending* cell is claimed through one process-wide execution
table keyed by ``(scenario_key, repetition, max_rounds)`` — the same
identity the store dedups on.  The first job to claim a key owns the
physical execution; later jobs (other clients submitting overlapping
grids while it is still in flight) attach to the same
:class:`asyncio.Future` and share the result, so duplicate work is
coalesced *across jobs*, not just against the store.

Completed records persist to the :class:`~repro.results.store.RunStore`
the moment they land — persist, then resolve, then un-claim, all without
yielding the event loop — so a ``kill -9`` at any point loses at most the
cells still in flight, and a restarted daemon's plans resume from the
persisted prefix with zero duplicate executions.

Each job buffers its progress events (``event_to_dict`` form) in plan
order; watchers replay the buffer from any index and block on the job's
condition for more, which is how the server streams live and late
subscribers catch up identically.
"""

from __future__ import annotations

import asyncio
import itertools
import time
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.api import Experiment, ExperimentPlan, PlanCell, vectorizable_group
from repro.obs.events import (
    CellCached,
    CellCompleted,
    CellStarted,
    ProgressEvent,
    RunFinished,
    event_to_dict,
)
from repro.obs.logs import get_logger
from repro.results.store import RunStore
from repro.scenarios.spec import ScenarioSpec
from repro.service.workers import WorkerPool
from repro.utils.validation import ReproError

__all__ = ["ExecutionKey", "Job", "Scheduler", "ShuttingDownError"]

logger = get_logger(__name__)

#: The coalescing identity of one physical execution.  scenario_key embeds
#: everything that changes the result except max_rounds (an execution
#: field that caps the simulation), so the cap joins the key explicitly —
#: mirroring the plan-phase cache-invalidation rule.
ExecutionKey = Tuple[str, int, Optional[int]]


class ShuttingDownError(ReproError):
    """Raised for submissions that arrive while the daemon is draining."""


class _Execution:
    """One in-flight physical run, shared by every job that claimed it."""

    __slots__ = ("key", "owner", "future")

    def __init__(self, key: ExecutionKey, owner: str, future: "asyncio.Future") -> None:
        self.key = key
        self.owner = owner
        self.future = future


class Job:
    """One submission: its plan, its event buffer, its final records."""

    def __init__(self, job_id: str, plan: ExperimentPlan) -> None:
        self.id = job_id
        self.plan = plan
        self.state = "running"  # running | done | failed
        self.error: Optional[str] = None
        #: Progress events in plan order, already in wire (dict) form.
        self.events: List[Dict[str, Any]] = []
        #: Records in plan order (complete only once state == "done").
        self.records: List[Dict[str, Any]] = []
        self.executed = 0
        self.coalesced = 0
        self.condition = asyncio.Condition()
        self.task: Optional["asyncio.Task"] = None

    @property
    def finished(self) -> bool:
        return self.state in ("done", "failed")

    def describe(self) -> Dict[str, Any]:
        """The status frame payload for this job."""
        counts = self.plan.describe()
        return {
            "job": self.id,
            "state": self.state,
            "error": self.error,
            "cells": counts["cells"],
            "cached": counts["cached"],
            "pending": counts["pending"],
            "executed": self.executed,
            "coalesced": self.coalesced,
            "events": len(self.events),
        }


class Scheduler:
    """The event-loop-side core: submit, coalesce, execute, persist."""

    def __init__(
        self,
        store_path: str,
        pool: WorkerPool,
        *,
        extensions: Sequence[str] = (),
        collect_timings: bool = False,
    ) -> None:
        self.store_path = str(store_path)
        # The daemon's writer handle.  Plans build their own read-side
        # RunStore instances from the path, which re-read the manifest —
        # saved here after every record — so each new plan sees every
        # record persisted so far.
        self.store = RunStore(store_path)
        self.pool = pool
        self.extensions = tuple(extensions)
        self.collect_timings = collect_timings
        self.draining = False
        self.jobs: Dict[str, Job] = {}
        self._executions: Dict[ExecutionKey, _Execution] = {}
        self._next_job = 1
        self.warehouse = self._open_warehouse()

    def _open_warehouse(self) -> Optional[Any]:
        """Create/sync the warehouse index for the service store and attach
        it to the writer, so every completed cell lands in sqlite as it
        persists and consolidated queries over the store are always warm.
        A long-running daemon is exactly the writer the index is for, so
        (unlike `analyze`) the service *creates* the index when missing.
        Any failure is non-fatal: the store works fine without it.
        """
        try:
            from repro.warehouse import WarehouseIndex, sqlite_available

            if not sqlite_available():
                return None
            index = WarehouseIndex(self.store_path)
            index.sync()
            index.attach(self.store)
            return index
        except ReproError as error:
            logger.warning(
                "warehouse index unavailable for %s (%s); serving without it",
                self.store_path,
                error,
            )
            return None

    # -- submission --------------------------------------------------------

    def submit(self, specs: Sequence[ScenarioSpec]) -> Job:
        """Plan a spec batch and start its job task.  Event-loop only."""
        if self.draining:
            raise ShuttingDownError("the service is shutting down; job rejected")
        plan = Experiment.from_specs(specs).store(self.store_path).plan()
        job = Job(f"job-{self._next_job:04d}", plan)
        self._next_job += 1
        self.jobs[job.id] = job
        claims = self._claim_cells(job, plan)
        job.task = asyncio.get_running_loop().create_task(
            self._run_job(job, claims), name=f"repro-{job.id}"
        )
        return job

    def _claim_cells(
        self, job: Job, plan: ExperimentPlan
    ) -> Dict[int, Tuple["asyncio.Future", bool]]:
        """Claim every pending cell, dispatching vectorizable groups whole.

        Plan order is spec-major, so consecutive grouping recovers each grid
        cell's pending repetitions.  The repetitions of a group that are not
        already claimed by an in-flight execution (a sibling job's cell —
        those coalesce exactly as before) go to the pool as *one* batch
        payload when the scenario vectorizes, and cell by cell otherwise.
        """
        loop = asyncio.get_running_loop()
        claims: Dict[int, Tuple["asyncio.Future", bool]] = {}
        pending = [
            (index, cell)
            for index, cell in enumerate(plan.cells)
            if not cell.cached
        ]
        for spec, group in itertools.groupby(pending, key=lambda pair: pair[1].spec):
            fresh: List[Tuple[_Execution, PlanCell]] = []
            for index, cell in group:
                key: ExecutionKey = (
                    cell.spec.scenario_key(),
                    cell.repetition,
                    cell.spec.max_rounds,
                )
                execution = self._executions.get(key)
                if execution is not None:
                    claims[index] = (execution.future, False)
                    continue
                execution = _Execution(key, job.id, loop.create_future())
                self._executions[key] = execution
                claims[index] = (execution.future, True)
                fresh.append((execution, cell))
            if not fresh:
                continue
            # Pools predating run_group (third-party stubs) degrade to the
            # per-cell path instead of failing every claimed cell.
            if vectorizable_group(spec, len(fresh)) and hasattr(
                self.pool, "run_group"
            ):
                loop.create_task(self._run_group_execution(spec, fresh))
            else:
                for execution, cell in fresh:
                    loop.create_task(self._run_execution(execution, cell))
        return claims

    async def _run_execution(self, execution: _Execution, cell: PlanCell) -> None:
        """Run one physical cell on the pool, persist, resolve, un-claim.

        The future resolves in-band — ``("ok", record, meta)`` or
        ``("error", message)`` — so a job that stops early never leaves an
        unretrieved exception behind.  Between the pool returning and the
        future resolving there is no ``await``: a submit arriving while
        the record is persisted either still finds this execution in the
        table (and coalesces) or plans after the un-claim and finds the
        record in the store (and is cached).  Either way it never re-runs.
        """
        spec, repetition = cell.spec, cell.repetition
        payload = (spec.to_json(), repetition, self.extensions, self.collect_timings)
        try:
            record, meta = await self.pool.run(payload)
        except Exception as error:  # worker death, unpicklable spec, ...
            logger.error(
                "execution failed: %s repetition %d: %s",
                spec.label, repetition, error,
            )
            self._executions.pop(execution.key, None)
            execution.future.set_result(("error", f"{type(error).__name__}: {error}"))
            return
        # replace=True supersedes stale-schema/stale-cap occupants of the
        # identity; the per-record manifest save is what lets a plan built
        # right after this see the record.
        self.store.add([record], replace=True)
        self._executions.pop(execution.key, None)
        execution.future.set_result(("ok", record, meta))

    async def _run_group_execution(
        self, spec: ScenarioSpec, entries: List[Tuple[_Execution, PlanCell]]
    ) -> None:
        """Run one batch group on the pool, then settle each cell in turn.

        One worker task executes all repetitions of the group as lockstep
        lanes of a single batch kernel; the outcome list comes back in
        repetition order and each cell keeps the exactly-once semantics of
        :meth:`_run_execution` — persist, resolve, un-claim per record, with
        no ``await`` in between.  A group failure fails every claimed cell
        (they shared the one physical execution).
        """
        payload = (
            spec.to_json(),
            tuple(cell.repetition for _, cell in entries),
            self.extensions,
            self.collect_timings,
        )
        try:
            outcomes = await self.pool.run_group(payload)
        except Exception as error:  # worker death, unpicklable spec, ...
            logger.error(
                "batch group execution failed: %s x%d: %s",
                spec.label, len(entries), error,
            )
            message = f"{type(error).__name__}: {error}"
            for execution, _ in entries:
                self._executions.pop(execution.key, None)
                execution.future.set_result(("error", message))
            return
        for (execution, _), (record, meta) in zip(entries, outcomes):
            self.store.add([record], replace=True)
            self._executions.pop(execution.key, None)
            execution.future.set_result(("ok", record, meta))

    # -- the job task ------------------------------------------------------

    async def _run_job(
        self, job: Job, claims: Dict[int, Tuple["asyncio.Future", bool]]
    ) -> None:
        started = time.perf_counter()
        cells = job.plan.cells
        total = len(cells)
        try:
            for index, cell in enumerate(cells):
                if cell.cached:
                    await self._emit(
                        job,
                        CellCached(
                            index=index,
                            total=total,
                            scenario=cell.spec.label,
                            repetition=cell.repetition,
                        ),
                    )
                    job.records.append(cell.cached_record)
                    continue
                future, owned = claims[index]
                if owned:
                    await self._emit(
                        job,
                        CellStarted(
                            index=index,
                            total=total,
                            scenario=cell.spec.label,
                            repetition=cell.repetition,
                            backend=cell.spec.backend,
                        ),
                    )
                outcome = await future
                if outcome[0] == "error":
                    job.error = outcome[1]
                    job.state = "failed"
                    return
                _, record, meta = outcome
                job.records.append(record)
                if owned:
                    job.executed += 1
                    await self._emit(
                        job,
                        CellCompleted(
                            index=index,
                            total=total,
                            scenario=cell.spec.label,
                            repetition=cell.repetition,
                            backend=meta["backend"],
                            seconds=meta["seconds"],
                            completed=record["completed"],
                            rounds=record["rounds"],
                            total_messages=record["total_messages"],
                            stage_seconds=meta["stage_seconds"],
                        ),
                    )
                else:
                    # Coalesced onto a sibling job's execution: this job
                    # paid nothing, which is exactly what CellCached means.
                    job.coalesced += 1
                    await self._emit(
                        job,
                        CellCached(
                            index=index,
                            total=total,
                            scenario=cell.spec.label,
                            repetition=cell.repetition,
                        ),
                    )
            await self._emit(
                job,
                RunFinished(
                    cells=total,
                    executed=job.executed,
                    cached=total - job.executed,
                    seconds=time.perf_counter() - started,
                ),
            )
            job.state = "done"
        except Exception as error:  # defensive: a job must always finish
            logger.error("job %s failed: %s", job.id, error)
            job.error = f"{type(error).__name__}: {error}"
            job.state = "failed"
        finally:
            async with job.condition:
                job.condition.notify_all()

    async def _emit(self, job: Job, event: ProgressEvent) -> None:
        job.events.append(event_to_dict(event))
        async with job.condition:
            job.condition.notify_all()

    # -- queries / lifecycle ----------------------------------------------

    def get(self, job_id: str) -> Optional[Job]:
        return self.jobs.get(job_id)

    def describe(self) -> List[Dict[str, Any]]:
        """Status payloads for every job, oldest first."""
        return [job.describe() for job in self.jobs.values()]

    async def drain(self) -> None:
        """Stop accepting jobs and wait for every accepted job to finish."""
        self.draining = True
        tasks = [job.task for job in self.jobs.values() if job.task is not None]
        if tasks:
            await asyncio.gather(*tasks, return_exceptions=True)
        self.store.flush()
