"""The blocking client behind ``repro submit/status/results/shutdown``.

A :class:`ServiceClient` is one socket connection speaking the line
protocol synchronously: send a frame, read the response.  Event streams
(``submit --watch`` / ``watch``) are consumed through :meth:`events`,
which yields typed :mod:`repro.obs.events` objects — ready to feed
straight into ``ProgressPrinter.render`` — until the job-finished frame.
"""

from __future__ import annotations

import socket
import time
from typing import Any, Dict, Iterator, List, Optional, Sequence, Union

from repro.obs.events import ProgressEvent, event_from_dict
from repro.scenarios.spec import ScenarioSpec
from repro.service.protocol import decode_frame, encode_frame
from repro.service.server import DEFAULT_SOCKET
from repro.utils.validation import ConfigurationError, ReproError

__all__ = ["ServiceClient", "ServiceError", "connect_with_retry"]


class ServiceError(ReproError):
    """The server answered with a typed error frame."""

    def __init__(self, kind: str, message: str) -> None:
        super().__init__(f"{kind}: {message}")
        self.kind = kind


class ServiceClient:
    """One blocking protocol connection to a running daemon."""

    def __init__(
        self,
        *,
        socket_path: Optional[str] = None,
        host: Optional[str] = None,
        port: Optional[int] = None,
        timeout: Optional[float] = None,
    ) -> None:
        if host is not None:
            if port is None:
                raise ConfigurationError("a TCP service address needs both host and port")
            self._sock = socket.create_connection((host, port), timeout=timeout)
        else:
            path = socket_path if socket_path is not None else DEFAULT_SOCKET
            self._sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            self._sock.settimeout(timeout)
            self._sock.connect(path)
        self._file = self._sock.makefile("rwb")
        #: The final job-finished frame of the last consumed event stream.
        self.finished: Optional[Dict[str, Any]] = None

    # -- plumbing ----------------------------------------------------------

    def close(self) -> None:
        try:
            self._file.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()

    def _read_frame(self) -> Dict[str, Any]:
        line = self._file.readline()
        if not line:
            raise ServiceError("protocol", "connection closed by the server")
        frame = decode_frame(line)
        if frame.get("ok") is False:
            error = frame.get("error") or {}
            raise ServiceError(
                str(error.get("kind", "internal")),
                str(error.get("message", "unspecified error")),
            )
        return frame

    def request(self, frame: Dict[str, Any]) -> Dict[str, Any]:
        """Send one frame and return the (ok) response frame."""
        self._file.write(encode_frame(frame))
        self._file.flush()
        return self._read_frame()

    # -- ops ---------------------------------------------------------------

    def ping(self) -> Dict[str, Any]:
        return self.request({"op": "ping"})

    def submit(
        self,
        specs: Sequence[Union[ScenarioSpec, Dict[str, Any]]],
        *,
        watch: bool = False,
    ) -> Dict[str, Any]:
        """Submit a spec batch; with ``watch`` the event stream follows —
        consume it with :meth:`events` before sending anything else."""
        payload = [
            spec.to_dict() if isinstance(spec, ScenarioSpec) else dict(spec)
            for spec in specs
        ]
        return self.request({"op": "submit", "specs": payload, "watch": bool(watch)})

    def events(self) -> Iterator[ProgressEvent]:
        """Yield the pending event stream until its job-finished frame.

        The finish frame lands in :attr:`finished`; a failed job raises
        :class:`ServiceError` after the stream ends.
        """
        self.finished = None
        while True:
            frame = self._read_frame()
            op = frame.get("op")
            if op == "event":
                yield event_from_dict(frame["data"])
            elif op == "job-finished":
                self.finished = frame
                if frame.get("state") != "done":
                    raise ServiceError(
                        "internal",
                        f"job {frame.get('job')} failed: {frame.get('error')}",
                    )
                return
            else:
                raise ServiceError("protocol", f"unexpected frame in stream: {frame!r}")

    def watch(self, job_id: str) -> Iterator[ProgressEvent]:
        """Attach to a job: replay its past events, then follow it live."""
        self.request({"op": "watch", "job": job_id})
        return self.events()

    def status(self, job_id: Optional[str] = None) -> List[Dict[str, Any]]:
        frame: Dict[str, Any] = {"op": "status"}
        if job_id is not None:
            frame["job"] = job_id
        return self.request(frame)["jobs"]

    def results(self, job_id: str) -> List[Dict[str, Any]]:
        """The job's records in plan order (the job must be done)."""
        return self.request({"op": "results", "job": job_id})["records"]

    def shutdown(self) -> Dict[str, Any]:
        """Ask the daemon to drain and exit."""
        return self.request({"op": "shutdown"})


def connect_with_retry(
    *,
    socket_path: Optional[str] = None,
    host: Optional[str] = None,
    port: Optional[int] = None,
    deadline: float = 10.0,
    interval: float = 0.05,
    timeout: Optional[float] = None,
) -> ServiceClient:
    """Connect to a daemon that may still be starting up."""
    stop = time.monotonic() + deadline
    while True:
        try:
            return ServiceClient(
                socket_path=socket_path, host=host, port=port, timeout=timeout
            )
        except OSError:
            if time.monotonic() >= stop:
                raise
            time.sleep(interval)
