"""Counters, gauges, and histograms with pluggable sinks.

A :class:`MetricsRegistry` is a small get-or-create namespace of named
instruments:

* :class:`Counter` — monotonically increasing totals (runs executed,
  cache hits, messages sent).
* :class:`Gauge` — last-written values (peak memory, lanes in flight).
* :class:`Histogram` — streaming summaries (count/sum/min/max/mean) of
  observations such as per-run seconds or rounds/sec rates.

``registry.snapshot()`` renders everything to a JSON-ready dict, and
:meth:`MetricsRegistry.publish` pushes that snapshot to any number of
:class:`MetricsSink`s — in-memory (tests), human-readable stderr lines, or
JSONL (the format the future ``repro serve`` will stream to clients).
``repro bench`` routes its measurements through this registry so bench
payloads and trace files share one vocabulary.

Peak-memory tracking is opt-in via :func:`track_peak_memory`, a context
manager over stdlib ``tracemalloc`` that writes the observed peak into a
gauge; ``tracemalloc`` roughly doubles allocation cost, so it never runs
unless explicitly requested.
"""

from __future__ import annotations

import json
import sys
import tracemalloc
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional, TextIO

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "InMemorySink",
    "JsonlSink",
    "MetricsRegistry",
    "MetricsSink",
    "StderrSink",
    "track_peak_memory",
]


class Counter:
    """A monotonically increasing total."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease (inc {amount})")
        self.value += amount


class Gauge:
    """A last-written value."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: Optional[float] = None

    def set(self, value: float) -> None:
        self.value = value


class Histogram:
    """A streaming summary (count/sum/min/max) of observed values."""

    __slots__ = ("name", "count", "total", "min", "max")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    @property
    def mean(self) -> Optional[float]:
        return self.total / self.count if self.count else None

    def summary(self) -> Dict[str, Any]:
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
        }


class MetricsSink:
    """Receives registry snapshots from :meth:`MetricsRegistry.publish`."""

    def emit(self, snapshot: Dict[str, Any]) -> None:
        raise NotImplementedError


class InMemorySink(MetricsSink):
    """Keeps every published snapshot in a list (tests, embedding callers)."""

    def __init__(self) -> None:
        self.snapshots: List[Dict[str, Any]] = []

    def emit(self, snapshot: Dict[str, Any]) -> None:
        self.snapshots.append(snapshot)


class StderrSink(MetricsSink):
    """Writes one aligned human-readable line per instrument."""

    def __init__(self, stream: Optional[TextIO] = None) -> None:
        self._stream = stream

    def emit(self, snapshot: Dict[str, Any]) -> None:
        stream = self._stream if self._stream is not None else sys.stderr
        for kind in ("counters", "gauges", "histograms"):
            for name, value in sorted(snapshot.get(kind, {}).items()):
                if kind == "histograms":
                    rendered = (
                        f"count={value['count']} sum={_fmt(value['sum'])}"
                        f" mean={_fmt(value['mean'])}"
                        f" min={_fmt(value['min'])} max={_fmt(value['max'])}"
                    )
                else:
                    rendered = _fmt(value)
                stream.write(f"[metrics] {name} {rendered}\n")
        stream.flush()


class JsonlSink(MetricsSink):
    """Appends each snapshot as one JSON line; streamable by `repro serve`."""

    def __init__(self, stream: TextIO) -> None:
        self._stream = stream

    def emit(self, snapshot: Dict[str, Any]) -> None:
        self._stream.write(json.dumps(snapshot, sort_keys=True) + "\n")
        self._stream.flush()


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.6g}"
    return str(value)


class MetricsRegistry:
    """A get-or-create namespace of instruments plus attached sinks."""

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._sinks: List[MetricsSink] = []

    # -- instruments --------------------------------------------------------

    def counter(self, name: str) -> Counter:
        self._check_free(name, self._counters)
        return self._counters.setdefault(name, Counter(name))

    def gauge(self, name: str) -> Gauge:
        self._check_free(name, self._gauges)
        return self._gauges.setdefault(name, Gauge(name))

    def histogram(self, name: str) -> Histogram:
        self._check_free(name, self._histograms)
        return self._histograms.setdefault(name, Histogram(name))

    def _check_free(self, name: str, home: Dict[str, Any]) -> None:
        for kind in (self._counters, self._gauges, self._histograms):
            if kind is not home and name in kind:
                raise ValueError(
                    f"metric {name!r} already registered as a different instrument"
                )

    # -- sinks --------------------------------------------------------------

    def add_sink(self, sink: MetricsSink) -> MetricsSink:
        self._sinks.append(sink)
        return sink

    def publish(self) -> Dict[str, Any]:
        """Snapshot the registry and emit it to every attached sink."""
        snapshot = self.snapshot()
        for sink in self._sinks:
            sink.emit(snapshot)
        return snapshot

    # -- reading ------------------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """Everything the registry holds, as a JSON-ready dict."""
        return {
            "counters": {name: c.value for name, c in self._counters.items()},
            "gauges": {name: g.value for name, g in self._gauges.items()},
            "histograms": {name: h.summary() for name, h in self._histograms.items()},
        }


@contextmanager
def track_peak_memory(
    registry: MetricsRegistry, gauge_name: str = "memory.peak_bytes"
) -> Iterator[Gauge]:
    """Record the ``tracemalloc`` allocation peak of a block into a gauge.

    If tracemalloc is already tracing (a caller higher up owns it), the
    peak counter is reset for this block and tracing is left running on
    exit; otherwise this starts and stops tracing around the block.
    """
    gauge = registry.gauge(gauge_name)
    already_tracing = tracemalloc.is_tracing()
    if already_tracing:
        tracemalloc.reset_peak()
    else:
        tracemalloc.start()
    try:
        yield gauge
    finally:
        _, peak = tracemalloc.get_traced_memory()
        gauge.set(float(peak))
        if not already_tracing:
            tracemalloc.stop()
