"""Span tracing for the execution core.

A :class:`Tracer` hands out *spans* — context managers bracketing one unit
of work::

    with tracer.span("delivery", round=round_index):
        program.deliver(round_index, commitment)

Two implementations ship:

* :data:`NULL_TRACER` — the disabled default.  Every component that accepts
  a tracer treats ``None`` as this tracer, and the
  :class:`~repro.core.rounds.RoundKernel` checks :attr:`Tracer.enabled`
  *once per run* to select an uninstrumented round loop, so tracing that is
  off costs exactly one attribute read per execution.  ``repro bench
  --max-obs-overhead`` gates that promise by timing a run with this
  disabled tracer against a fully untraced run, and reports the cost of
  the instrumented loop itself (timed under ``NullTracer(enabled=True)``,
  free spans) alongside.
* :class:`TimingTracer` — accumulates wall-clock totals and call counts per
  span name (nested spans each accrue under their own name), which is how
  per-stage timing breakdowns reach :attr:`~repro.core.result.
  ExecutionResult.timings` and the JSONL traces behind
  ``repro trace summarize``.

The canonical span names of the staged round kernel are the four stages of
the paper's round structure: :data:`STAGE_COMMIT`, :data:`STAGE_ADVERSARY`,
:data:`STAGE_DELIVERY`, :data:`STAGE_ACCOUNTING`.
"""

from __future__ import annotations

import time
from typing import Any, Dict, List, Optional

__all__ = [
    "KERNEL_STAGES",
    "NULL_TRACER",
    "NullTracer",
    "STAGE_ACCOUNTING",
    "STAGE_ADVERSARY",
    "STAGE_COMMIT",
    "STAGE_DELIVERY",
    "TimingTracer",
    "Tracer",
    "timing_delta",
]

#: The four stages of the staged round kernel, in round order.
STAGE_COMMIT = "commit"
STAGE_ADVERSARY = "adversary"
STAGE_DELIVERY = "delivery"
STAGE_ACCOUNTING = "accounting"
KERNEL_STAGES = (STAGE_COMMIT, STAGE_ADVERSARY, STAGE_DELIVERY, STAGE_ACCOUNTING)


class Tracer:
    """The tracer protocol: hand out spans, optionally report timings.

    Subclasses override :meth:`span`; :attr:`enabled` tells instrumented
    hot loops whether building spans is worthwhile at all (the round kernel
    selects an entirely uninstrumented loop when it is False).
    """

    #: False only on the disabled tracer; hot loops may skip span creation
    #: entirely when this is False.
    enabled: bool = True

    def span(self, name: str, **attributes: Any):
        """A context manager bracketing one named unit of work.

        ``attributes`` are advisory (round index, lane count, ...); the
        built-in tracers ignore them, richer tracers may record them.
        """
        raise NotImplementedError

    def timings(self) -> Optional[Dict[str, float]]:
        """Accumulated wall seconds per span name, or None if not collected."""
        return None


class _NullSpan:
    """The shared do-nothing span; one instance serves every call."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info: object) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class NullTracer(Tracer):
    """The no-op tracer: every span is the same do-nothing object.

    Constructed ``enabled=False`` (the :data:`NULL_TRACER` default) it tells
    instrumented loops to skip span creation altogether.  Constructed
    ``enabled=True`` it forces the instrumented code path while keeping the
    spans free — the probe ``repro bench --max-obs-overhead`` uses to
    measure what the instrumented loop costs by itself.
    """

    __slots__ = ("enabled",)

    def __init__(self, enabled: bool = False) -> None:
        self.enabled = enabled

    def span(self, name: str, **attributes: Any) -> _NullSpan:
        return _NULL_SPAN


#: The disabled default every tracer-accepting component falls back to.
NULL_TRACER = NullTracer()


class _TimedSpan:
    """One live span of a :class:`TimingTracer`."""

    __slots__ = ("_tracer", "name", "_start")

    def __init__(self, tracer: "TimingTracer", name: str) -> None:
        self._tracer = tracer
        self.name = name
        self._start = 0.0

    def __enter__(self) -> "_TimedSpan":
        self._tracer._open(self.name)
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> bool:
        elapsed = time.perf_counter() - self._start
        self._tracer._close(self.name, elapsed)
        return False


class TimingTracer(Tracer):
    """Accumulates per-name wall-clock totals and call counts.

    Spans may nest; a nested span's time accrues under its own name *and*
    (by wall-clock inclusion) under every open ancestor, exactly like a
    flame graph.  :attr:`max_depth` records the deepest nesting observed,
    and mismatched exits raise immediately — the kernel's stage structure
    is strictly bracketed, so a mismatch is always a bug.
    """

    enabled = True

    def __init__(self) -> None:
        self.totals: Dict[str, float] = {}
        self.counts: Dict[str, int] = {}
        self._stack: List[str] = []
        self.max_depth = 0

    def span(self, name: str, **attributes: Any) -> _TimedSpan:
        return _TimedSpan(self, name)

    # -- span plumbing ------------------------------------------------------

    def _open(self, name: str) -> None:
        self._stack.append(name)
        if len(self._stack) > self.max_depth:
            self.max_depth = len(self._stack)

    def _close(self, name: str, elapsed: float) -> None:
        if not self._stack or self._stack[-1] != name:
            raise RuntimeError(
                f"span {name!r} closed out of order (open stack: {self._stack})"
            )
        self._stack.pop()
        self.totals[name] = self.totals.get(name, 0.0) + elapsed
        self.counts[name] = self.counts.get(name, 0) + 1

    # -- reading ------------------------------------------------------------

    @property
    def depth(self) -> int:
        """How many spans are currently open."""
        return len(self._stack)

    def timings(self) -> Dict[str, float]:
        """A copy of the accumulated wall seconds per span name."""
        return dict(self.totals)

    def snapshot(self) -> Dict[str, Dict[str, float]]:
        """Totals and counts together, JSON-ready."""
        return {
            "seconds": dict(self.totals),
            "counts": dict(self.counts),
        }


def timing_delta(
    before: Optional[Dict[str, float]], after: Optional[Dict[str, float]]
) -> Optional[Dict[str, float]]:
    """The per-name difference ``after - before`` of two timing snapshots.

    Kernels use this to attach only *their own* stage seconds to a result
    when the caller shares one tracer across several executions.  ``None``
    snapshots (a tracer that does not collect) yield ``None``.
    """
    if after is None:
        return None
    if not before:
        return dict(after)
    return {
        name: value - before.get(name, 0.0)
        for name, value in after.items()
        if value - before.get(name, 0.0) > 0.0 or name not in before
    }
