"""Observability for the execution stack: tracing, metrics, progress events.

Three pillars, all stdlib-only:

* :mod:`repro.obs.tracing` — span tracing of the staged round kernel
  (``commit``/``adversary``/``delivery``/``accounting``), with a disabled
  default whose cost is one attribute read per run.
* :mod:`repro.obs.metrics` — counters/gauges/histograms with pluggable
  sinks (in-memory, stderr, JSONL); ``repro bench`` publishes through it.
* :mod:`repro.obs.events` — typed ``CellStarted/CellCached/CellCompleted/
  RunFinished`` progress events emitted by ``Experiment.observe``,
  persisted as JSONL traces (:mod:`repro.obs.trace`) and summarized by
  ``repro trace summarize``.

:mod:`repro.obs.logs` wires the CLI's ``-v/-q/--log-level`` flags to the
``"repro"`` stdlib logger.
"""

from .events import (
    CellCached,
    CellCompleted,
    CellStarted,
    ProgressEvent,
    ProgressPrinter,
    RunFinished,
    event_from_dict,
    event_to_dict,
)
from .logs import configure_logging, get_logger
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    InMemorySink,
    JsonlSink,
    MetricsRegistry,
    MetricsSink,
    StderrSink,
    track_peak_memory,
)
from .trace import TraceWriter, read_trace, render_trace_summary, summarize_trace
from .tracing import (
    KERNEL_STAGES,
    NULL_TRACER,
    NullTracer,
    STAGE_ACCOUNTING,
    STAGE_ADVERSARY,
    STAGE_COMMIT,
    STAGE_DELIVERY,
    TimingTracer,
    Tracer,
    timing_delta,
)

__all__ = [
    "CellCached",
    "CellCompleted",
    "CellStarted",
    "Counter",
    "Gauge",
    "Histogram",
    "InMemorySink",
    "JsonlSink",
    "KERNEL_STAGES",
    "MetricsRegistry",
    "MetricsSink",
    "NULL_TRACER",
    "NullTracer",
    "ProgressEvent",
    "ProgressPrinter",
    "RunFinished",
    "STAGE_ACCOUNTING",
    "STAGE_ADVERSARY",
    "STAGE_COMMIT",
    "STAGE_DELIVERY",
    "StderrSink",
    "TimingTracer",
    "TraceWriter",
    "Tracer",
    "configure_logging",
    "event_from_dict",
    "event_to_dict",
    "get_logger",
    "read_trace",
    "render_trace_summary",
    "summarize_trace",
    "timing_delta",
    "track_peak_memory",
]
