"""JSONL trace files: writing, reading, and summarizing.

A trace file is one progress event per line in :func:`~repro.obs.events.
event_to_dict` form.  ``repro run/sweep --trace out.jsonl`` writes one via
:class:`TraceWriter` (an observer that is also a context manager);
``repro trace summarize out.jsonl`` reads it back with :func:`read_trace`
and renders the per-backend × per-stage timing table built by
:func:`summarize_trace`.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, TextIO, Union

from ..results.report import rows_to_table
from .events import (
    CellCached,
    CellCompleted,
    ProgressEvent,
    RunFinished,
    event_from_dict,
    event_to_dict,
)
from .tracing import KERNEL_STAGES

__all__ = [
    "TraceWriter",
    "read_trace",
    "render_trace_summary",
    "summarize_trace",
]


class TraceWriter:
    """An observer that appends each event to a JSONL trace file."""

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        self._stream: Optional[TextIO] = None

    def __enter__(self) -> "TraceWriter":
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._stream = self.path.open("w", encoding="utf-8")
        return self

    def __exit__(self, *exc_info: object) -> bool:
        self.close()
        return False

    def __call__(self, event: ProgressEvent) -> None:
        if self._stream is None:
            raise RuntimeError("TraceWriter used outside its context")
        self._stream.write(json.dumps(event_to_dict(event), sort_keys=True) + "\n")
        self._stream.flush()

    def close(self) -> None:
        if self._stream is not None:
            self._stream.close()
            self._stream = None


def read_trace(path: Union[str, Path]) -> Iterator[ProgressEvent]:
    """Yield the events of a JSONL trace file, skipping blank lines."""
    with Path(path).open("r", encoding="utf-8") as stream:
        for line_number, line in enumerate(stream, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                payload = json.loads(line)
                yield event_from_dict(payload)
            except (ValueError, TypeError) as exc:
                raise ValueError(f"{path}:{line_number}: invalid trace line: {exc}")


def summarize_trace(events: Union[Iterator[ProgressEvent], List[ProgressEvent]]):
    """Aggregate a trace's completed cells per backend.

    Returns a dict with:

    * ``"backends"`` — ordered ``{backend: {"cells", "seconds", "stages":
      {stage: seconds}}}`` over every :class:`CellCompleted` event,
    * ``"cached"`` — count of :class:`CellCached` events,
    * ``"run"`` — the final :class:`RunFinished` payload, if present.
    """
    backends: Dict[str, Dict[str, Any]] = {}
    cached = 0
    run: Optional[Dict[str, Any]] = None
    for event in events:
        if isinstance(event, CellCompleted):
            backend = event.backend or "unknown"
            entry = backends.setdefault(
                backend, {"cells": 0, "seconds": 0.0, "stages": {}}
            )
            entry["cells"] += 1
            if event.seconds is not None:
                entry["seconds"] += event.seconds
            for stage, seconds in (event.stage_seconds or {}).items():
                entry["stages"][stage] = entry["stages"].get(stage, 0.0) + seconds
        elif isinstance(event, CellCached):
            cached += 1
        elif isinstance(event, RunFinished):
            run = {
                "cells": event.cells,
                "executed": event.executed,
                "cached": event.cached,
                "seconds": event.seconds,
            }
    return {"backends": backends, "cached": cached, "run": run}


def _stage_columns(summary: Dict[str, Any]) -> List[str]:
    """Kernel stages first (in round order), then any extra span names."""
    seen = set()
    for entry in summary["backends"].values():
        seen.update(entry["stages"])
    ordered = [stage for stage in KERNEL_STAGES if stage in seen]
    ordered.extend(sorted(seen - set(KERNEL_STAGES)))
    return ordered


def render_trace_summary(summary: Dict[str, Any], fmt: str = "text") -> str:
    """Render a :func:`summarize_trace` result as a per-backend table.

    One row per backend: cell count, total wall seconds, then one column
    per kernel stage (title-cased: Commit/Adversary/Delivery/Accounting)
    holding that backend's accumulated stage seconds.
    """
    stages = _stage_columns(summary)
    columns = ["backend", "cells", "seconds"] + [stage.title() for stage in stages]
    rows = []
    for backend in sorted(summary["backends"]):
        entry = summary["backends"][backend]
        row: Dict[str, Any] = {
            "backend": backend,
            "cells": entry["cells"],
            "seconds": round(entry["seconds"], 6),
        }
        for stage in stages:
            seconds = entry["stages"].get(stage)
            row[stage.title()] = None if seconds is None else round(seconds, 6)
        rows.append(row)
    table = rows_to_table(rows, columns, fmt)
    if fmt == "json":
        return table
    lines = [table]
    run = summary.get("run")
    if run is not None:
        lines.append(
            f"run: {run['cells']} cell(s), {run['executed']} executed,"
            f" {run['cached']} cached in {run['seconds']:.2f}s"
        )
    elif summary.get("cached"):
        lines.append(f"cached cells: {summary['cached']}")
    return "\n".join(lines)
