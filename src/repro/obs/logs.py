"""Stdlib logging configuration for the repro library and CLI.

Library modules obtain loggers via :func:`get_logger` (children of the
``"repro"`` root logger) and log normally; nothing is printed unless the
embedding application configures handlers.  The CLI calls
:func:`configure_logging` from its global ``-v/-q/--log-level`` flags,
which attaches one stderr handler to the ``"repro"`` logger so library
warnings — e.g. the batch backend falling back to serial when numpy is
missing — surface uniformly instead of being silent.
"""

from __future__ import annotations

import logging
import sys
from typing import Optional, TextIO

__all__ = ["configure_logging", "get_logger"]

ROOT_LOGGER_NAME = "repro"

_HANDLER_MARK = "_repro_cli_handler"


def get_logger(name: Optional[str] = None) -> logging.Logger:
    """The ``repro`` logger, or the ``repro.<name>`` child for a module."""
    if not name:
        return logging.getLogger(ROOT_LOGGER_NAME)
    if name.startswith(ROOT_LOGGER_NAME + ".") or name == ROOT_LOGGER_NAME:
        return logging.getLogger(name)
    return logging.getLogger(f"{ROOT_LOGGER_NAME}.{name}")


def resolve_level(
    level: Optional[str] = None, verbosity: int = 0, quiet: bool = False
) -> int:
    """Map CLI flags to a logging level; an explicit ``--log-level`` wins."""
    if level:
        resolved = logging.getLevelName(level.upper())
        if not isinstance(resolved, int):
            raise ValueError(f"unknown log level: {level!r}")
        return resolved
    if quiet:
        return logging.ERROR
    if verbosity >= 2:
        return logging.DEBUG
    if verbosity == 1:
        return logging.INFO
    return logging.WARNING


def configure_logging(
    level: Optional[str] = None,
    verbosity: int = 0,
    quiet: bool = False,
    stream: Optional[TextIO] = None,
) -> logging.Logger:
    """Point the ``repro`` logger at stderr at the requested level.

    Idempotent: repeated calls reconfigure the single CLI handler instead
    of stacking new ones, so tests (and repeated ``main()`` invocations)
    can call it freely.
    """
    logger = logging.getLogger(ROOT_LOGGER_NAME)
    logger.setLevel(resolve_level(level, verbosity, quiet))
    handler = None
    for existing in logger.handlers:
        if getattr(existing, _HANDLER_MARK, False):
            handler = existing
            break
    if handler is None:
        handler = logging.StreamHandler(stream if stream is not None else sys.stderr)
        setattr(handler, _HANDLER_MARK, True)
        handler.setFormatter(logging.Formatter("%(levelname)s %(name)s: %(message)s"))
        logger.addHandler(handler)
    elif stream is not None:
        # Not setStream(): that flushes the previous stream first, which may
        # already be closed (e.g. a captured stderr from an earlier run).
        handler.acquire()
        try:
            handler.stream = stream
        finally:
            handler.release()
    handler.setLevel(logging.NOTSET)
    logger.propagate = False
    return logger
