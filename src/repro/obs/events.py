"""Typed progress events emitted by the Experiment pipeline.

``Experiment.observe(callback)`` registers observers; while the resulting
:class:`~repro.api.RunSet` streams records, each plan cell produces:

* :class:`CellStarted` — a pending cell is about to execute,
* :class:`CellCompleted` — it finished (wall seconds, outcome summary,
  optional per-stage timing breakdown), or
* :class:`CellCached` — the cell was a store hit and was read back,

followed by one :class:`RunFinished` after the stream is exhausted.
Events arrive in plan order, exactly once per cell per run.

Every event round-trips through :func:`event_to_dict` /
:func:`event_from_dict` (the ``"event"`` key carries the kind), which is
the line format of ``--trace out.jsonl`` files.  :class:`ProgressPrinter`
is the CLI's built-in observer: a live carriage-return progress line on a
TTY, a final summary line otherwise.
"""

from __future__ import annotations

import dataclasses
import sys
import time
from dataclasses import dataclass
from typing import Any, Dict, Optional, TextIO, Union

__all__ = [
    "CellCached",
    "CellCompleted",
    "CellStarted",
    "ProgressEvent",
    "ProgressPrinter",
    "RunFinished",
    "event_from_dict",
    "event_to_dict",
]


@dataclass(frozen=True)
class CellStarted:
    """A pending plan cell is about to execute."""

    index: int
    total: int
    scenario: str
    repetition: int
    backend: Optional[str] = None


@dataclass(frozen=True)
class CellCached:
    """A plan cell was satisfied from the bound store without executing."""

    index: int
    total: int
    scenario: str
    repetition: int


@dataclass(frozen=True)
class CellCompleted:
    """A pending plan cell finished executing."""

    index: int
    total: int
    scenario: str
    repetition: int
    backend: Optional[str] = None
    seconds: Optional[float] = None
    completed: Optional[bool] = None
    rounds: Optional[int] = None
    total_messages: Optional[int] = None
    #: Wall seconds per kernel stage (commit/adversary/delivery/accounting),
    #: present only when the run collected timings.
    stage_seconds: Optional[Dict[str, float]] = None


@dataclass(frozen=True)
class RunFinished:
    """The RunSet stream is exhausted."""

    cells: int
    executed: int
    cached: int
    seconds: float


ProgressEvent = Union[CellStarted, CellCached, CellCompleted, RunFinished]

_EVENT_KINDS = {
    "cell_started": CellStarted,
    "cell_cached": CellCached,
    "cell_completed": CellCompleted,
    "run_finished": RunFinished,
}
_KIND_NAMES = {cls: name for name, cls in _EVENT_KINDS.items()}


def event_to_dict(event: ProgressEvent) -> Dict[str, Any]:
    """Render an event as a JSON-ready dict with an ``"event"`` kind key."""
    kind = _KIND_NAMES.get(type(event))
    if kind is None:
        raise TypeError(f"not a progress event: {event!r}")
    payload = dataclasses.asdict(event)
    payload["event"] = kind
    return payload


def event_from_dict(payload: Dict[str, Any]) -> ProgressEvent:
    """Rebuild an event from its :func:`event_to_dict` form."""
    data = dict(payload)
    kind = data.pop("event", None)
    cls = _EVENT_KINDS.get(kind)
    if cls is None:
        raise ValueError(f"unknown progress event kind: {kind!r}")
    fields = {field.name for field in dataclasses.fields(cls)}
    unknown = set(data) - fields
    if unknown:
        raise ValueError(
            f"unknown fields for {kind} event: {sorted(unknown)}"
        )
    return cls(**data)


class ProgressPrinter:
    """The CLI's observer: a live progress line on a TTY, quiet otherwise.

    On a TTY the line is redrawn in place with carriage returns and
    cleared when the run finishes (the caller prints its own summary).
    On a non-TTY stream nothing is written until :class:`RunFinished`,
    which produces a single ``progress:`` summary line.
    """

    def __init__(self, stream: Optional[TextIO] = None, label: str = "run") -> None:
        self._stream = stream
        self.label = label
        self._start = time.perf_counter()
        self._executed = 0
        self._cached = 0
        self._total = 0
        self._line_width = 0

    def __call__(self, event: ProgressEvent) -> None:
        self.render(event)

    def render(self, event: ProgressEvent) -> None:
        """Fold one event into the live display.

        Exposed separately from :meth:`__call__` so callers that receive
        events from elsewhere (the service client streaming frames off a
        socket) can drive the same TTY/non-TTY rendering logic.
        """
        if isinstance(event, CellStarted):
            self._total = event.total
            self._draw(f"cell {event.index + 1}/{event.total} {event.scenario}")
        elif isinstance(event, CellCompleted):
            self._executed += 1
            self._total = event.total
            self._draw(self._tally())
        elif isinstance(event, CellCached):
            self._cached += 1
            self._total = event.total
            self._draw(self._tally())
        elif isinstance(event, RunFinished):
            self._finish(event)

    # -- drawing ------------------------------------------------------------

    def _out(self) -> TextIO:
        return self._stream if self._stream is not None else sys.stderr

    def _elapsed(self) -> float:
        return time.perf_counter() - self._start

    def _tally(self) -> str:
        done = self._executed + self._cached
        return (
            f"{done}/{self._total} cells"
            f" ({self._executed} executed, {self._cached} cached)"
        )

    def _draw(self, detail: str) -> None:
        stream = self._out()
        if not stream.isatty():
            return
        line = f"{self.label}: {detail} [{self._elapsed():.1f}s]"
        padding = " " * max(0, self._line_width - len(line))
        stream.write("\r" + line + padding)
        stream.flush()
        self._line_width = len(line)

    def _finish(self, event: RunFinished) -> None:
        stream = self._out()
        if stream.isatty():
            stream.write("\r" + " " * self._line_width + "\r")
        else:
            stream.write(
                f"progress: {self.label} finished — {event.cells} cell(s),"
                f" {event.executed} executed, {event.cached} cached"
                f" in {event.seconds:.2f}s\n"
            )
        stream.flush()
        self._line_width = 0
