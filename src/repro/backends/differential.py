"""Differential validation: run two backends on the same seeds, diff results.

A fast path that is fast but wrong is worse than no fast path, so backend
equivalence is checked *structurally*: both backends execute the identical
seeded scenario (same derived engine seed, hence the same adversary
randomness) and every observable field of the two
:class:`~repro.core.result.ExecutionResult` objects is compared —
completion, round count, message statistics (total, by kind, per round, per
node), ``TC(E)``, edge removals, the token-learning event log in order, and
(when both backends keep their traces) every per-round edge set.

:func:`default_differential_specs` provides the seeded grid behind
``python -m repro verify-backend``: every registered algorithm crossed with
oblivious *and* adaptive adversaries over a small (n, k, seed) grid,
including heavy-churn, multi-source, unicast-under-adaptive and
incomplete-run cases.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.backends.base import get_backend
from repro.core.result import ExecutionResult
from repro.scenarios import ScenarioSpec, materialize, repetition_seed

#: Result attributes compared as plain values.
_SCALAR_FIELDS = (
    "algorithm_name",
    "adversary_name",
    "completed",
    "rounds",
    "total_messages",
    "topological_changes",
)


@dataclass(frozen=True)
class FieldDifference:
    """One observable field on which two executions disagreed."""

    field: str
    reference: Any
    candidate: Any

    def describe(self) -> Dict[str, Any]:
        return {
            "field": self.field,
            "reference": self.reference,
            "candidate": self.candidate,
        }


@dataclass(frozen=True)
class DifferentialOutcome:
    """The comparison of one seeded execution under two backends."""

    spec: ScenarioSpec
    repetition: int
    seed: int
    differences: Tuple[FieldDifference, ...]

    @property
    def equal(self) -> bool:
        """True iff every compared field matched."""
        return not self.differences

    def describe(self) -> Dict[str, Any]:
        return {
            "scenario": self.spec.label,
            "spec": self.spec.to_dict(),
            "repetition": self.repetition,
            "seed": self.seed,
            "equal": self.equal,
            "differences": [difference.describe() for difference in self.differences],
        }


@dataclass(frozen=True)
class DifferentialReport:
    """All outcomes of one differential-validation run."""

    reference: str
    candidate: str
    outcomes: Tuple[DifferentialOutcome, ...]

    @property
    def passed(self) -> bool:
        """True iff every execution matched on every field."""
        return all(outcome.equal for outcome in self.outcomes)

    @property
    def failures(self) -> List[DifferentialOutcome]:
        """The outcomes with at least one differing field."""
        return [outcome for outcome in self.outcomes if not outcome.equal]

    def describe(self) -> Dict[str, Any]:
        return {
            "reference": self.reference,
            "candidate": self.candidate,
            "executions": len(self.outcomes),
            "passed": self.passed,
            "failures": len(self.failures),
            "outcomes": [outcome.describe() for outcome in self.outcomes],
        }


def _first_sequence_mismatch(
    field: str, reference: Sequence[Any], candidate: Sequence[Any]
) -> FieldDifference:
    """Summarize where two sequences first diverge (kept short for reports)."""
    if len(reference) != len(candidate):
        return FieldDifference(
            field=f"{field}.length", reference=len(reference), candidate=len(candidate)
        )
    for index, (left, right) in enumerate(zip(reference, candidate)):
        if left != right:
            return FieldDifference(
                field=f"{field}[{index}]", reference=repr(left), candidate=repr(right)
            )
    return FieldDifference(field=field, reference="<equal>", candidate="<equal>")


def diff_results(
    reference: ExecutionResult,
    candidate: ExecutionResult,
    *,
    compare_graphs: bool = True,
) -> List[FieldDifference]:
    """Field-by-field comparison of two execution results.

    Returns an empty list iff the executions are structurally identical.
    Round graphs are compared only when ``compare_graphs`` is set and both
    traces retained their history.
    """
    differences: List[FieldDifference] = []
    for field in _SCALAR_FIELDS:
        left, right = getattr(reference, field), getattr(candidate, field)
        if left != right:
            differences.append(FieldDifference(field=field, reference=left, candidate=right))
    if reference.communication_model is not candidate.communication_model:
        differences.append(
            FieldDifference(
                field="communication_model",
                reference=reference.communication_model.value,
                candidate=candidate.communication_model.value,
            )
        )

    left_stats, right_stats = reference.messages, candidate.messages
    if left_stats.messages_by_kind != right_stats.messages_by_kind:
        differences.append(
            FieldDifference(
                field="messages_by_kind",
                reference=left_stats.messages_by_kind,
                candidate=right_stats.messages_by_kind,
            )
        )
    if left_stats.per_round_messages != right_stats.per_round_messages:
        differences.append(
            _first_sequence_mismatch(
                "per_round_messages",
                left_stats.per_round_messages,
                right_stats.per_round_messages,
            )
        )
    if left_stats.per_node_messages != right_stats.per_node_messages:
        differences.append(
            FieldDifference(
                field="per_node_messages",
                reference=left_stats.per_node_messages,
                candidate=right_stats.per_node_messages,
            )
        )

    if reference.trace.total_edge_removals() != candidate.trace.total_edge_removals():
        differences.append(
            FieldDifference(
                field="total_edge_removals",
                reference=reference.trace.total_edge_removals(),
                candidate=candidate.trace.total_edge_removals(),
            )
        )

    left_events = reference.events.events
    right_events = candidate.events.events
    if left_events != right_events:
        differences.append(
            _first_sequence_mismatch("events", left_events, right_events)
        )

    if (
        compare_graphs
        and reference.rounds == candidate.rounds
        and reference.trace.keeps_history
        and candidate.trace.keeps_history
    ):
        for round_index in range(1, reference.rounds + 1):
            left_edges = reference.trace.edges_in_round(round_index)
            right_edges = candidate.trace.edges_in_round(round_index)
            if left_edges != right_edges:
                differences.append(
                    FieldDifference(
                        field=f"round_graph[{round_index}]",
                        reference=f"{len(left_edges)} edges",
                        candidate=f"{len(right_edges)} edges (sets differ)",
                    )
                )
                break
    return differences


def validate_backends(
    specs: Sequence[ScenarioSpec],
    *,
    reference: str = "reference",
    candidate: str = "bitset",
    compare_graphs: bool = True,
) -> DifferentialReport:
    """Run every repetition of every spec under both backends and diff them.

    Each backend receives freshly materialized components and the same
    derived per-repetition seed, so any disagreement is attributable to the
    backend implementations, not to randomness or shared state.
    """
    reference_backend = get_backend(reference)
    candidate_backend = get_backend(candidate)
    outcomes: List[DifferentialOutcome] = []
    for spec in specs:
        for repetition in range(spec.repetitions):
            seed = repetition_seed(spec, repetition)
            results = []
            for backend in (reference_backend, candidate_backend):
                scenario = materialize(spec)
                results.append(
                    backend.run(
                        scenario.problem,
                        scenario.algorithm,
                        scenario.adversary,
                        seed=seed,
                        max_rounds=spec.max_rounds,
                    )
                )
            differences = diff_results(
                results[0], results[1], compare_graphs=compare_graphs
            )
            outcomes.append(
                DifferentialOutcome(
                    spec=spec,
                    repetition=repetition,
                    seed=seed,
                    differences=tuple(differences),
                )
            )
    return DifferentialReport(
        reference=reference, candidate=candidate, outcomes=tuple(outcomes)
    )


def _spec(
    algorithm: str,
    adversary: str,
    num_nodes: int,
    num_tokens: int,
    seed: int,
    *,
    problem: str = "single-source",
    problem_params: Optional[Dict[str, Any]] = None,
    adversary_params: Optional[Dict[str, Any]] = None,
    algorithm_params: Optional[Dict[str, Any]] = None,
    max_rounds: Optional[int] = None,
) -> ScenarioSpec:
    params: Dict[str, Any] = {"num_nodes": num_nodes}
    if problem != "n-gossip":
        params["num_tokens"] = num_tokens
    params.update(problem_params or {})
    return ScenarioSpec(
        problem=problem,
        problem_params=params,
        algorithm=algorithm,
        algorithm_params=dict(algorithm_params or {}),
        adversary=adversary,
        adversary_params=dict(adversary_params or {}),
        seed=seed,
        max_rounds=max_rounds,
        name=f"diff-{algorithm}-{adversary}-n{num_nodes}-k{num_tokens}-s{seed}",
    )


def default_differential_specs() -> List[ScenarioSpec]:
    """The seeded grid behind ``python -m repro verify-backend``.

    Covers every registered algorithm under both adversary classes:

    * every bitset fast program (flooding, one-shot-flooding, single-source,
      spanning-tree, naive-unicast, multi-source) against oblivious
      adversaries — steady churn, a static random graph,
      Θ(n)-changes-per-round star recentering and path reshuffling;
    * the same fast programs against **adaptive** adversaries (request
      cutting, star recentering on the least-informed node, targeted
      rewiring, and the Section-2 lower-bound adversary), which exercises
      the kernel's lazy RoundObservation adapter on bitset state — in
      particular unicast-model cases where the graph is fixed before nodes
      commit to their messages;
    * the generic kernel path (the two-phase ``oblivious`` algorithm, which
      has no native program) on both backends;
    * a round-capped spec whose executions do *not* complete (both backends
      must agree on incomplete results too).
    """
    specs: List[ScenarioSpec] = []

    # Flooding (local broadcast) under steady churn.
    for num_nodes in (6, 10):
        for num_tokens in (4, 9):
            for seed in (0, 1):
                specs.append(
                    _spec(
                        "flooding",
                        "churn",
                        num_nodes,
                        num_tokens,
                        seed,
                        adversary_params={"changes_per_round": 2},
                    )
                )
    # Flooding from a spread-out initial placement under star recentering.
    for seed in (0, 1):
        specs.append(
            _spec(
                "flooding",
                "star-oscillator",
                8,
                6,
                seed,
                problem="random-placement",
                adversary_params={"num_nodes": 8},
            )
        )
    # Flooding on n-gossip (k = n, one token per node) under path reshuffling.
    for num_nodes in (8, 12):
        specs.append(
            _spec(
                "flooding",
                "path-shuffle",
                num_nodes,
                num_nodes,
                0,
                problem="n-gossip",
                adversary_params={"num_nodes": num_nodes},
            )
        )

    # Single-Source-Unicast across churn rates and k regimes.
    for num_nodes in (8, 12):
        for num_tokens in (6, 16):
            for seed in (0, 1):
                specs.append(
                    _spec(
                        "single-source",
                        "churn",
                        num_nodes,
                        num_tokens,
                        seed,
                        adversary_params={"changes_per_round": 3},
                    )
                )
    for seed in (0, 1, 2):
        specs.append(
            _spec(
                "single-source",
                "static-random",
                10,
                12,
                seed,
                adversary_params={"num_nodes": 10},
            )
        )
    for seed in (0, 1):
        specs.append(
            _spec(
                "single-source",
                "star-oscillator",
                10,
                8,
                seed,
                adversary_params={"num_nodes": 10},
            )
        )

    # Spanning tree: its natural static habitat, plus light churn with a
    # round cap — those runs may not complete, and the backends must agree
    # on the truncated executions as well.
    for num_nodes in (8, 12):
        for num_tokens in (6, 10):
            for seed in (0, 1):
                specs.append(
                    _spec(
                        "spanning-tree",
                        "static-random",
                        num_nodes,
                        num_tokens,
                        seed,
                        adversary_params={"num_nodes": num_nodes},
                    )
                )
    for seed in (0, 1):
        specs.append(
            _spec(
                "spanning-tree",
                "churn",
                10,
                6,
                seed,
                adversary_params={"changes_per_round": 1},
                max_rounds=120,
            )
        )

    # The remaining registered algorithms under oblivious adversaries:
    # one-shot flooding, naive unicast, multi-source, and the two-phase
    # oblivious algorithm (generic kernel path — no native fast program).
    for seed in (0, 1):
        specs.append(
            _spec(
                "one-shot-flooding",
                "churn",
                10,
                8,
                seed,
                adversary_params={"changes_per_round": 2},
            )
        )
        specs.append(
            _spec(
                "naive-unicast",
                "churn",
                10,
                8,
                seed,
                adversary_params={"changes_per_round": 3},
            )
        )
        specs.append(
            _spec(
                "multi-source",
                "churn",
                10,
                9,
                seed,
                problem="multi-source",
                problem_params={"num_sources": 3},
                adversary_params={"changes_per_round": 2},
            )
        )
    specs.append(
        _spec(
            "multi-source",
            "path-shuffle",
            9,
            9,
            0,
            problem="n-gossip",
            adversary_params={"num_nodes": 9},
        )
    )
    specs.append(
        _spec(
            "oblivious",
            "churn",
            12,
            12,
            0,
            problem="multi-source",
            problem_params={"num_sources": 6},
            adversary_params={"changes_per_round": 1},
        )
    )

    # Adaptive adversaries: the kernel builds RoundObservations lazily from
    # the bitset state, so every fast program must agree with the reference
    # under adaptivity too.  Includes the local-broadcast lower-bound
    # adversary of Section 2 and the unicast request-cutting adversary that
    # the proof of Theorem 3.1 charges to TC(E).
    for seed in (0, 1):
        specs.append(_spec("flooding", "star-recenter", 8, 6, seed))
        specs.append(
            _spec(
                "single-source",
                "request-cutting",
                10,
                8,
                seed,
                adversary_params={"cut_fraction": 0.7},
            )
        )
    specs.append(_spec("flooding", "lower-bound", 8, 5, 0))
    specs.append(_spec("one-shot-flooding", "star-recenter", 9, 6, 0))
    specs.append(_spec("single-source", "adaptive-rewiring", 10, 8, 1))
    specs.append(_spec("naive-unicast", "star-recenter", 9, 7, 0))
    specs.append(_spec("naive-unicast", "request-cutting", 9, 6, 1))
    specs.append(
        _spec(
            "multi-source",
            "request-cutting",
            10,
            9,
            0,
            problem="multi-source",
            problem_params={"num_sources": 3},
        )
    )
    specs.append(
        _spec(
            "multi-source",
            "adaptive-rewiring",
            10,
            8,
            1,
            problem="multi-source",
            problem_params={"num_sources": 4},
        )
    )
    specs.append(
        _spec(
            "spanning-tree",
            "adaptive-rewiring",
            10,
            6,
            0,
            max_rounds=150,
        )
    )
    return specs
