"""The bitset backend: the staged round kernel on integer-bitmask state.

The backend assembles the same :class:`~repro.core.rounds.RoundKernel` the
reference engine uses — identical round structure, graph handling,
accounting and event ordering — but plugs in the
:class:`~repro.core.state.BitsetKnowledgeState` and enables the algorithms'
native fast programs: per-node token knowledge is one Python integer (bit
``i`` = the ``i``-th token in sorted order), a round graph is one adjacency
bitmask per node, and messages reduce to tuples of small ints.

Execution modes, discovered per algorithm (see :func:`fast_path_names`):

* **native** — the algorithm ships a bit-level
  :class:`~repro.core.rounds.FastRoundProgram` next to its reference
  implementation (flooding, one-shot-flooding, naive-unicast,
  single-source, spanning-tree, multi-source); the kernel runs it instead
  of the generic exchange program;
* **generic** — every other algorithm (including subclasses that override
  behaviour a fast program does not model) runs its real ``select`` /
  ``receive`` methods through the exchange program, bound to the bitset
  state.

Both adversary classes are supported: adaptive adversaries receive
:class:`~repro.core.observation.RoundObservation` objects built lazily from
the bitset state by the kernel's adversary stage.  Either way the results
are *exactly* the reference results — the same rounds, the same message
statistics (total, by kind, per round, per node), the same token-learning
events in the same order, and the same ``TC(E)``;
``python -m repro verify-backend`` runs both backends on a seeded grid
covering every registered algorithm under oblivious *and* adaptive
adversaries and diffs the results field by field.
"""

from __future__ import annotations

from typing import List, Optional

from repro.backends.base import EngineBackend, register_backend
from repro.core.result import ExecutionResult
from repro.core.rounds import RoundKernel
from repro.core.state import BitsetKnowledgeState
from repro.utils.rng import SeedLike


def has_native_fast_path(algorithm) -> bool:
    """True iff ``algorithm`` ships a native bit-level round program."""
    factory = getattr(algorithm, "fast_program_factory", None)
    return factory is not None and factory() is not None


def fast_path_names() -> List[str]:
    """Registry names of the algorithms with a native fast program.

    Capability discovery instead of a hardcoded allowlist: every registered
    algorithm is instantiated with its registry defaults and probed through
    :meth:`~repro.algorithms.base.TokenForwardingAlgorithm.fast_program_factory`.
    """
    from repro.scenarios.registry import ALGORITHM_REGISTRY

    names = []
    for name in ALGORITHM_REGISTRY.names():
        try:
            algorithm = ALGORITHM_REGISTRY.create(name)
        except Exception:  # pragma: no cover - misconfigured third-party entry
            continue
        if has_native_fast_path(algorithm):
            names.append(name)
    return names


@register_backend(
    "bitset",
    description=(
        "Integer-bitmask round kernel: native fast programs where algorithms "
        "provide them, the generic exchange path everywhere else; supports "
        "oblivious and adaptive adversaries."
    ),
)
class BitsetBackend(EngineBackend):
    """Bit-parallel execution through the shared staged round kernel."""

    name = "bitset"

    def supports(self, problem, algorithm, adversary) -> Optional[str]:
        # The kernel runs every algorithm/adversary combination the
        # reference engine accepts: natively fast where a program exists,
        # via the generic exchange path otherwise.
        return None

    def execution_mode(self, algorithm) -> str:
        """How this backend would run ``algorithm``: ``native`` or ``generic``."""
        return "native" if has_native_fast_path(algorithm) else "generic"

    def run(
        self,
        problem,
        algorithm,
        adversary,
        *,
        max_rounds: Optional[int] = None,
        seed: SeedLike = None,
        require_connected: bool = True,
        keep_trace: bool = True,
        tracer=None,
    ) -> ExecutionResult:
        self.check_supports(problem, algorithm, adversary)
        kernel = RoundKernel(
            problem,
            algorithm,
            adversary,
            state_factory=BitsetKnowledgeState,
            allow_fast_programs=True,
            max_rounds=max_rounds,
            seed=seed,
            require_connected=require_connected,
            keep_trace=keep_trace,
            tracer=tracer,
        )
        return kernel.run()
