"""The bitset backend: an integer-bitmask fast path for deterministic runs.

The reference :class:`~repro.core.engine.Simulator` rebuilds Python sets,
frozensets and per-message dataclasses every round.  For the deterministic
token-forwarding family — phase-based flooding, Single-Source-Unicast and
the spanning-tree baseline — none of that is needed: per-node token
knowledge fits in one Python integer (bit ``i`` = the ``i``-th token in
sorted order), a round graph fits in one adjacency bitmask per node, and
messages reduce to tuples of small ints.  :class:`BitsetBackend` re-executes
those algorithms on that representation while reproducing the reference
results *exactly*: the same rounds, the same message statistics (total, by
kind, per round, per node), the same token-learning events in the same
order, and the same ``TC(E)``.

Scope (checked by :meth:`BitsetBackend.supports`):

* algorithms with a registered fast implementation (``flooding``,
  ``single-source``, ``spanning-tree``);
* *oblivious* adversaries only — adaptive adversaries consume
  :class:`~repro.core.observation.RoundObservation` objects built from live
  algorithm state, which the bitset representation deliberately does not
  maintain.

Everything else falls to the reference backend;
``python -m repro verify-backend`` runs both on a seeded grid and diffs the
results field by field.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Dict, FrozenSet, List, Optional, Set, Tuple, Type

from repro.algorithms.flooding import FloodingAlgorithm
from repro.algorithms.single_source import SingleSourceUnicastAlgorithm
from repro.algorithms.spanning_tree import SpanningTreeAlgorithm
from repro.backends.base import EngineBackend, register_backend
from repro.core.engine import default_round_limit
from repro.core.events import EventLog
from repro.core.metrics import MessageStatistics
from repro.core.result import ExecutionResult
from repro.dynamics.graph_sequence import DynamicGraphTrace, GraphSchedule
from repro.utils.ids import Edge, NodeId
from repro.utils.rng import SeedLike, ensure_rng, spawn_rng
from repro.utils.validation import (
    AdversaryViolationError,
    ConfigurationError,
    require_positive_int,
)

#: Message-kind keys, matching :class:`repro.core.messages.MessageKind` values.
_KIND_TOKEN = "token"
_KIND_COMPLETENESS = "completeness"
_KIND_REQUEST = "request"
_KIND_CONTROL = "control"

#: Delivery tags used in the flat (sender, tag, value) message tuples.
_TAG_COMPLETENESS = 0
_TAG_TOKEN = 1
_TAG_REQUEST = 2
_TAG_JOIN = 3
_TAG_PARENT = 4


def _bit_indices(mask: int) -> List[int]:
    """The set bit positions of ``mask`` in ascending order."""
    indices = []
    while mask:
        low = mask & -mask
        indices.append(low.bit_length() - 1)
        mask ^= low
    return indices


class _BitsetTrace(DynamicGraphTrace):
    """A dynamic-graph trace recorded as integer edge ids.

    The fast path normalizes each round's edges to ``a * n + b`` ids once;
    storing those (instead of frozensets of tuples) keeps the per-round cost
    at a handful of int operations.  Edge tuples are materialized lazily —
    and cached — only when a consumer actually asks for a round graph.
    """

    def __init__(
        self,
        nodes,
        id_to_edge: Callable[[int], Edge],
        *,
        keep_history: bool = True,
    ):
        super().__init__(nodes, keep_history=keep_history)
        self._id_to_edge = id_to_edge
        self._id_rounds: List[FrozenSet[int]] = []
        self._materialized: Dict[int, FrozenSet[Edge]] = {}
        self._current_ids: FrozenSet[int] = frozenset()
        self._current_inserted_ids: FrozenSet[int] = frozenset()
        self._current_removed_ids: FrozenSet[int] = frozenset()

    # -- recording (called by the fast run loop) ---------------------------

    def record_ids(
        self, ids: FrozenSet[int], inserted: FrozenSet[int], removed: FrozenSet[int]
    ) -> None:
        self._num_rounds += 1
        self._total_insertions += len(inserted)
        self._total_removals += len(removed)
        self._current_ids = ids
        self._current_inserted_ids = inserted
        self._current_removed_ids = removed
        if self._keep_history:
            self._id_rounds.append(ids)

    # -- materialization ---------------------------------------------------

    def _edges_from_ids(self, ids: FrozenSet[int]) -> FrozenSet[Edge]:
        convert = self._id_to_edge
        return frozenset(convert(eid) for eid in ids)

    def _round_ids(self, round_index: int) -> FrozenSet[int]:
        if round_index == 0:
            return frozenset()
        if not self._keep_history:
            return self._current_ids
        return self._id_rounds[round_index - 1]

    def edges_in_round(self, round_index: int) -> FrozenSet[Edge]:
        if round_index == 0:
            return frozenset()
        self._check_round(round_index)
        cached = self._materialized.get(round_index)
        if cached is None:
            cached = self._edges_from_ids(self._round_ids(round_index))
            if self._keep_history:
                self._materialized[round_index] = cached
        return cached

    def inserted_edges(self, round_index: int) -> FrozenSet[Edge]:
        if round_index == 0:
            return frozenset()
        self._check_round(round_index)
        if not self._keep_history or round_index == self._num_rounds:
            return self._edges_from_ids(self._current_inserted_ids)
        return self._edges_from_ids(
            self._round_ids(round_index) - self._round_ids(round_index - 1)
        )

    def removed_edges(self, round_index: int) -> FrozenSet[Edge]:
        if round_index == 0:
            return frozenset()
        self._check_round(round_index)
        if not self._keep_history or round_index == self._num_rounds:
            return self._edges_from_ids(self._current_removed_ids)
        return self._edges_from_ids(
            self._round_ids(round_index - 1) - self._round_ids(round_index)
        )

    def topological_changes(self, up_to_round: Optional[int] = None) -> int:
        if up_to_round is None:
            return self._total_insertions
        if up_to_round < 0:
            raise ConfigurationError("up_to_round must be non-negative")
        up_to_round = min(up_to_round, self.num_rounds)
        if up_to_round == self.num_rounds:
            return self._total_insertions
        if up_to_round == 0:
            return 0
        self._require_history("a topological-changes prefix")
        total = 0
        previous: FrozenSet[int] = frozenset()
        for index in range(up_to_round):
            current = self._id_rounds[index]
            total += len(current - previous)
            previous = current
        return total

    def total_edge_removals(self, up_to_round: Optional[int] = None) -> int:
        if up_to_round is None:
            return self._total_removals
        up_to_round = min(max(up_to_round, 0), self.num_rounds)
        if up_to_round == self.num_rounds:
            return self._total_removals
        if up_to_round == 0:
            return 0
        self._require_history("an edge-removals prefix")
        total = 0
        previous: FrozenSet[int] = frozenset()
        for index in range(up_to_round):
            current = self._id_rounds[index]
            total += len(previous - current)
            previous = current
        return total

    def edge_lifetime(self, edge: Edge) -> int:
        self._require_history("edge_lifetime")
        return sum(
            1
            for index in range(1, self.num_rounds + 1)
            if edge in self.edges_in_round(index)
        )

    def as_schedule(self) -> GraphSchedule:
        self._require_history("as_schedule")
        return GraphSchedule(
            self.nodes,
            [self.edges_in_round(index) for index in range(1, self.num_rounds + 1)],
        )


class _FastExecution:
    """Shared round loop of the bitset fast path.

    Subclasses implement one algorithm's semantics over the shared state:
    ``self.adj`` (per-node adjacency bitmasks over node *indices*),
    ``self.know`` (per-node token bitmasks over sorted-token indices), the
    learning bookkeeping and the message counters.  The loop structure —
    adversary query, validation, connectivity check, trace recording,
    completion test — mirrors :meth:`repro.core.engine.Simulator.run`.
    """

    #: Set by subclasses that consult per-edge insertion history.
    track_edge_history = False

    def __init__(
        self,
        problem,
        algorithm,
        adversary,
        *,
        max_rounds: Optional[int],
        seed: SeedLike,
        require_connected: bool,
        keep_trace: bool,
    ) -> None:
        self.problem = problem
        self.algorithm = algorithm
        self.adversary = adversary
        if max_rounds is None:
            max_rounds = default_round_limit(problem)
        self.max_rounds = require_positive_int(max_rounds, "max_rounds")
        self.require_connected = require_connected
        self.keep_trace = keep_trace

        self.nodes: Tuple[NodeId, ...] = problem.nodes
        self.n = len(self.nodes)
        self.index_of: Dict[NodeId, int] = {
            node: index for index, node in enumerate(self.nodes)
        }
        self.tokens = tuple(sorted(problem.tokens))
        self.k = len(self.tokens)
        self.token_index: Dict[object, int] = {
            token: index for index, token in enumerate(self.tokens)
        }
        self.full_mask = (1 << self.k) - 1

        # Per-node knowledge bitmasks from the initial distribution.
        know: List[int] = []
        know_count: List[int] = []
        token_index = self.token_index
        for node in self.nodes:
            mask = 0
            for token in problem.initial_knowledge[node]:
                mask |= 1 << token_index[token]
            know.append(mask)
            know_count.append(len(problem.initial_knowledge[node]))
        self.know = know
        self.know_count = know_count
        self.incomplete = sum(1 for count in know_count if count < self.k)

        self.adj: List[int] = [0] * self.n
        self.events = EventLog()
        self.per_node_counts: List[int] = [0] * self.n
        self.per_round: List[int] = []
        self.kind_counts: Dict[str, int] = {}
        self.total_messages = 0

        # Per-edge history (single-source edge classification).
        self.edge_inserted: Dict[int, int] = {}
        self.edge_token_round: Dict[int, int] = {}

        self._previous_ids: FrozenSet[int] = frozenset()
        self._last_raw_edges: Optional[object] = None
        self._last_ids: Optional[FrozenSet[int]] = None

        # Mirror the Simulator's RNG derivation order exactly: the algorithm
        # stream is spawned first (the deterministic family never draws from
        # it), then the adversary stream, so the adversary sees the same
        # randomness under either backend.
        base_rng = ensure_rng(seed)
        self.algorithm_rng = spawn_rng(base_rng, "algorithm")
        self.adversary_rng = spawn_rng(base_rng, "adversary")

        n = self.n
        nodes = self.nodes
        self.trace = _BitsetTrace(
            nodes,
            lambda eid: (nodes[eid // n], nodes[eid % n]),
            keep_history=keep_trace,
        )

        self.setup()

    # -- subclass hooks ----------------------------------------------------

    def setup(self) -> None:
        """Algorithm-specific state initialization (after the shared state)."""

    def play_round(self, round_index: int) -> int:
        """Play one round; returns the number of messages it used."""
        raise NotImplementedError

    # -- shared machinery --------------------------------------------------

    def _edge_ids_for_round(self, round_index: int) -> FrozenSet[int]:
        raw = self.adversary.edges_for_round(round_index, None)
        # Schedule-replaying adversaries return the same frozenset object for
        # repeated rounds; skip re-normalizing it.
        if raw is self._last_raw_edges and self._last_ids is not None:
            return self._last_ids
        index_of = self.index_of
        n = self.n
        ids: Set[int] = set()
        add = ids.add
        for u, v in raw:
            iu = index_of.get(u)
            iv = index_of.get(v)
            if iu is None or iv is None:
                raise ConfigurationError(
                    f"edge ({u}, {v}) has an endpoint outside the node set"
                )
            if iu == iv:
                raise ConfigurationError(f"self-loop edges are not allowed: ({u}, {v})")
            add(iu * n + iv if iu < iv else iv * n + iu)
        frozen = frozenset(ids)
        if isinstance(raw, frozenset):
            self._last_raw_edges = raw
            self._last_ids = frozen
        return frozen

    def _is_connected(self, ids: FrozenSet[int]) -> bool:
        n = self.n
        parent = list(range(n))
        components = n
        for eid in ids:
            a, b = divmod(eid, n)
            while parent[a] != a:
                parent[a] = parent[parent[a]]
                a = parent[a]
            while parent[b] != b:
                parent[b] = parent[parent[b]]
                b = parent[b]
            if a != b:
                parent[b] = a
                components -= 1
                if components == 1:
                    return True
        return components == 1

    def _advance_graph(self, round_index: int) -> None:
        current = self._edge_ids_for_round(round_index)
        previous = self._previous_ids
        inserted = frozenset(current - previous)
        removed = frozenset(previous - current)
        self.trace.record_ids(current, inserted, removed)
        if self.require_connected and self.n > 1 and not self._is_connected(current):
            raise AdversaryViolationError(
                f"adversary produced a disconnected graph in round {round_index}"
            )
        adj = self.adj
        n = self.n
        for eid in inserted:
            a, b = divmod(eid, n)
            adj[a] |= 1 << b
            adj[b] |= 1 << a
        for eid in removed:
            a, b = divmod(eid, n)
            adj[a] ^= 1 << b
            adj[b] ^= 1 << a
        if self.track_edge_history:
            edge_inserted = self.edge_inserted
            edge_token_round = self.edge_token_round
            for eid in inserted:
                edge_inserted[eid] = round_index
                # A reinserted edge starts a fresh history (see
                # UnicastAlgorithm.on_topology).
                edge_token_round.pop(eid, None)
        self._previous_ids = current

    def count(self, kind: str, amount: int) -> None:
        """Add ``amount`` messages of ``kind`` to the by-kind totals."""
        if amount:
            self.kind_counts[kind] = self.kind_counts.get(kind, 0) + amount

    def learn(self, round_index: int, node_index: int, token_bit_index: int) -> bool:
        """Record node ``node_index`` learning token ``token_bit_index``."""
        bit = 1 << token_bit_index
        if self.know[node_index] & bit:
            return False
        self.know[node_index] |= bit
        self.know_count[node_index] += 1
        if self.know_count[node_index] == self.k:
            self.incomplete -= 1
        self.events.record(
            round_index, self.nodes[node_index], self.tokens[token_bit_index]
        )
        return True

    def run(self) -> ExecutionResult:
        self.adversary.reset(self.problem, self.adversary_rng)
        completed = self.incomplete == 0
        rounds_played = 0
        while not completed and rounds_played < self.max_rounds:
            round_index = rounds_played + 1
            self._advance_graph(round_index)
            round_messages = self.play_round(round_index)
            self.per_round.append(round_messages)
            self.total_messages += round_messages
            rounds_played = round_index
            completed = self.incomplete == 0

        per_node = {
            self.nodes[index]: count
            for index, count in enumerate(self.per_node_counts)
            if count
        }
        statistics = MessageStatistics(
            communication_model=self.algorithm.communication_model,
            total_messages=self.total_messages,
            messages_by_kind=dict(self.kind_counts),
            per_round_messages=list(self.per_round),
            per_node_messages=per_node,
        )
        return ExecutionResult(
            algorithm_name=self.algorithm.name,
            communication_model=self.algorithm.communication_model,
            problem=self.problem,
            completed=completed,
            rounds=rounds_played,
            messages=statistics,
            trace=self.trace,
            events=self.events,
            adversary_name=getattr(
                self.adversary, "name", type(self.adversary).__name__
            ),
        )


class _FloodingExecution(_FastExecution):
    """Phase-based flooding: one global token per phase, holders broadcast.

    Round ``r`` floods token ``(r - 1) // phase_length`` (in sorted token
    order); every node whose knowledge bit is set broadcasts once, and every
    neighbour of a holder learns the token.  The holder set is one node
    bitmask, so a round is a popcount, a union of adjacency masks and a
    handful of bit updates.
    """

    def setup(self) -> None:
        self.phase_length = self.algorithm.phase_length_for(self.n)
        self._current_phase = -1
        self._holders_mask = 0

    def play_round(self, round_index: int) -> int:
        phase = (round_index - 1) // self.phase_length
        if phase >= self.k:
            return 0
        token_bit = 1 << phase
        if phase != self._current_phase:
            self._current_phase = phase
            holders = 0
            for index, mask in enumerate(self.know):
                if mask & token_bit:
                    holders |= 1 << index
            self._holders_mask = holders
        holders = self._holders_mask
        if not holders:
            return 0
        broadcasters = _bit_indices(holders)
        messages = len(broadcasters)
        self.count(_KIND_TOKEN, messages)
        per_node = self.per_node_counts
        adj = self.adj
        reach = 0
        for index in broadcasters:
            per_node[index] += 1
            reach |= adj[index]
        learners = reach & ~holders
        if learners:
            know = self.know
            know_count = self.know_count
            events = self.events
            nodes = self.nodes
            token = self.tokens[phase]
            k = self.k
            mask = learners
            while mask:
                low = mask & -mask
                index = low.bit_length() - 1
                mask ^= low
                know[index] |= token_bit
                know_count[index] += 1
                if know_count[index] == k:
                    self.incomplete -= 1
                events.record(round_index, nodes[index], token)
            self._holders_mask = holders | learners
        return messages


class _SingleSourceExecution(_FastExecution):
    """Single-Source-Unicast (Algorithm 1) on bitmask state.

    Mirrors :class:`~repro.algorithms.single_source.SingleSourceUnicastAlgorithm`
    exactly: completeness announcements to newly seen neighbours, one-round
    request/answer exchanges, and the new > idle > contributive edge
    priority for assigning token requests, with the per-edge history kept as
    ``edge id -> round`` dicts.
    """

    track_edge_history = True

    def setup(self) -> None:
        sources = self.problem.sources
        if len(sources) != 1:
            raise ConfigurationError(
                "SingleSourceUnicastAlgorithm requires a single-source problem; "
                f"got {len(sources)} sources (use MultiSourceUnicastAlgorithm instead)"
            )
        source = sources[0]
        if self.problem.initial_knowledge[source] != frozenset(self.problem.tokens):
            raise ConfigurationError("the source node must initially hold all k tokens")
        n = self.n
        self.informed: List[int] = [0] * n
        self.known_complete: List[int] = [0] * n
        self.answers: List[Dict[int, int]] = [{} for _ in range(n)]
        self.req_prev: List[Optional[Dict[int, int]]] = [None] * n
        self.req_cur: List[Optional[Dict[int, int]]] = [None] * n

    def play_round(self, round_index: int) -> int:
        n = self.n
        k = self.k
        adj = self.adj
        know = self.know
        know_count = self.know_count
        full_mask = self.full_mask
        informed = self.informed
        known_complete = self.known_complete
        answers = self.answers
        req_prev = self.req_prev
        req_cur: List[Optional[Dict[int, int]]] = [None] * n
        edge_inserted = self.edge_inserted
        edge_token_round = self.edge_token_round
        per_node = self.per_node_counts
        deliveries: List[Optional[List[Tuple[int, int, int]]]] = [None] * n

        token_count = 0
        completeness_count = 0
        request_count = 0

        for v in range(n):
            neighbors = adj[v]
            if know_count[v] == k:
                # Complete node: announce completeness once per neighbour,
                # then answer last round's requests.
                pending_answers = answers[v]
                informed_mask = informed[v]
                to_visit = neighbors
                while to_visit:
                    low = to_visit & -to_visit
                    u = low.bit_length() - 1
                    to_visit ^= low
                    if not (informed_mask >> u) & 1:
                        informed_mask |= 1 << u
                        completeness_count += 1
                        per_node[v] += 1
                        box = deliveries[u]
                        if box is None:
                            box = deliveries[u] = []
                        box.append((v, _TAG_COMPLETENESS, 0))
                    else:
                        answer = pending_answers.get(u)
                        if answer is not None:
                            token_count += 1
                            per_node[v] += 1
                            box = deliveries[u]
                            if box is None:
                                box = deliveries[u] = []
                            box.append((v, _TAG_TOKEN, answer))
                informed[v] = informed_mask
                if pending_answers:
                    answers[v] = {}
            else:
                # Incomplete node: skip tokens already guaranteed to arrive
                # (requested last round over a surviving edge), then assign
                # one distinct missing token per known-complete neighbour in
                # new > idle > contributive edge order.
                previous_requests = req_prev[v]
                pending_mask = 0
                if previous_requests:
                    for u, token_bit_index in previous_requests.items():
                        if (neighbors >> u) & 1:
                            pending_mask |= 1 << token_bit_index
                complete_neighbors = neighbors & known_complete[v]
                if not complete_neighbors:
                    continue
                new_edges: List[int] = []
                idle_edges: List[int] = []
                contributive_edges: List[int] = []
                to_visit = complete_neighbors
                while to_visit:
                    low = to_visit & -to_visit
                    u = low.bit_length() - 1
                    to_visit ^= low
                    eid = v * n + u if v < u else u * n + v
                    inserted_round = edge_inserted.get(eid, 0)
                    if inserted_round >= round_index - 1:
                        new_edges.append(u)
                    else:
                        token_round = edge_token_round.get(eid)
                        if token_round is not None and token_round >= inserted_round:
                            contributive_edges.append(u)
                        else:
                            idle_edges.append(u)
                sent: Optional[Dict[int, int]] = None
                missing = ~know[v] & full_mask
                for u in new_edges + idle_edges + contributive_edges:
                    token_bit_index = -1
                    while missing:
                        low = missing & -missing
                        candidate = low.bit_length() - 1
                        missing ^= low
                        if not (pending_mask >> candidate) & 1:
                            token_bit_index = candidate
                            break
                    if token_bit_index < 0:
                        break
                    request_count += 1
                    per_node[v] += 1
                    box = deliveries[u]
                    if box is None:
                        box = deliveries[u] = []
                    box.append((v, _TAG_REQUEST, token_bit_index))
                    if sent is None:
                        sent = req_cur[v] = {}
                    sent[u] = token_bit_index

        for u in range(n):
            box = deliveries[u]
            if not box:
                continue
            for sender, tag, value in box:
                if tag == _TAG_COMPLETENESS:
                    known_complete[u] |= 1 << sender
                elif tag == _TAG_TOKEN:
                    if self.learn(round_index, u, value):
                        eid = u * n + sender if u < sender else sender * n + u
                        edge_token_round[eid] = round_index
                else:  # _TAG_REQUEST
                    answers[u][sender] = value

        self.req_prev = req_cur
        self.count(_KIND_TOKEN, token_count)
        self.count(_KIND_COMPLETENESS, completeness_count)
        self.count(_KIND_REQUEST, request_count)
        return token_count + completeness_count + request_count


class _SpanningTreeExecution(_FastExecution):
    """Spanning-tree construction plus token pipelining on bitmask state.

    Mirrors :class:`~repro.algorithms.spanning_tree.SpanningTreeAlgorithm`:
    join-beacon flooding, parent acknowledgements, one-token-per-round
    convergecast toward the root and pipelined distribution to children,
    with tokens carried as sorted-order bit indices.
    """

    def setup(self) -> None:
        configured = self.algorithm.configured_root
        if configured is not None and configured in self.index_of:
            self.root = self.index_of[configured]
        else:
            self.root = 0  # nodes are sorted, so index 0 is the lowest ID
        n = self.n
        token_index = self.token_index
        self.parent: List[int] = [-1] * n
        self.parent[self.root] = self.root
        self.children: List[List[int]] = [[] for _ in range(n)]
        self.children_seen: List[Set[int]] = [set() for _ in range(n)]
        self.flood_pending: List[bool] = [False] * n
        self.flood_pending[self.root] = True
        self.pending_ack: List[int] = [-1] * n
        initial = self.problem.initial_knowledge
        self.up_queue: List[deque] = [
            deque(
                sorted(token_index[token] for token in initial[node])
                if index != self.root
                else ()
            )
            for index, node in enumerate(self.nodes)
        ]
        self.distribute: List[List[int]] = [[] for _ in range(n)]
        self.distribute_seen: List[int] = [0] * n
        self.down_progress: List[Dict[int, int]] = [{} for _ in range(n)]
        for token_bit_index in sorted(
            token_index[token] for token in initial[self.nodes[self.root]]
        ):
            self._add_to_distribution(self.root, token_bit_index)

    def _add_to_distribution(self, node_index: int, token_bit_index: int) -> None:
        bit = 1 << token_bit_index
        if self.distribute_seen[node_index] & bit:
            return
        self.distribute_seen[node_index] |= bit
        self.distribute[node_index].append(token_bit_index)

    def play_round(self, round_index: int) -> int:
        n = self.n
        adj = self.adj
        parent = self.parent
        root = self.root
        per_node = self.per_node_counts
        deliveries: List[Optional[List[Tuple[int, int, int]]]] = [None] * n

        token_count = 0
        control_count = 0

        for v in range(n):
            neighbors = adj[v]
            sends: Dict[int, List[Tuple[int, int, int]]] = {}

            # 1. Tree construction: flood the join beacon once, acknowledge
            #    the adopted parent.
            if self.flood_pending[v]:
                to_visit = neighbors
                while to_visit:
                    low = to_visit & -to_visit
                    u = low.bit_length() - 1
                    to_visit ^= low
                    control_count += 1
                    per_node[v] += 1
                    sends.setdefault(u, []).append((v, _TAG_JOIN, 0))
                self.flood_pending[v] = False
            ack_target = self.pending_ack[v]
            if ack_target >= 0 and (neighbors >> ack_target) & 1:
                control_count += 1
                per_node[v] += 1
                sends.setdefault(ack_target, []).append((v, _TAG_PARENT, 0))
                self.pending_ack[v] = -1

            # 2. Convergecast one token per round toward the parent.
            parent_of_v = parent[v]
            if (
                v != root
                and parent_of_v >= 0
                and (neighbors >> parent_of_v) & 1
                and self.up_queue[v]
            ):
                token_bit_index = self.up_queue[v].popleft()
                token_count += 1
                per_node[v] += 1
                sends.setdefault(parent_of_v, []).append(
                    (v, _TAG_TOKEN, token_bit_index)
                )

            # 3. Pipeline the distribution list down to each child.
            distribute = self.distribute[v]
            progress_map = self.down_progress[v]
            for child in self.children[v]:
                if not (neighbors >> child) & 1:
                    continue
                progress = progress_map.get(child, 0)
                if progress < len(distribute):
                    token_count += 1
                    per_node[v] += 1
                    sends.setdefault(child, []).append(
                        (v, _TAG_TOKEN, distribute[progress])
                    )
                    progress_map[child] = progress + 1

            # Flush in ascending-receiver order (the engine's delivery order);
            # since senders are visited ascending, each receiver's box ends up
            # in the reference inbox order.
            for u in sorted(sends):
                box = deliveries[u]
                if box is None:
                    box = deliveries[u] = []
                box.extend(sends[u])

        for u in range(n):
            box = deliveries[u]
            if not box:
                continue
            for sender, tag, value in box:
                if tag == _TAG_TOKEN:
                    self.learn(round_index, u, value)
                    if sender == parent[u]:
                        # Downward traffic: forward to all children.
                        self._add_to_distribution(u, value)
                    elif u == root:
                        self._add_to_distribution(u, value)
                    else:
                        self.up_queue[u].append(value)
                elif tag == _TAG_JOIN:
                    if parent[u] == -1:
                        parent[u] = sender
                        self.pending_ack[u] = sender
                        self.flood_pending[u] = True
                else:  # _TAG_PARENT
                    if sender not in self.children_seen[u]:
                        self.children_seen[u].add(sender)
                        self.children[u].append(sender)

        self.count(_KIND_TOKEN, token_count)
        self.count(_KIND_CONTROL, control_count)
        return token_count + control_count


#: Algorithm type -> fast execution implementation.  Exact types only: a
#: subclass may override behaviour the fast path does not model.
_FAST_IMPLEMENTATIONS: Dict[Type, Type[_FastExecution]] = {
    FloodingAlgorithm: _FloodingExecution,
    SingleSourceUnicastAlgorithm: _SingleSourceExecution,
    SpanningTreeAlgorithm: _SpanningTreeExecution,
}


@register_backend(
    "bitset",
    description=(
        "Integer-bitmask fast path for flooding, single-source and "
        "spanning-tree under oblivious adversaries."
    ),
)
class BitsetBackend(EngineBackend):
    """Bit-parallel execution of the deterministic token-forwarding family."""

    name = "bitset"

    def supports(self, problem, algorithm, adversary) -> Optional[str]:
        if type(algorithm) not in _FAST_IMPLEMENTATIONS:
            supported = ", ".join(
                sorted(impl.name for impl in _FAST_IMPLEMENTATIONS)
            )
            return (
                f"no bitset fast path for algorithm "
                f"{getattr(algorithm, 'name', type(algorithm).__name__)!r} "
                f"(fast paths: {supported})"
            )
        if not getattr(adversary, "oblivious", False):
            return (
                f"adversary {getattr(adversary, 'name', type(adversary).__name__)!r} "
                "is adaptive; the bitset backend does not build RoundObservations"
            )
        return None

    def run(
        self,
        problem,
        algorithm,
        adversary,
        *,
        max_rounds: Optional[int] = None,
        seed: SeedLike = None,
        require_connected: bool = True,
        keep_trace: bool = True,
    ) -> ExecutionResult:
        self.check_supports(problem, algorithm, adversary)
        implementation = _FAST_IMPLEMENTATIONS[type(algorithm)]
        execution = implementation(
            problem,
            algorithm,
            adversary,
            max_rounds=max_rounds,
            seed=seed,
            require_connected=require_connected,
            keep_trace=keep_trace,
        )
        return execution.run()
