"""The execution-backend protocol and registry.

An :class:`EngineBackend` turns one materialized scenario — a
``(problem, algorithm, adversary)`` triple plus a seed — into an
:class:`~repro.core.result.ExecutionResult`.  The reference backend is the
pure-Python :class:`~repro.core.engine.Simulator`; alternative backends may
execute the *same semantics* differently (bit-parallel state, numpy arrays,
sharded processes, native code) as long as the results they emit are
structurally identical to the reference.  The differential harness
(:mod:`repro.backends.differential`) checks exactly that.

Backends are registered under short stable names in
:data:`BACKEND_REGISTRY`; the scenario runner dispatches on
:attr:`~repro.scenarios.spec.ScenarioSpec.backend` and the CLI exposes the
names via ``--backend`` and ``python -m repro list``.  Registering a custom
backend is one decorator::

    from repro.backends import EngineBackend, register_backend

    @register_backend("my-backend")
    class MyBackend(EngineBackend):
        name = "my-backend"
        ...
"""

from __future__ import annotations

import abc
from typing import Optional

from repro.core.result import ExecutionResult
from repro.scenarios.registry import Registry
from repro.utils.rng import SeedLike
from repro.utils.validation import ConfigurationError

#: The backend used when a spec does not name one.
DEFAULT_BACKEND = "reference"

BACKEND_REGISTRY = Registry("backend")

register_backend = BACKEND_REGISTRY.register


class EngineBackend(abc.ABC):
    """One way of executing a materialized scenario.

    Backends are stateless between runs: every :meth:`run` call is an
    independent execution, and the registry constructs a fresh instance per
    dispatch.  The ``problem``/``algorithm``/``adversary`` objects passed in
    are consumed by a single execution (algorithms and adversaries hold
    per-execution state), exactly like handing them to the Simulator.
    """

    #: Registry name, mirrored on the class for introspection and messages.
    name: str = "backend"

    def supports(self, problem, algorithm, adversary) -> Optional[str]:
        """``None`` if this backend can run the scenario, else the reason not.

        The returned string is surfaced verbatim in error messages, so it
        should name the offending component ("no fast path for algorithm
        'x'", "adversary 'y' is adaptive", ...).
        """
        return None

    @abc.abstractmethod
    def run(
        self,
        problem,
        algorithm,
        adversary,
        *,
        max_rounds: Optional[int] = None,
        seed: SeedLike = None,
        require_connected: bool = True,
        keep_trace: bool = True,
        tracer=None,
    ) -> ExecutionResult:
        """Run one execution to completion (or the round limit).

        ``tracer`` is an optional :class:`repro.obs.Tracer`; backends that
        honour it run the round loop inside per-stage spans and attach a
        timing breakdown to the result.  ``None`` must cost nothing.
        """

    def check_supports(self, problem, algorithm, adversary) -> None:
        """Raise a :class:`ConfigurationError` if the scenario is unsupported."""
        reason = self.supports(problem, algorithm, adversary)
        if reason is not None:
            raise ConfigurationError(
                f"backend {self.name!r} cannot run this scenario: {reason}"
            )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(name={self.name!r})"


def get_backend(name: str) -> EngineBackend:
    """Instantiate the backend registered under ``name``.

    Raises a :class:`ConfigurationError` listing the known backends on a
    miss (the shared registry behaviour).
    """
    backend = BACKEND_REGISTRY.create(name)
    if not isinstance(backend, EngineBackend):
        raise ConfigurationError(
            f"backend {name!r} must derive from EngineBackend, "
            f"got {type(backend).__name__}"
        )
    return backend
