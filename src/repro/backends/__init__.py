"""Pluggable execution backends.

A backend is one way of executing a materialized scenario; all backends must
produce results structurally identical to the reference engine.  Importing
this package registers the built-in backends:

* ``reference`` — the pure-Python :class:`~repro.core.engine.Simulator`
  (supports everything; defines the semantics);
* ``bitset`` — an integer-bitmask fast path for the deterministic
  token-forwarding family (flooding, single-source, spanning-tree) under
  oblivious adversaries.

Select a backend per scenario (``ScenarioSpec(backend="bitset", ...)``,
``python -m repro run --backend bitset``) and check equivalence with the
differential harness (:mod:`repro.backends.differential`, ``python -m repro
verify-backend``).

The differential harness imports the scenario layer, which in turn imports
this package, so it is *not* re-exported here — import it as
``from repro.backends import differential`` (or via the CLI) after the
scenario layer is loaded.
"""

from repro.backends.base import (
    BACKEND_REGISTRY,
    DEFAULT_BACKEND,
    EngineBackend,
    get_backend,
    register_backend,
)
from repro.backends.bitset import BitsetBackend
from repro.backends.reference import ReferenceBackend

__all__ = [
    "BACKEND_REGISTRY",
    "DEFAULT_BACKEND",
    "EngineBackend",
    "get_backend",
    "register_backend",
    "BitsetBackend",
    "ReferenceBackend",
]
