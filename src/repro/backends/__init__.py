"""Pluggable execution backends.

A backend is one way of executing a materialized scenario; all backends must
produce results structurally identical to the reference engine.  Both
built-in backends assemble the same staged round kernel
(:mod:`repro.core.rounds`) and differ only in the knowledge representation
and program family they plug in.  Importing this package registers:

* ``reference`` — the kernel over the dict-of-sets
  :class:`~repro.core.state.MappingKnowledgeState`, driving each
  algorithm's real ``select``/``receive`` methods (supports everything;
  defines the semantics);
* ``bitset`` — the kernel over integer-bitmask state: native bit-level fast
  programs where algorithms provide them, the generic exchange path
  everywhere else; supports every registered algorithm under oblivious and
  adaptive adversaries;
* ``batch`` — the vectorized numpy kernel (:mod:`repro.batch`) running all
  repetitions of a scenario in lockstep lanes, falling back to the bitset
  kernel per repetition for adaptive or non-vectorizable scenarios.  Needs
  the ``repro[fast]`` optional extra.

Select a backend per scenario (``ScenarioSpec(backend="bitset", ...)``,
``python -m repro run --backend bitset``) and check equivalence with the
differential harness (:mod:`repro.backends.differential`, ``python -m repro
verify-backend``).

The differential harness imports the scenario layer, which in turn imports
this package, so it is *not* re-exported here — import it as
``from repro.backends import differential`` (or via the CLI) after the
scenario layer is loaded.
"""

from repro.backends.base import (
    BACKEND_REGISTRY,
    DEFAULT_BACKEND,
    EngineBackend,
    get_backend,
    register_backend,
)
from repro.backends.bitset import BitsetBackend
from repro.backends.reference import ReferenceBackend
from repro.batch.backend import BatchBackend

__all__ = [
    "BACKEND_REGISTRY",
    "DEFAULT_BACKEND",
    "EngineBackend",
    "get_backend",
    "register_backend",
    "BatchBackend",
    "BitsetBackend",
    "ReferenceBackend",
]
