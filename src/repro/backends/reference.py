"""The reference backend: the pure-Python round engine, unchanged.

Every other backend is validated against this one — it *defines* the
semantics.  It supports every algorithm/adversary combination the
:class:`~repro.core.engine.Simulator` accepts.
"""

from __future__ import annotations

from typing import Optional

from repro.backends.base import EngineBackend, register_backend
from repro.core.engine import Simulator
from repro.core.result import ExecutionResult
from repro.utils.rng import SeedLike


@register_backend(
    "reference",
    description="The pure-Python Simulator: supports everything, defines the semantics.",
)
class ReferenceBackend(EngineBackend):
    """Runs scenarios through the :class:`~repro.core.engine.Simulator`."""

    name = "reference"

    def run(
        self,
        problem,
        algorithm,
        adversary,
        *,
        max_rounds: Optional[int] = None,
        seed: SeedLike = None,
        require_connected: bool = True,
        keep_trace: bool = True,
        tracer=None,
    ) -> ExecutionResult:
        return Simulator(
            problem,
            algorithm,
            adversary,
            max_rounds=max_rounds,
            seed=seed,
            require_connected=require_connected,
            keep_trace=keep_trace,
            tracer=tracer,
        ).run()
