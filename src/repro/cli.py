"""Command-line interface.

``python -m repro`` exposes the most common workflows without writing any
code.  All commands are driven by the scenario registries
(:mod:`repro.scenarios`), so newly registered algorithms, adversaries and
problems show up automatically:

* ``run`` — execute one scenario (from flags or a spec JSON file) and print
  the paper's cost measures;
* ``sweep`` — expand a parameter grid into a batch of scenarios, run it
  (optionally across worker processes) and persist JSONL records;
* ``analyze`` — aggregate run records (from a JSONL file, a run-store
  directory or stdin) with confidence intervals, and optionally compare the
  measured scaling against the paper's bounds;
* ``report`` — render the full paper-vs-measured markdown report;
* ``verify-backend`` — differentially validate an execution backend against
  the reference engine on a seeded scenario grid covering every registered
  algorithm under oblivious and adaptive adversaries;
* ``bench`` — time the backends on the benchmark grid, write the perf
  trajectory, and optionally enforce a minimum fast-path speedup;
* ``list`` — enumerate the registered algorithms, adversaries, problems and
  execution backends with their tunable parameters (algorithms with a
  native bitset fast program are marked);
* ``trace`` — inspect JSONL trace files written by ``run``/``sweep``
  ``--trace``: ``trace summarize`` renders a per-backend, per-stage
  (Commit/Adversary/Delivery/Accounting) timing table;
* ``serve`` / ``submit`` / ``status`` / ``results`` / ``shutdown`` — the
  experiment service (:mod:`repro.service`): a long-running daemon whose
  job queue coalesces duplicate cells across clients and persists every
  record to a shared run store as it completes;
* ``table1`` — regenerate Table 1 (analytic bounds) for a given n;
* ``bounds`` — evaluate every theorem bound at a given (n, k, s).

Global flags (before the subcommand): ``-v``/``-vv`` raise the log level
to INFO/DEBUG, ``-q`` silences everything below ERROR, and ``--log-level``
sets it explicitly — all wired to the ``repro`` stdlib logger
(:mod:`repro.obs.logs`), so library warnings surface uniformly.

Examples::

    python -m repro run --algorithm single-source --adversary churn -n 20 -k 40
    python -m repro run --algorithm flooding --adversary static-random \\
        -n 128 -k 128 --backend bitset
    python -m repro run --spec scenario.json --json
    python -m repro verify-backend
    python -m repro list
    python -m repro sweep --algorithm single-source --adversary churn \\
        -n 16 -k 32 --grid problem.num_nodes=16,32,64 --repetitions 3 \\
        --workers 2 --output results.jsonl --store results-store
    python -m repro sweep --grid '{"num_nodes": [8, 16, 32]}' --json \\
        | python -m repro analyze --bounds
    python -m repro analyze results-store/ --group-by algorithm,n --format csv
    python -m repro report results-store/ --output report.md
    python -m repro table1 -n 4096
    python -m repro bounds -n 1024 -k 2048 -s 8
"""

from __future__ import annotations

import argparse
import ast
import json
import sys
from contextlib import contextmanager
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.analysis.bounds import (
    flooding_amortized_upper_bound,
    local_broadcast_lower_bound,
    multi_source_competitive_bound,
    oblivious_amortized_bound,
    single_source_competitive_bound,
    static_spanning_tree_amortized,
)
from repro.analysis.reporting import format_table, render_table1
from repro.api import Experiment, RunSet, load_runs
from repro.backends import BACKEND_REGISTRY, DEFAULT_BACKEND
from repro.scenarios import (
    ADVERSARY_REGISTRY,
    ALGORITHM_REGISTRY,
    PROBLEM_REGISTRY,
    ScenarioSpec,
    record_to_json_line,
    run_scenario,
    sweep,
)
from repro.scenarios.registry import Registry
from repro.scenarios.spec import _TOP_LEVEL_SWEEP_FIELDS
from repro.utils.validation import ConfigurationError, ReproError

#: Deprecated aliases kept for backwards compatibility: the registries are
#: the source of truth; these views expose ``name -> zero-argument factory``.
ALGORITHMS: Dict[str, Callable[[], object]] = {
    name: ALGORITHM_REGISTRY.get(name).create for name in ALGORITHM_REGISTRY.names()
}
ADVERSARIES: Dict[str, Callable[[], object]] = {
    name: ADVERSARY_REGISTRY.get(name).create for name in ADVERSARY_REGISTRY.names()
}

_DEFAULT_TOKENS = 40

_REGISTRY_PLURALS = {
    "algorithm": "algorithms",
    "adversary": "adversaries",
    "problem": "problems",
    "backend": "backends",
}


def _package_version() -> str:
    """The installed distribution version, falling back to the source tree's."""
    from importlib.metadata import PackageNotFoundError, version

    try:
        return version("repro")
    except PackageNotFoundError:
        import repro

        return repro.__version__


def build_parser() -> argparse.ArgumentParser:
    """Construct the top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'The Communication Cost of Information Spreading "
        "in Dynamic Networks' (ICDCS 2019).",
    )
    parser.add_argument(
        "--version",
        action="version",
        version=f"%(prog)s {_package_version()}",
        help="print the package version and exit",
    )
    parser.add_argument(
        "-v",
        "--verbose",
        action="count",
        default=0,
        help="raise the log level: -v shows INFO, -vv shows DEBUG",
    )
    parser.add_argument(
        "-q",
        "--quiet",
        action="store_true",
        help="silence library logging below ERROR",
    )
    parser.add_argument(
        "--log-level",
        default=None,
        metavar="LEVEL",
        help="explicit log level (DEBUG, INFO, WARNING, ERROR); overrides -v/-q",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    run = subparsers.add_parser(
        "run", help="run one scenario and print the cost measures"
    )
    _add_scenario_arguments(run)
    run.add_argument(
        "--spec",
        metavar="FILE",
        default=None,
        help="load the scenario from a ScenarioSpec JSON file instead of flags",
    )
    run.add_argument(
        "--json", action="store_true", help="emit the result record(s) as JSON lines"
    )
    run.add_argument(
        "--trace",
        metavar="FILE",
        default=None,
        help="write a JSONL trace (progress events + per-stage timings); "
        "inspect it with 'repro trace summarize FILE'",
    )

    sweep_parser = subparsers.add_parser(
        "sweep", help="run a parameter-grid sweep of scenarios, optionally in parallel"
    )
    _add_scenario_arguments(sweep_parser)
    sweep_parser.add_argument(
        "--grid",
        action="append",
        default=[],
        metavar="KEY=V1,V2,...",
        help="sweep dimension, e.g. problem.num_nodes=16,32,64 or seed=0,1,2 "
        "(repeatable; the cross product of all dimensions is run)",
    )
    sweep_parser.add_argument(
        "--repetitions", type=int, default=1, help="independently seeded runs per scenario"
    )
    sweep_parser.add_argument(
        "--workers", type=int, default=1, help="worker processes for the batch"
    )
    sweep_parser.add_argument(
        "--output", metavar="FILE", default=None, help="write records to a JSONL file"
    )
    sweep_parser.add_argument(
        "--store",
        metavar="DIR",
        default=None,
        help="merge records into a run-store directory (idempotent: re-running "
        "the same sweep adds nothing)",
    )
    sweep_parser.add_argument(
        "--json", action="store_true", help="print records as JSON lines instead of a table"
    )
    sweep_parser.add_argument(
        "--trace",
        metavar="FILE",
        default=None,
        help="write a JSONL trace (progress events + per-stage timings); "
        "inspect it with 'repro trace summarize FILE'",
    )

    analyze = subparsers.add_parser(
        "analyze",
        help="aggregate run records and compare the measured scaling to the paper bounds",
    )
    analyze.add_argument(
        "source",
        nargs="?",
        default="-",
        metavar="RUNS.jsonl|STORE/",
        help="records source: a JSONL file, a run-store directory, or '-' for stdin "
        "(default; lets 'repro sweep --json | repro analyze' pipe)",
    )
    _add_analysis_arguments(analyze)
    analyze.add_argument(
        "--bounds",
        action="store_true",
        help="append the paper-bound comparison (fitted exponents + verdicts)",
    )
    analyze.add_argument(
        "--format",
        choices=("text", "md", "csv", "json"),
        default="md",
        help="output format (default md)",
    )

    report = subparsers.add_parser(
        "report", help="render the full paper-vs-measured markdown report"
    )
    report.add_argument(
        "source",
        nargs="?",
        default="-",
        metavar="RUNS.jsonl|STORE/",
        help="records source: a JSONL file, a run-store directory, or '-' for stdin",
    )
    _add_analysis_arguments(report)
    report.add_argument(
        "--output", metavar="FILE", default=None, help="write the report to a file"
    )
    report.add_argument(
        "--title", default="Results report", help="report heading"
    )

    verify = subparsers.add_parser(
        "verify-backend",
        help="differentially validate a backend against the reference engine",
    )
    verify.add_argument(
        "--backend",
        default="bitset",
        metavar="NAME",
        help="candidate backend to validate (default bitset; validated against "
        "the registry after --import modules are loaded, so third-party "
        "backends work)",
    )
    verify.add_argument(
        "--reference",
        default=DEFAULT_BACKEND,
        metavar="NAME",
        help="backend treated as ground truth (default reference)",
    )
    verify.add_argument(
        "--import",
        dest="import_modules",
        action="append",
        default=[],
        metavar="MODULE",
        help="import a module that registers third-party backends before "
        "validating (repeatable)",
    )
    verify.add_argument(
        "--spec",
        metavar="FILE",
        default=None,
        help="validate one ScenarioSpec JSON file instead of the built-in grid",
    )
    verify.add_argument(
        "--json", action="store_true", help="emit the differential report as JSON"
    )

    list_parser = subparsers.add_parser(
        "list", help="list registered algorithms, adversaries, problems and backends"
    )
    list_parser.add_argument(
        "--json", action="store_true", help="emit the registry contents as JSON"
    )

    bench = subparsers.add_parser(
        "bench",
        help="time the backends on the benchmark grid and write the trajectory",
    )
    bench.add_argument(
        "--quick", action="store_true", help="run the CI-sized grid only"
    )
    bench.add_argument(
        "--repeat",
        type=int,
        default=1,
        help="timings per backend and grid point; the best is kept (default 1)",
    )
    bench.add_argument(
        "--output",
        metavar="FILE",
        default=None,
        help="write the trajectory JSON to a file",
    )
    bench.add_argument(
        "--min-speedup",
        type=float,
        default=None,
        metavar="FACTOR",
        help="fail (exit 1) unless the bitset backend is at least FACTOR times "
        "faster than reference on the grid's largest flooding scenario — the "
        "CI guard against silently losing the fast path",
    )
    bench.add_argument(
        "--sweeps",
        action="store_true",
        help="run the multi-repetition sweep grid instead: all repetitions of "
        "each scenario serially (bitset) vs the vectorized batch backend "
        "(needs the repro[fast] extra)",
    )
    bench.add_argument(
        "--min-batch-speedup",
        type=float,
        default=None,
        metavar="FACTOR",
        help="with --sweeps: fail (exit 1) unless the batch backend is at "
        "least FACTOR times faster than serial bitset on the grid's largest "
        "flooding sweep — the CI guard on the vectorized kernel",
    )
    bench.add_argument(
        "--max-obs-overhead",
        type=float,
        default=None,
        metavar="PCT",
        help="fail (exit 1) if the instrumented round loop (driven with no-op "
        "spans) is more than PCT percent slower than the uninstrumented loop "
        "on the flooding n=128 bitset cell — the CI guard that disabled "
        "tracing stays free",
    )
    bench.add_argument(
        "--track-memory",
        action="store_true",
        help="also record each timed run's tracemalloc allocation peak "
        "(roughly doubles allocation cost; timings stay comparable because "
        "every backend pays it equally)",
    )

    trace_parser = subparsers.add_parser(
        "trace", help="inspect JSONL trace files written by run/sweep --trace"
    )
    trace_sub = trace_parser.add_subparsers(dest="trace_command", required=True)
    summarize = trace_sub.add_parser(
        "summarize",
        help="render a per-backend, per-stage timing table from a trace file",
    )
    summarize.add_argument("file", metavar="TRACE.jsonl", help="trace file to read")
    summarize.add_argument(
        "--format",
        choices=("text", "md", "csv", "json"),
        default="text",
        help="output format (default text)",
    )

    warehouse_parser = subparsers.add_parser(
        "warehouse",
        help="maintain and query the sqlite index over a run store "
        "(the JSONL shards stay the source of truth)",
    )
    warehouse_sub = warehouse_parser.add_subparsers(
        dest="warehouse_command", required=True
    )
    wh_sync = warehouse_sub.add_parser(
        "sync",
        help="create the index if missing and fold in new/changed shards "
        "(unchanged shards are skipped via mtime+size watermarks)",
    )
    wh_sync.add_argument("store", metavar="STORE/", help="run-store directory")
    wh_rebuild = warehouse_sub.add_parser(
        "rebuild",
        help="drop the index database and re-derive it from the JSONL shards "
        "(the recovery path for corruption or schema bumps)",
    )
    wh_rebuild.add_argument("store", metavar="STORE/", help="run-store directory")
    wh_query = warehouse_sub.add_parser(
        "query",
        help="sync, then aggregate (or count / take a percentile) from the "
        "index; aggregation output is byte-identical to 'repro analyze STORE'",
    )
    wh_query.add_argument("store", metavar="STORE/", help="run-store directory")
    _add_analysis_arguments(wh_query)
    wh_query.add_argument(
        "--format",
        choices=("text", "md", "csv", "json"),
        default="md",
        help="output format (default md)",
    )
    for component in ("algorithm", "adversary", "problem"):
        wh_query.add_argument(
            f"--{component}",
            default=None,
            metavar="NAME",
            help=f"only records with this {component}",
        )
    wh_query.add_argument(
        "--count",
        action="store_true",
        help="print the matching record count instead of aggregating",
    )
    wh_query.add_argument(
        "--percentile",
        default=None,
        metavar="METRIC:Q",
        help="print the Q-th percentile (0..100) of a metric over the "
        "matching records, e.g. rounds:95",
    )
    wh_report = warehouse_sub.add_parser(
        "report",
        help="sync, then render the consolidated cross-experiment report "
        "(per algorithm x adversary tables with paper-bound verdicts)",
    )
    wh_report.add_argument("store", metavar="STORE/", help="run-store directory")
    _add_analysis_arguments(wh_report)
    wh_report.add_argument(
        "--format",
        choices=("text", "md", "csv", "json"),
        default="md",
        help="output format (default md; non-md renders the overview table)",
    )
    wh_report.add_argument(
        "--output", metavar="FILE", default=None, help="write the report to a file"
    )
    wh_report.add_argument(
        "--title",
        default="Consolidated warehouse report",
        help="report heading",
    )

    serve = subparsers.add_parser(
        "serve",
        help="run the experiment service daemon (async job queue over a socket)",
    )
    serve.add_argument(
        "--store",
        metavar="DIR",
        required=True,
        help="the shared run-store directory; submissions dedup against it "
        "and completed records persist into it as they land",
    )
    serve.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes executing cells (0 runs cells inline on one "
        "thread — useful for tests)",
    )
    serve.add_argument(
        "--import",
        dest="import_modules",
        action="append",
        default=[],
        metavar="MODULE",
        help="import a module registering third-party components in the "
        "daemon and its workers (repeatable)",
    )
    serve.add_argument(
        "--timings",
        action="store_true",
        help="collect per-stage timings for every executed cell (streamed in "
        "CellCompleted events)",
    )
    _add_service_address_arguments(serve)

    submit = subparsers.add_parser(
        "submit",
        help="submit a sweep to a running service daemon and stream its progress",
    )
    _add_scenario_arguments(submit)
    submit.add_argument(
        "--grid",
        action="append",
        default=[],
        metavar="KEY=V1,V2,...",
        help="sweep dimension, exactly as for 'repro sweep' (repeatable)",
    )
    submit.add_argument(
        "--repetitions", type=int, default=1, help="independently seeded runs per scenario"
    )
    submit.add_argument(
        "--detach",
        action="store_true",
        help="submit and return immediately; follow up with 'repro status' "
        "and 'repro results JOB'",
    )
    submit.add_argument(
        "--json", action="store_true", help="print the job's records as JSON lines"
    )
    submit.add_argument(
        "--trace",
        metavar="FILE",
        default=None,
        help="write the streamed progress events to a JSONL trace file",
    )
    _add_service_address_arguments(submit)

    status = subparsers.add_parser(
        "status", help="show the jobs of a running service daemon"
    )
    status.add_argument(
        "job", nargs="?", default=None, metavar="JOB", help="show one job only"
    )
    status.add_argument(
        "--json", action="store_true", help="emit the status as JSON"
    )
    _add_service_address_arguments(status)

    results = subparsers.add_parser(
        "results", help="fetch a finished service job's records and render them"
    )
    results.add_argument("job", metavar="JOB", help="the job id, e.g. job-0001")
    results.add_argument(
        "--format",
        choices=("md", "text", "csv", "json"),
        default="md",
        help="md renders the full paper-vs-measured report (as 'repro report'); "
        "text/csv/json render the aggregate table (as 'repro analyze')",
    )
    results.add_argument(
        "--output", metavar="FILE", default=None, help="write the output to a file"
    )
    _add_service_address_arguments(results)

    shutdown = subparsers.add_parser(
        "shutdown",
        help="gracefully stop the service daemon: drain in-flight cells, "
        "reject new jobs, exit",
    )
    _add_service_address_arguments(shutdown)

    table1 = subparsers.add_parser("table1", help="regenerate Table 1 for a given n")
    table1.add_argument("-n", "--nodes", type=int, default=4096)

    bounds = subparsers.add_parser("bounds", help="evaluate the theorem bounds at (n, k, s)")
    bounds.add_argument("-n", "--nodes", type=int, required=True)
    bounds.add_argument("-k", "--tokens", type=int, required=True)
    bounds.add_argument("-s", "--sources", type=int, default=1)
    return parser


def _add_scenario_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--algorithm", choices=ALGORITHM_REGISTRY.names(), default="single-source"
    )
    parser.add_argument(
        "--adversary", choices=ADVERSARY_REGISTRY.names(), default="churn"
    )
    parser.add_argument(
        "--problem",
        choices=PROBLEM_REGISTRY.names(),
        default=None,
        help="select the problem by registry name; -n/-k/-s map onto its matching "
        "parameters and --set problem.* overrides the rest (default: the problem "
        "is derived from -n/-k/-s/--random-placement)",
    )
    parser.add_argument("-n", "--nodes", type=int, default=20, help="number of nodes")
    parser.add_argument(
        "-k",
        "--tokens",
        type=int,
        default=None,
        help=f"number of tokens (default {_DEFAULT_TOKENS}; forced to n for n-gossip)",
    )
    parser.add_argument(
        "-s",
        "--sources",
        type=int,
        default=1,
        help="number of sources (use 0 for n-gossip, i.e. one token per node)",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--max-rounds", type=int, default=None)
    parser.add_argument(
        "--backend",
        choices=BACKEND_REGISTRY.names(),
        default=DEFAULT_BACKEND,
        help="execution backend (validated backends give identical results; "
        "'bitset' runs every algorithm and adversary class, with native "
        "fast programs where algorithms provide them — see 'repro list')",
    )
    parser.add_argument(
        "--random-placement",
        action="store_true",
        help="place each token at each node independently with probability 1/4 "
        "(the Section-2 lower-bound distribution)",
    )
    parser.add_argument(
        "--set",
        dest="overrides",
        action="append",
        default=[],
        metavar="SECTION.KEY=VALUE",
        help="override a component parameter, e.g. --set adversary.changes_per_round=3 "
        "(sections: problem, algorithm, adversary; repeatable)",
    )


def _add_service_address_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--socket",
        metavar="PATH",
        default=None,
        help="UNIX socket the daemon listens on (default .repro-service.sock)",
    )
    parser.add_argument(
        "--host",
        default=None,
        help="serve/connect over TCP on this host instead of a UNIX socket",
    )
    parser.add_argument(
        "--port",
        type=int,
        default=None,
        help="TCP port (with --host; 0 lets the daemon pick one)",
    )


def _add_analysis_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--group-by",
        default=None,
        metavar="AXIS[,AXIS...]",
        help="group-by axes: record fields (n, k, s, seed, ...), component names "
        "(algorithm, adversary, problem) or dotted parameters "
        "(problem.num_nodes); default algorithm,adversary,n,k",
    )
    parser.add_argument(
        "--metrics",
        default=None,
        metavar="METRIC[,METRIC...]",
        help="metrics to summarize (default total_messages, amortized_messages, "
        "rounds, topological_changes, amortized_adversary_competitive)",
    )
    parser.add_argument(
        "--x-axis",
        default="n",
        metavar="AXIS",
        help="sweep axis the scaling exponents are fitted against (default n)",
    )


def _parse_value(text: str) -> Any:
    """Parse a CLI value: Python literal if possible, bare string otherwise."""
    try:
        return ast.literal_eval(text)
    except (SyntaxError, ValueError):
        return text


def _parse_overrides(assignments: Sequence[str]) -> Dict[str, Dict[str, Any]]:
    sections: Dict[str, Dict[str, Any]] = {"problem": {}, "algorithm": {}, "adversary": {}}
    for assignment in assignments:
        key, separator, value = assignment.partition("=")
        section, _, param = key.partition(".")
        if not separator or section not in sections or not param:
            raise ConfigurationError(
                f"invalid --set {assignment!r}: expected SECTION.KEY=VALUE with "
                f"SECTION one of {sorted(sections)}"
            )
        sections[section][param] = _parse_value(value)
    return sections


def _normalize_grid_key(key: str) -> str:
    # Bare keys that are not spec fields are shorthand for problem parameters
    # (``num_nodes`` etc.); spec fields come from the sweep implementation so
    # the two never drift apart.
    if "." in key or key in _TOP_LEVEL_SWEEP_FIELDS:
        return key
    return f"problem.{key}"


def _parse_grid(dimensions: Sequence[str]) -> Dict[str, List[Any]]:
    grid: Dict[str, List[Any]] = {}
    for dimension in dimensions:
        if dimension.lstrip().startswith("{"):
            # JSON form: --grid '{"num_nodes": [8, 16, 32], "seed": [0, 1]}'.
            try:
                payload = json.loads(dimension)
            except json.JSONDecodeError as error:
                raise ConfigurationError(f"invalid --grid JSON: {error}") from error
            if not isinstance(payload, dict):
                raise ConfigurationError(
                    f"--grid JSON must be an object of key -> value list, got {payload!r}"
                )
            for key, values in payload.items():
                if not isinstance(values, list):
                    values = [values]
                grid[_normalize_grid_key(key.strip())] = values
            continue
        key, separator, values_text = dimension.partition("=")
        if not separator or not key or not values_text:
            raise ConfigurationError(
                f"invalid --grid {dimension!r}: expected KEY=V1,V2,... or a JSON object"
            )
        grid[_normalize_grid_key(key.strip())] = [
            _parse_value(value) for value in values_text.split(",")
        ]
    return grid


def _problem_from_dimensions(args: argparse.Namespace) -> Tuple[str, Dict[str, Any]]:
    """Map the historical -n/-k/-s/--random-placement flags to a problem spec."""
    tokens = args.tokens if args.tokens is not None else _DEFAULT_TOKENS
    if args.random_placement:
        return "random-placement", {
            "num_nodes": args.nodes,
            "num_tokens": tokens,
            "seed": args.seed,
        }
    if args.sources == 0:
        if args.tokens is not None and args.tokens != args.nodes:
            raise ConfigurationError(
                f"--sources 0 selects n-gossip, which forces k = n; "
                f"drop -k or pass -k {args.nodes} (got -k {args.tokens} with -n {args.nodes})"
            )
        return "n-gossip", {"num_nodes": args.nodes}
    if args.sources <= 1:
        return "single-source", {"num_nodes": args.nodes, "num_tokens": tokens}
    return "multi-source", {
        "num_nodes": args.nodes,
        "num_sources": args.sources,
        "num_tokens": tokens,
        "seed": args.seed,
    }


def _named_problem_params(args: argparse.Namespace) -> Dict[str, Any]:
    """Map the -n/-k/-s flags onto whichever parameters the problem accepts."""
    entry = PROBLEM_REGISTRY.get(args.problem)
    params: Dict[str, Any] = {}
    if entry.accepts("num_nodes"):
        params["num_nodes"] = args.nodes
    if entry.accepts("num_tokens"):
        params["num_tokens"] = args.tokens if args.tokens is not None else _DEFAULT_TOKENS
    if entry.accepts("num_sources"):
        params["num_sources"] = max(args.sources, 1)
    return params


def _spec_from_args(args: argparse.Namespace, *, repetitions: int = 1) -> ScenarioSpec:
    overrides = _parse_overrides(args.overrides)
    if args.problem is not None:
        problem_name = args.problem
        problem_params = _named_problem_params(args)
        problem_params.update(overrides["problem"])
    else:
        problem_name, problem_params = _problem_from_dimensions(args)
        problem_params.update(overrides["problem"])
    adversary_params = dict(overrides["adversary"])
    adversary_entry = ADVERSARY_REGISTRY.get(args.adversary)
    # Adversaries that must know the node count (e.g. static-random) pick it
    # up from the problem dimensions unless given explicitly.
    if "num_nodes" not in adversary_params and any(
        info.name == "num_nodes" and info.required for info in adversary_entry.parameters()
    ):
        adversary_params["num_nodes"] = problem_params.get("num_nodes", args.nodes)
    return ScenarioSpec(
        problem=problem_name,
        problem_params=problem_params,
        algorithm=args.algorithm,
        algorithm_params=overrides["algorithm"],
        adversary=args.adversary,
        adversary_params=adversary_params,
        seed=args.seed,
        repetitions=repetitions,
        max_rounds=args.max_rounds,
        backend=args.backend,
    )


def _print_result_table(spec: ScenarioSpec, result) -> None:
    rows = [
        ["scenario", spec.label],
        ["algorithm", result.algorithm_name],
        ["adversary", result.adversary_name],
        ["communication model", result.communication_model.value],
        ["nodes (n)", result.num_nodes],
        ["tokens (k)", result.num_tokens],
        ["sources (s)", result.problem.num_sources],
        ["completed", result.completed],
        ["rounds", result.rounds],
        ["total messages", result.total_messages],
        ["topological changes TC(E)", result.topological_changes],
        ["amortized messages / token", round(result.amortized_messages(), 3)],
        ["1-competitive cost", round(result.adversary_competitive_messages(), 3)],
        [
            "amortized 1-competitive / token",
            round(result.amortized_adversary_competitive_messages(), 3),
        ],
        ["token learnings", result.token_learnings()],
    ]
    print(format_table(["metric", "value"], rows))


#: (namespace attribute, parser default, flag spelling) for every scenario
#: flag that ``--spec`` supersedes; used to reject contradictory usage.
_SPEC_INCOMPATIBLE_FLAGS = [
    ("algorithm", "single-source", "--algorithm"),
    ("adversary", "churn", "--adversary"),
    ("problem", None, "--problem"),
    ("nodes", 20, "-n/--nodes"),
    ("tokens", None, "-k/--tokens"),
    ("sources", 1, "-s/--sources"),
    ("seed", 0, "--seed"),
    ("max_rounds", None, "--max-rounds"),
    ("random_placement", False, "--random-placement"),
    ("overrides", [], "--set"),
    ("backend", DEFAULT_BACKEND, "--backend"),
]


def _reject_scenario_flags_with_spec(args: argparse.Namespace) -> None:
    offending = [
        flag
        for attribute, default, flag in _SPEC_INCOMPATIBLE_FLAGS
        if getattr(args, attribute) != default
    ]
    if offending:
        raise ConfigurationError(
            "--spec defines the complete scenario; drop the conflicting "
            f"flag(s): {', '.join(offending)}"
        )


@contextmanager
def _trace_observer(path: Optional[str]):
    """A context yielding the observer tuple for ``--trace`` (empty without it)."""
    if path is None:
        yield ()
        return
    from repro.obs import TraceWriter

    with TraceWriter(path) as writer:
        yield (writer,)


def command_run(args: argparse.Namespace) -> int:
    """Thin adapter over :mod:`repro.api` for one scenario."""
    if args.spec is not None:
        _reject_scenario_flags_with_spec(args)
        with open(args.spec, "r", encoding="utf-8") as handle:
            spec = ScenarioSpec.from_json(handle.read())
    else:
        spec = _spec_from_args(args)

    if not args.json and args.spec is None:
        # The rich single-execution table needs the full ExecutionResult
        # (communication model, per-class names, ...), which records do not
        # carry — this is the one direct call into the api's cell executor.
        import time

        from repro.obs import (
            CellCompleted,
            CellStarted,
            RunFinished,
            TimingTracer,
            TraceWriter,
        )

        tracer = TimingTracer() if args.trace else None
        started = time.perf_counter()
        result = run_scenario(spec, tracer=tracer)
        seconds = time.perf_counter() - started
        if args.trace:
            # One synthetic cell, so single runs and sweeps share one trace
            # vocabulary and 'repro trace summarize' reads both.
            with TraceWriter(args.trace) as write:
                write(CellStarted(0, 1, spec.label, 0, spec.backend))
                write(
                    CellCompleted(
                        0,
                        1,
                        spec.label,
                        0,
                        backend=spec.backend,
                        seconds=seconds,
                        completed=result.completed,
                        rounds=result.rounds,
                        total_messages=result.total_messages,
                        stage_seconds=result.timings,
                    )
                )
                write(RunFinished(cells=1, executed=1, cached=0, seconds=seconds))
        _print_result_table(spec, result)
        return 0 if result.completed else 1

    experiment = Experiment.from_specs([spec])
    with _trace_observer(args.trace) as observers:
        if observers:
            experiment = experiment.observe(*observers, timings=True)
        runset = experiment.run()
        if args.json:
            for record in runset:
                print(record_to_json_line(record))
        else:
            print(_records_table(runset.records()))
    return 0 if runset.completed else 1


_RECORD_COLUMNS = [
    "scenario",
    "n",
    "k",
    "s",
    "repetition",
    "completed",
    "rounds",
    "total_messages",
    "amortized_messages",
    "topological_changes",
]


def _records_table(records: Sequence[Mapping[str, Any]]) -> str:
    rows = []
    for record in records:
        row = []
        for column in _RECORD_COLUMNS:
            value = record.get(column, "")
            if isinstance(value, float):
                value = round(value, 3)
            row.append(value)
        rows.append(row)
    return format_table(_RECORD_COLUMNS, rows)


def _resync_adversary_num_nodes(
    spec: ScenarioSpec, grid: Mapping[str, Sequence[Any]], overrides: Mapping[str, Mapping[str, Any]]
) -> ScenarioSpec:
    """Follow a swept problem.num_nodes into an auto-injected adversary num_nodes.

    ``_spec_from_args`` copies the node count into adversaries that require
    it *before* grid expansion; when the grid then sweeps the problem's node
    count, the stale copy would make every non-default grid point fail.  An
    explicitly set value (``--set adversary.num_nodes`` or a grid dimension)
    is the user's choice and is left alone.
    """
    if "adversary.num_nodes" in grid or "num_nodes" in overrides["adversary"]:
        return spec
    problem_nodes = spec.problem_params.get("num_nodes")
    if (
        problem_nodes is None
        or "num_nodes" not in spec.adversary_params
        or spec.adversary_params["num_nodes"] == problem_nodes
    ):
        return spec
    return spec.with_params(adversary={"num_nodes": problem_nodes})


def _sweep_specs(args: argparse.Namespace) -> List[ScenarioSpec]:
    """The expanded spec batch of a sweep/submit invocation's flags."""
    base = _spec_from_args(args, repetitions=args.repetitions)
    grid = _parse_grid(args.grid)
    overrides = _parse_overrides(args.overrides)
    return [
        _resync_adversary_num_nodes(spec, grid, overrides) for spec in sweep(base, grid)
    ]


def command_sweep(args: argparse.Namespace) -> int:
    """Thin adapter over :mod:`repro.api` for a parameter-grid batch.

    With ``--store`` the run is **incremental**: the plan consults the
    store and only executes the scenario×repetition cells it does not
    already hold, while the output still covers the complete batch.
    """
    import time

    from repro.obs import ProgressPrinter

    specs = _sweep_specs(args)
    experiment = Experiment.from_specs(specs)
    if args.store is not None:
        experiment = experiment.store(args.store)
    started = time.perf_counter()
    records = []
    with _trace_observer(args.trace) as trace_observers:
        # Progress goes to stderr (live line on a TTY, one summary line
        # otherwise), so stdout stays pipeable JSON/tables.
        experiment = experiment.observe(
            ProgressPrinter(label="sweep"),
            *trace_observers,
            timings=args.trace is not None,
        )
        runset = experiment.run(workers=args.workers)
        sink = open(args.output, "w", encoding="utf-8") if args.output else None
        try:
            # Stream: records arrive as cells complete, so the JSONL file (and
            # --json stdout) hold partial output if the batch is interrupted.
            for record in runset:
                records.append(record)
                if sink is not None:
                    sink.write(record_to_json_line(record) + "\n")
                    sink.flush()
                if args.json:
                    print(record_to_json_line(record))
        finally:
            if sink is not None:
                sink.close()
    elapsed = time.perf_counter() - started
    if not args.json:
        print(_records_table(records))
        print(f"\n{len(records)} record(s) from {len(specs)} scenario(s)", end="")
        print(f" -> {args.output}" if args.output else "")
        if args.store is not None:
            print(
                f"store {args.store}: {runset.stored_count} added, "
                f"{runset.cached_count} already present "
                f"({runset.executed_count} executed)"
            )
        print(
            f"total runtime: {elapsed:.2f}s "
            f"({runset.executed_count} executed, {runset.cached_count} cached)"
        )
        if args.trace is not None:
            print(f"trace -> {args.trace}")
    return 0 if all(record["completed"] for record in records) else 1


def _split_option(value: Optional[str]) -> Optional[List[str]]:
    if value is None:
        return None
    parts = [part.strip() for part in value.split(",") if part.strip()]
    if not parts:
        raise ConfigurationError(f"expected a comma-separated list, got {value!r}")
    return parts


def _load_runset(source: str) -> RunSet:
    """A :class:`repro.api.RunSet` over a file, store directory or stdin."""
    from repro.results import iter_records

    if source == "-":
        records = list(iter_records(sys.stdin, source="<stdin>"))
        if not records:
            raise ConfigurationError(
                "no records on stdin; pipe 'repro sweep --json' into this command "
                "or pass a JSONL file / run-store directory"
            )
        return RunSet.from_records(records)
    runset = load_runs(source)
    if not len(runset):
        raise ConfigurationError(f"{source} holds no records")
    return runset


def _warehouse_query(source: str) -> Optional[Any]:
    """The warehouse query API for a store source, or ``None`` to shard-scan.

    When ``source`` is a run-store directory carrying an index, sync it
    (skipping unchanged shards via watermarks, reported on stderr so
    stdout stays byte-identical to the index-less path) and answer from
    sqlite.  Everything else — stdin, JSONL files, stores without an
    index, corrupt indexes, failed syncs — falls back to shard scans.
    """
    if source == "-":
        return None
    from repro.results.store import is_store_path

    if not is_store_path(source):
        return None
    from repro.warehouse import open_index

    index = open_index(source)
    if index is None:
        return None
    try:
        stats = index.sync()
    except ReproError as error:
        print(
            f"warehouse sync failed ({error}); falling back to shard scans",
            file=sys.stderr,
        )
        return None
    print(stats.summary(source), file=sys.stderr)
    return index.query()


def command_analyze(args: argparse.Namespace) -> int:
    """Thin adapter: ``RunSet.aggregate(...).table()`` plus the verdicts."""
    group_by = _split_option(args.group_by)
    metrics = _split_option(args.metrics)
    query = _warehouse_query(args.source)
    if query is not None:
        from repro.results.aggregate import (
            DEFAULT_GROUP_BY,
            DEFAULT_METRICS,
            aggregate_columns,
        )
        from repro.results.report import rows_to_table

        chosen_by = list(group_by) if group_by is not None else list(DEFAULT_GROUP_BY)
        chosen_metrics = (
            list(metrics) if metrics is not None else list(DEFAULT_METRICS)
        )
        rows = query.aggregate(chosen_by, chosen_metrics)
        if not rows:
            raise ConfigurationError(f"{args.source} holds no records")
        print(rows_to_table(rows, aggregate_columns(chosen_by, chosen_metrics), args.format))
        if args.bounds:
            runset = RunSet.from_records(query.records())
            print()
            print(
                runset.aggregate(by=group_by, metrics=metrics)
                .compare(x_axis=args.x_axis)
                .table(args.format)
            )
        return 0
    runset = _load_runset(args.source)
    aggregated = runset.aggregate(by=group_by, metrics=metrics)
    print(aggregated.table(args.format))
    if args.bounds:
        print()
        print(aggregated.compare(x_axis=args.x_axis).table(args.format))
    return 0


def command_report(args: argparse.Namespace) -> int:
    """Thin adapter: the full ``RunSet.report(...)`` document."""
    query = _warehouse_query(args.source)
    if query is not None:
        records = query.records()
        if not records:
            raise ConfigurationError(f"{args.source} holds no records")
        runset = RunSet.from_records(records)
    else:
        runset = _load_runset(args.source)
    document = runset.report(
        by=_split_option(args.group_by),
        metrics=_split_option(args.metrics),
        x_axis=args.x_axis,
        title=args.title,
    )
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(document + "\n")
        print(f"wrote {args.output}")
    else:
        print(document)
    return 0


def command_warehouse(args: argparse.Namespace) -> int:
    """Maintain and query the sqlite index (see :mod:`repro.warehouse`)."""
    from repro import warehouse
    from repro.results.aggregate import (
        DEFAULT_GROUP_BY,
        DEFAULT_METRICS,
        aggregate_columns,
    )
    from repro.results.report import rows_to_table

    if args.warehouse_command == "rebuild":
        index, stats = warehouse.rebuild_index(args.store)
        print(
            f"rebuilt {index.path}: {index.count()} row(s) from "
            f"{stats.shards_read} shard(s) in {stats.seconds:.2f}s"
        )
        return 0
    # sync / query / report all start by creating-or-opening and syncing.
    index = warehouse.WarehouseIndex(args.store)
    stats = index.sync()
    if args.warehouse_command == "sync":
        print(stats.summary(args.store))
        return 0
    # Diagnostics on stderr: query/report stdout must stay byte-identical
    # to the index-less analyze path (asserted in CI).
    print(stats.summary(args.store), file=sys.stderr)
    query = index.query()
    if args.warehouse_command == "query":
        filters = {
            "algorithm": args.algorithm,
            "adversary": args.adversary,
            "problem": args.problem,
        }
        if args.count:
            print(query.count(**filters))
            return 0
        if args.percentile is not None:
            metric, sep, quantile = args.percentile.partition(":")
            if not sep or not metric:
                raise ConfigurationError(
                    f"--percentile wants METRIC:Q (e.g. rounds:95), "
                    f"got {args.percentile!r}"
                )
            try:
                q = float(quantile)
            except ValueError as error:
                raise ConfigurationError(
                    f"--percentile quantile must be a number, got {quantile!r}"
                ) from error
            print(query.percentile(metric, q, **filters))
            return 0
        group_by = _split_option(args.group_by) or list(DEFAULT_GROUP_BY)
        metrics = _split_option(args.metrics) or list(DEFAULT_METRICS)
        if any(value is not None for value in filters.values()):
            # Filtered aggregation goes through the records (the group
            # cache covers the whole store, not arbitrary subsets).
            records = query.records(**filters)
            if not records:
                raise ConfigurationError(f"{args.store} holds no matching records")
            aggregated = RunSet.from_records(records).aggregate(
                by=group_by, metrics=metrics
            )
            print(aggregated.table(args.format))
            return 0
        rows = query.aggregate(group_by, metrics)
        if not rows:
            raise ConfigurationError(f"{args.store} holds no records")
        print(rows_to_table(rows, aggregate_columns(group_by, metrics), args.format))
        return 0
    # warehouse report
    records = query.records()
    document = warehouse.render_consolidated_report(
        records,
        fmt=args.format,
        group_by=_split_option(args.group_by) or DEFAULT_GROUP_BY,
        metrics=_split_option(args.metrics) or DEFAULT_METRICS,
        x_axis=args.x_axis,
        title=args.title,
    )
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(document + "\n")
        print(f"wrote {args.output}")
    else:
        print(document)
    return 0


def command_verify_backend(args: argparse.Namespace) -> int:
    import importlib

    from repro.backends.differential import default_differential_specs, validate_backends

    for module_name in args.import_modules:
        try:
            importlib.import_module(module_name)
        except ImportError as error:
            raise ConfigurationError(
                f"cannot import backend module {module_name!r}: {error}"
            ) from error
    if args.spec is not None:
        with open(args.spec, "r", encoding="utf-8") as handle:
            specs = [ScenarioSpec.from_json(handle.read())]
    else:
        specs = default_differential_specs()
    report = validate_backends(
        specs, reference=args.reference, candidate=args.backend
    )
    if args.json:
        print(json.dumps(report.describe(), indent=2, sort_keys=True))
        return 0 if report.passed else 1
    rows = []
    for outcome in report.outcomes:
        status = "ok" if outcome.equal else ", ".join(
            difference.field for difference in outcome.differences
        )
        rows.append(
            [outcome.spec.label, outcome.repetition, outcome.seed, status]
        )
    print(format_table(["scenario", "repetition", "seed", "status"], rows))
    verdict = "PASS" if report.passed else "FAIL"
    print(
        f"\n{verdict}: {len(report.outcomes)} execution(s), "
        f"{len(report.failures)} mismatch(es) "
        f"({args.backend} vs {args.reference})"
    )
    return 0 if report.passed else 1


def command_list(args: argparse.Namespace) -> int:
    from repro.backends.bitset import fast_path_names
    from repro.batch.backend import batch_program_names

    registries: List[Registry] = [
        ALGORITHM_REGISTRY,
        ADVERSARY_REGISTRY,
        PROBLEM_REGISTRY,
        BACKEND_REGISTRY,
    ]
    # Capability discovery, not a hardcoded allowlist: the algorithms are
    # probed for native bit-level round programs and vectorized batch
    # programs.
    fast_paths = fast_path_names()
    batch_programs = batch_program_names()
    if args.json:
        payload = {
            _REGISTRY_PLURALS[registry.kind]: [entry.describe() for entry in registry.entries()]
            for registry in registries
        }
        payload["bitset_fast_paths"] = fast_paths
        payload["batch_programs"] = batch_programs
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    for registry in registries:
        print(f"{_REGISTRY_PLURALS[registry.kind]}:")
        for entry in registry.entries():
            parameters = ", ".join(
                f"{info.name}" + ("" if info.required else f"={info.default!r}")
                for info in entry.parameters()
            )
            suffix = f"  ({parameters})" if parameters else ""
            description = f" — {entry.description}" if entry.description else ""
            marker = ""
            if registry is ALGORITHM_REGISTRY:
                if entry.name in fast_paths:
                    marker += " [bitset fast path]"
                if entry.name in batch_programs:
                    marker += " [batch program]"
            print(f"  {entry.name}{description}{suffix}{marker}")
        print()
    return 0


def command_bench(args: argparse.Namespace) -> int:
    from repro.benchmark import (
        batch_speedup_gate,
        bench_store,
        obs_overhead_entry,
        obs_overhead_gate,
        run_benchmark,
        run_sweep_benchmark,
        speedup_gate,
    )

    if args.repeat < 1:
        raise ConfigurationError(f"--repeat must be at least 1, got {args.repeat}")
    if args.min_batch_speedup is not None and not args.sweeps:
        raise ConfigurationError("--min-batch-speedup requires --sweeps")
    if args.sweeps and args.min_speedup is not None:
        raise ConfigurationError(
            "--min-speedup gates the single-run grid; with --sweeps use "
            "--min-batch-speedup"
        )
    if args.max_obs_overhead is not None and args.max_obs_overhead <= 0:
        raise ConfigurationError(
            f"--max-obs-overhead must be positive, got {args.max_obs_overhead}"
        )
    if args.sweeps:
        payload = run_sweep_benchmark(
            quick=args.quick,
            repeat=args.repeat,
            progress=print,
            track_memory=args.track_memory,
        )
    else:
        payload = run_benchmark(
            quick=args.quick,
            repeat=args.repeat,
            store=bench_store(),
            progress=print,
            track_memory=args.track_memory,
        )
    if args.track_memory:
        peak = payload["metrics"]["gauges"].get("memory.peak_bytes")
        if peak is not None:
            print(f"peak memory: {peak / (1024 * 1024):.1f} MiB")
    if args.max_obs_overhead is not None:
        overhead = obs_overhead_entry(repeat=args.repeat)
        payload["obs_overhead"] = overhead
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {args.output}")
    if not all(entry["equal"] for entry in payload["entries"]):
        print("backend results diverged; see the differences fields", file=sys.stderr)
        return 1
    if not payload.get("parallel_groups", {"equal": True})["equal"]:
        print(
            "parallel group execution diverged from the serial-group baseline",
            file=sys.stderr,
        )
        return 1
    if args.sweeps and args.min_batch_speedup is not None:
        passed, message = batch_speedup_gate(
            payload["entries"], args.min_batch_speedup
        )
        print(message)
        if not passed:
            return 1
    if args.min_speedup is not None:
        passed, message = speedup_gate(payload["entries"], args.min_speedup)
        print(message)
        if not passed:
            return 1
    if args.max_obs_overhead is not None:
        passed, message = obs_overhead_gate(
            payload["obs_overhead"], args.max_obs_overhead
        )
        print(message)
        if not passed:
            return 1
    return 0


def command_trace(args: argparse.Namespace) -> int:
    """Inspect JSONL trace files (currently: ``summarize``)."""
    from repro.obs import read_trace, render_trace_summary, summarize_trace

    if args.trace_command != "summarize":  # pragma: no cover - argparse enforces
        raise ConfigurationError(f"unknown trace command {args.trace_command!r}")
    try:
        summary = summarize_trace(read_trace(args.file))
    except ValueError as error:
        raise ConfigurationError(str(error)) from error
    if not summary["backends"]:
        raise ConfigurationError(
            f"{args.file} holds no completed-cell events; was the run traced "
            f"with --trace and did any cell execute?"
        )
    print(render_trace_summary(summary, args.format))
    return 0


def _service_client(args: argparse.Namespace):
    """Connect to a running daemon at the address the flags describe."""
    from repro.service import ServiceClient

    try:
        return ServiceClient(
            socket_path=args.socket, host=args.host, port=args.port
        )
    except OSError as error:
        target = args.socket or (
            f"{args.host}:{args.port}" if args.host else ".repro-service.sock"
        )
        raise ConfigurationError(
            f"cannot connect to the repro service at {target} ({error}); "
            f"is 'repro serve' running?"
        ) from error


def command_serve(args: argparse.Namespace) -> int:
    """Run the experiment service daemon until shutdown."""
    import importlib

    from repro.service import ExperimentServer

    for module_name in args.import_modules:
        try:
            importlib.import_module(module_name)
        except ImportError as error:
            raise ConfigurationError(
                f"cannot import module {module_name!r}: {error}"
            ) from error
    server = ExperimentServer(
        args.store,
        workers=args.workers,
        socket=args.socket,
        host=args.host,
        port=args.port,
        extensions=tuple(args.import_modules),
        collect_timings=args.timings,
    )
    return server.run()


def command_submit(args: argparse.Namespace) -> int:
    """Submit a sweep to the daemon; stream its progress unless --detach."""
    from repro.obs import ProgressPrinter, RunFinished

    specs = _sweep_specs(args)
    client = _service_client(args)
    try:
        ack = client.submit(specs, watch=not args.detach)
        if args.detach:
            print(
                f"{ack['job']}: {ack['cells']} cell(s) "
                f"({ack['pending']} pending, {ack['cached']} cached); "
                f"follow with 'repro status {ack['job']}'"
            )
            return 0
        # The same renderer the in-process sweep path uses, fed from the
        # socket stream: live line on a TTY, one summary line otherwise.
        printer = ProgressPrinter(label="submit")
        finish: Optional[RunFinished] = None
        with _trace_observer(args.trace) as trace_observers:
            for event in client.events():
                printer.render(event)
                for observer in trace_observers:
                    observer(event)
                if isinstance(event, RunFinished):
                    finish = event
        records = client.results(ack["job"])
        if args.json:
            for record in records:
                print(record_to_json_line(record))
        else:
            print(_records_table(records))
            if finish is not None:
                print(
                    f"\n{ack['job']} done: {finish.cells} cell(s), "
                    f"{finish.executed} executed, {finish.cached} cached "
                    f"in {finish.seconds:.2f}s"
                )
            if args.trace is not None:
                print(f"trace -> {args.trace}")
        return 0 if all(record["completed"] for record in records) else 1
    finally:
        client.close()


def command_status(args: argparse.Namespace) -> int:
    """Show the daemon's job table (or one job)."""
    client = _service_client(args)
    try:
        jobs = client.status(args.job)
    finally:
        client.close()
    if args.json:
        print(json.dumps(jobs, indent=2, sort_keys=True))
        return 0
    columns = ["job", "state", "cells", "cached", "executed", "coalesced", "error"]
    rows = [[job.get(column, "") for column in columns] for job in jobs]
    print(format_table(columns, rows))
    return 0


def command_results(args: argparse.Namespace) -> int:
    """Fetch a finished job's records and render them like report/analyze."""
    client = _service_client(args)
    try:
        records = client.results(args.job)
    finally:
        client.close()
    runset = RunSet.from_records(records)
    if args.format == "md":
        document = runset.report(title=f"Results report — {args.job}")
    else:
        document = runset.aggregate().table(args.format)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(document + "\n")
        print(f"wrote {args.output}")
    else:
        print(document)
    return 0


def command_shutdown(args: argparse.Namespace) -> int:
    """Ask the daemon to drain in-flight jobs and exit."""
    client = _service_client(args)
    try:
        ack = client.shutdown()
    finally:
        client.close()
    print(f"service shutting down ({ack['draining']} job(s) draining)")
    return 0


def command_table1(args: argparse.Namespace) -> int:
    print(render_table1(args.nodes))
    return 0


def command_bounds(args: argparse.Namespace) -> int:
    n, k, s = args.nodes, args.tokens, args.sources
    rows = [
        ["flooding amortized upper bound O(n^2)", flooding_amortized_upper_bound(n)],
        ["local broadcast lower bound Ω(n^2/log^2 n)", local_broadcast_lower_bound(n)],
        ["static spanning tree amortized O(n^2/k + n)", static_spanning_tree_amortized(n, k)],
        ["single-source competitive O(n^2 + nk)", single_source_competitive_bound(n, k)],
        ["multi-source competitive O(n^2 s + nk)", multi_source_competitive_bound(n, k, s)],
        ["oblivious amortized O(n^2.5 log^1.25 n / k^0.75)", oblivious_amortized_bound(n, k)],
    ]
    print(format_table(["bound", "value"], rows))
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    handlers = {
        "run": command_run,
        "sweep": command_sweep,
        "analyze": command_analyze,
        "report": command_report,
        "warehouse": command_warehouse,
        "verify-backend": command_verify_backend,
        "list": command_list,
        "bench": command_bench,
        "trace": command_trace,
        "serve": command_serve,
        "submit": command_submit,
        "status": command_status,
        "results": command_results,
        "shutdown": command_shutdown,
        "table1": command_table1,
        "bounds": command_bounds,
    }
    try:
        from repro.obs.logs import configure_logging

        try:
            configure_logging(args.log_level, args.verbose, args.quiet)
        except ValueError as error:
            raise ConfigurationError(str(error)) from error
        return handlers[args.command](args)
    except (ReproError, OSError) as error:
        # The unified hierarchy: every library failure is a ReproError
        # subclass (ConfigurationError, RecordValidationError, ...), so
        # user errors exit 2 with a one-line message, never a traceback.
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover - exercised via python -m repro
    sys.exit(main())
