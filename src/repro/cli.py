"""Command-line interface.

``python -m repro`` exposes the most common workflows without writing any
code:

* ``run`` — execute one algorithm against one adversary on a generated
  dissemination instance and print the paper's cost measures;
* ``table1`` — regenerate Table 1 (analytic bounds) for a given n;
* ``bounds`` — evaluate every theorem bound at a given (n, k, s).

Examples::

    python -m repro run --algorithm single-source --adversary churn -n 20 -k 40
    python -m repro run --algorithm flooding --adversary lower-bound -n 16 -k 16
    python -m repro table1 -n 4096
    python -m repro bounds -n 1024 -k 2048 -s 8
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict, List, Optional, Sequence

from repro.adversaries import (
    AdaptiveRewiringAdversary,
    ControlledChurnAdversary,
    LowerBoundAdversary,
    RandomChurnObliviousAdversary,
    RequestCuttingAdversary,
    StarRecenterAdversary,
)
from repro.algorithms import (
    FloodingAlgorithm,
    MultiSourceUnicastAlgorithm,
    NaiveUnicastAlgorithm,
    ObliviousMultiSourceAlgorithm,
    OneShotFloodingAlgorithm,
    SingleSourceUnicastAlgorithm,
    SpanningTreeAlgorithm,
)
from repro.analysis.bounds import (
    flooding_amortized_upper_bound,
    local_broadcast_lower_bound,
    multi_source_competitive_bound,
    oblivious_amortized_bound,
    single_source_competitive_bound,
    static_spanning_tree_amortized,
)
from repro.analysis.reporting import format_table, render_table1
from repro.core.engine import Simulator
from repro.core.problem import (
    n_gossip_problem,
    random_assignment_problem,
    single_source_problem,
    uniform_multi_source_problem,
)

ALGORITHMS: Dict[str, Callable[[], object]] = {
    "flooding": FloodingAlgorithm,
    "one-shot-flooding": OneShotFloodingAlgorithm,
    "naive-unicast": NaiveUnicastAlgorithm,
    "spanning-tree": SpanningTreeAlgorithm,
    "single-source": SingleSourceUnicastAlgorithm,
    "multi-source": MultiSourceUnicastAlgorithm,
    "oblivious": lambda: ObliviousMultiSourceAlgorithm(
        force_two_phase=True, center_probability=0.2
    ),
}

ADVERSARIES: Dict[str, Callable[[], object]] = {
    "churn": lambda: ControlledChurnAdversary(changes_per_round=5, edge_probability=0.25),
    "static": lambda: ControlledChurnAdversary(changes_per_round=0, edge_probability=0.25),
    "random": lambda: RandomChurnObliviousAdversary(edge_probability=0.25),
    "lower-bound": LowerBoundAdversary,
    "request-cutting": lambda: RequestCuttingAdversary(cut_fraction=0.7),
    "star-recenter": StarRecenterAdversary,
    "adaptive-rewiring": AdaptiveRewiringAdversary,
}


def build_parser() -> argparse.ArgumentParser:
    """Construct the top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'The Communication Cost of Information Spreading "
        "in Dynamic Networks' (ICDCS 2019).",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    run = subparsers.add_parser("run", help="run one execution and print the cost measures")
    run.add_argument("--algorithm", choices=sorted(ALGORITHMS), default="single-source")
    run.add_argument("--adversary", choices=sorted(ADVERSARIES), default="churn")
    run.add_argument("-n", "--nodes", type=int, default=20, help="number of nodes")
    run.add_argument("-k", "--tokens", type=int, default=40, help="number of tokens")
    run.add_argument(
        "-s",
        "--sources",
        type=int,
        default=1,
        help="number of sources (use 0 for n-gossip, i.e. one token per node)",
    )
    run.add_argument("--seed", type=int, default=0)
    run.add_argument("--max-rounds", type=int, default=None)
    run.add_argument(
        "--random-placement",
        action="store_true",
        help="place each token at each node independently with probability 1/4 "
        "(the Section-2 lower-bound distribution)",
    )

    table1 = subparsers.add_parser("table1", help="regenerate Table 1 for a given n")
    table1.add_argument("-n", "--nodes", type=int, default=4096)

    bounds = subparsers.add_parser("bounds", help="evaluate the theorem bounds at (n, k, s)")
    bounds.add_argument("-n", "--nodes", type=int, required=True)
    bounds.add_argument("-k", "--tokens", type=int, required=True)
    bounds.add_argument("-s", "--sources", type=int, default=1)
    return parser


def _build_problem(args: argparse.Namespace):
    if args.random_placement:
        return random_assignment_problem(args.nodes, args.tokens, seed=args.seed)
    if args.sources == 0:
        return n_gossip_problem(args.nodes)
    if args.sources <= 1:
        return single_source_problem(args.nodes, args.tokens)
    return uniform_multi_source_problem(args.nodes, args.sources, args.tokens, seed=args.seed)


def command_run(args: argparse.Namespace) -> int:
    problem = _build_problem(args)
    algorithm = ALGORITHMS[args.algorithm]()
    adversary = ADVERSARIES[args.adversary]()
    result = Simulator(
        problem, algorithm, adversary, seed=args.seed, max_rounds=args.max_rounds
    ).run()
    rows = [
        ["algorithm", result.algorithm_name],
        ["adversary", result.adversary_name],
        ["communication model", result.communication_model.value],
        ["nodes (n)", result.num_nodes],
        ["tokens (k)", result.num_tokens],
        ["sources (s)", problem.num_sources],
        ["completed", result.completed],
        ["rounds", result.rounds],
        ["total messages", result.total_messages],
        ["topological changes TC(E)", result.topological_changes],
        ["amortized messages / token", round(result.amortized_messages(), 3)],
        ["1-competitive cost", round(result.adversary_competitive_messages(), 3)],
        [
            "amortized 1-competitive / token",
            round(result.amortized_adversary_competitive_messages(), 3),
        ],
        ["token learnings", result.token_learnings()],
    ]
    print(format_table(["metric", "value"], rows))
    return 0 if result.completed else 1


def command_table1(args: argparse.Namespace) -> int:
    print(render_table1(args.nodes))
    return 0


def command_bounds(args: argparse.Namespace) -> int:
    n, k, s = args.nodes, args.tokens, args.sources
    rows = [
        ["flooding amortized upper bound O(n^2)", flooding_amortized_upper_bound(n)],
        ["local broadcast lower bound Ω(n^2/log^2 n)", local_broadcast_lower_bound(n)],
        ["static spanning tree amortized O(n^2/k + n)", static_spanning_tree_amortized(n, k)],
        ["single-source competitive O(n^2 + nk)", single_source_competitive_bound(n, k)],
        ["multi-source competitive O(n^2 s + nk)", multi_source_competitive_bound(n, k, s)],
        ["oblivious amortized O(n^2.5 log^1.25 n / k^0.75)", oblivious_amortized_bound(n, k)],
    ]
    print(format_table(["bound", "value"], rows))
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    handlers = {"run": command_run, "table1": command_table1, "bounds": command_bounds}
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover - exercised via python -m repro
    sys.exit(main())
