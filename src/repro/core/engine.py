"""The synchronous round engine: a façade over the staged round kernel.

:class:`Simulator` drives a token-forwarding algorithm against an adversary
on a dynamic network, following the model of Section 1.3:

* rounds are synchronous and 1-indexed; ``G_0`` is the empty graph;
* every round graph must be connected over the full node set;
* in the **local broadcast** model, nodes commit to their broadcast payloads
  *before* the adversary fixes the round graph (the strongly adaptive
  adversary sees those payloads — this is exactly the lower-bound model of
  Section 2); a broadcast counts as one message;
* in the **unicast** model, the adversary fixes the round graph first, nodes
  are then informed of their neighbours and may send a different message to
  each neighbour; every message counts separately.

The round structure itself — commit, adversary, delivery, accounting — lives
in :mod:`repro.core.rounds`; the Simulator assembles a
:class:`~repro.core.rounds.RoundKernel` over the reference
:class:`~repro.core.state.MappingKnowledgeState` and the algorithm-driven
exchange programs, which is the semantics every other backend is validated
against.  The engine records the dynamic-graph trace (for ``TC(E)``), all
messages and all token-learning events, and stops as soon as every node
knows every token (or a round limit is reached).
"""

from __future__ import annotations

from typing import Optional

from repro.algorithms.base import (
    LocalBroadcastAlgorithm,
    TokenForwardingAlgorithm,
    UnicastAlgorithm,
)
from repro.core.problem import DisseminationProblem
from repro.core.result import ExecutionResult
from repro.core.rounds import RoundKernel, default_round_limit
from repro.core.state import MappingKnowledgeState
from repro.utils.rng import SeedLike
from repro.utils.validation import ConfigurationError, require_positive_int

__all__ = ["Simulator", "default_round_limit", "run_execution"]


class Simulator:
    """Runs one execution of ``algorithm`` against ``adversary`` on ``problem``.

    Args:
        problem: the dissemination instance.
        algorithm: a :class:`LocalBroadcastAlgorithm` or :class:`UnicastAlgorithm`.
        adversary: any object following the adversary protocol of
            :mod:`repro.adversaries` (``oblivious`` flag, ``reset`` and
            ``edges_for_round``).
        max_rounds: round limit; defaults to :func:`default_round_limit`.
        seed: base seed; the algorithm and the adversary receive independent
            generators derived from it.
        require_connected: enforce per-round connectivity (the paper's model
            requirement).  Disable only for diagnostic experiments.
        keep_trace: when ``False`` the dynamic-graph trace drops per-round
            edge sets as it goes (``TC(E)``, removals and per-round
            connectivity are still computed incrementally), so long
            executions use O(current edges) memory instead of
            O(rounds x edges).  All headline result numbers are unaffected;
            only round-by-round trace queries become unavailable.
        tracer: a :class:`repro.obs.Tracer`; when enabled the result carries
            a per-stage timing breakdown.  ``None`` (default) disables
            tracing at zero cost.
    """

    def __init__(
        self,
        problem: DisseminationProblem,
        algorithm: TokenForwardingAlgorithm,
        adversary,
        *,
        max_rounds: Optional[int] = None,
        seed: SeedLike = None,
        require_connected: bool = True,
        keep_trace: bool = True,
        tracer=None,
    ) -> None:
        if not isinstance(algorithm, (LocalBroadcastAlgorithm, UnicastAlgorithm)):
            raise ConfigurationError(
                "algorithm must derive from LocalBroadcastAlgorithm or UnicastAlgorithm"
            )
        if max_rounds is not None:
            require_positive_int(max_rounds, "max_rounds")
        self._problem = problem
        self._algorithm = algorithm
        self._adversary = adversary
        self._max_rounds = max_rounds
        self._seed = seed
        self._require_connected = require_connected
        self._keep_trace = keep_trace
        self._tracer = tracer

    # -- public API --------------------------------------------------------

    def run(self) -> ExecutionResult:
        """Run the execution to completion (or the round limit) and return the result."""
        kernel = RoundKernel(
            self._problem,
            self._algorithm,
            self._adversary,
            state_factory=MappingKnowledgeState,
            allow_fast_programs=False,
            max_rounds=self._max_rounds,
            seed=self._seed,
            require_connected=self._require_connected,
            keep_trace=self._keep_trace,
            tracer=self._tracer,
        )
        return kernel.run()


def run_execution(
    problem: DisseminationProblem,
    algorithm: TokenForwardingAlgorithm,
    adversary,
    *,
    max_rounds: Optional[int] = None,
    seed: SeedLike = None,
) -> ExecutionResult:
    """Convenience wrapper: construct a :class:`Simulator` and run it once."""
    simulator = Simulator(
        problem, algorithm, adversary, max_rounds=max_rounds, seed=seed
    )
    return simulator.run()
