"""The synchronous round engine.

:class:`Simulator` drives a token-forwarding algorithm against an adversary
on a dynamic network, following the model of Section 1.3:

* rounds are synchronous and 1-indexed; ``G_0`` is the empty graph;
* every round graph must be connected over the full node set;
* in the **local broadcast** model, nodes commit to their broadcast payloads
  *before* the adversary fixes the round graph (the strongly adaptive
  adversary sees those payloads — this is exactly the lower-bound model of
  Section 2); a broadcast counts as one message;
* in the **unicast** model, the adversary fixes the round graph first, nodes
  are then informed of their neighbours and may send a different message to
  each neighbour; every message counts separately.

The engine records the dynamic-graph trace (for ``TC(E)``), all messages and
all token-learning events, and stops as soon as every node knows every token
(or a round limit is reached).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Mapping, Optional, Tuple

from repro.algorithms.base import (
    LocalBroadcastAlgorithm,
    TokenForwardingAlgorithm,
    UnicastAlgorithm,
)
from repro.core.comm import CommunicationModel
from repro.core.events import EventLog
from repro.core.messages import Payload, ReceivedMessage
from repro.core.metrics import MessageAccountant
from repro.core.observation import RoundObservation, SentRecord
from repro.core.problem import DisseminationProblem
from repro.core.result import ExecutionResult
from repro.dynamics.connectivity import is_connected
from repro.dynamics.graph_sequence import DynamicGraphTrace
from repro.utils.ids import NodeId
from repro.utils.rng import SeedLike, ensure_rng, spawn_rng
from repro.utils.validation import (
    AdversaryViolationError,
    ConfigurationError,
    ProtocolViolationError,
    require_positive_int,
)


def default_round_limit(problem: DisseminationProblem) -> int:
    """A generous default round limit: well above the O(nk) bounds of the paper."""
    n, k = problem.num_nodes, problem.num_tokens
    return 10 * n * k + 10 * n + 100


class Simulator:
    """Runs one execution of ``algorithm`` against ``adversary`` on ``problem``.

    Args:
        problem: the dissemination instance.
        algorithm: a :class:`LocalBroadcastAlgorithm` or :class:`UnicastAlgorithm`.
        adversary: any object following the adversary protocol of
            :mod:`repro.adversaries` (``oblivious`` flag, ``reset`` and
            ``edges_for_round``).
        max_rounds: round limit; defaults to :func:`default_round_limit`.
        seed: base seed; the algorithm and the adversary receive independent
            generators derived from it.
        require_connected: enforce per-round connectivity (the paper's model
            requirement).  Disable only for diagnostic experiments.
        keep_trace: when ``False`` the dynamic-graph trace drops per-round
            edge sets as it goes (``TC(E)``, removals and per-round
            connectivity are still computed incrementally), so long
            executions use O(current edges) memory instead of
            O(rounds x edges).  All headline result numbers are unaffected;
            only round-by-round trace queries become unavailable.
    """

    def __init__(
        self,
        problem: DisseminationProblem,
        algorithm: TokenForwardingAlgorithm,
        adversary,
        *,
        max_rounds: Optional[int] = None,
        seed: SeedLike = None,
        require_connected: bool = True,
        keep_trace: bool = True,
    ) -> None:
        self._problem = problem
        self._algorithm = algorithm
        self._adversary = adversary
        if max_rounds is None:
            max_rounds = default_round_limit(problem)
        self._max_rounds = require_positive_int(max_rounds, "max_rounds")
        self._require_connected = require_connected
        self._keep_trace = keep_trace
        # Per-round invariants, hoisted out of the round loop: the node set
        # never changes during an execution, so neither membership checks nor
        # the inbox skeleton need to rebuild it every round.
        self._nodes: Tuple[NodeId, ...] = problem.nodes
        self._node_set = frozenset(problem.nodes)
        base_rng = ensure_rng(seed)
        self._algorithm_rng = spawn_rng(base_rng, "algorithm")
        self._adversary_rng = spawn_rng(base_rng, "adversary")
        if not isinstance(algorithm, (LocalBroadcastAlgorithm, UnicastAlgorithm)):
            raise ConfigurationError(
                "algorithm must derive from LocalBroadcastAlgorithm or UnicastAlgorithm"
            )

    # -- public API --------------------------------------------------------

    def run(self) -> ExecutionResult:
        """Run the execution to completion (or the round limit) and return the result."""
        problem = self._problem
        algorithm = self._algorithm
        adversary = self._adversary

        algorithm.setup(problem, self._algorithm_rng)
        adversary.reset(problem, self._adversary_rng)

        trace = DynamicGraphTrace(problem.nodes, keep_history=self._keep_trace)
        accountant = MessageAccountant(algorithm.communication_model)
        events = EventLog()
        previous_messages: Tuple[SentRecord, ...] = ()

        completed = algorithm.all_complete()
        rounds_played = 0
        while not completed and rounds_played < self._max_rounds:
            round_index = rounds_played + 1
            accountant.begin_round()
            if algorithm.communication_model.is_broadcast:
                previous_messages = self._play_broadcast_round(
                    round_index, trace, accountant, previous_messages
                )
            else:
                previous_messages = self._play_unicast_round(
                    round_index, trace, accountant, previous_messages
                )
            accountant.end_round()
            for node, token in algorithm.drain_token_learnings():
                events.record(round_index, node, token)
            rounds_played = round_index
            completed = algorithm.all_complete()
            if not completed and algorithm.is_quiescent():
                # The algorithm will never send another message: no further
                # progress is possible, so stop instead of idling to the
                # round limit (the result is reported as not completed).
                break

        return ExecutionResult(
            algorithm_name=algorithm.name,
            communication_model=algorithm.communication_model,
            problem=problem,
            completed=completed,
            rounds=rounds_played,
            messages=accountant.snapshot(),
            trace=trace,
            events=events,
            adversary_name=getattr(adversary, "name", type(adversary).__name__),
        )

    # -- round implementations ----------------------------------------------

    def _observation(
        self,
        round_index: int,
        broadcast_payloads: Mapping[NodeId, Optional[Payload]],
        previous_messages: Tuple[SentRecord, ...],
    ) -> Optional[RoundObservation]:
        if getattr(self._adversary, "oblivious", False):
            return None
        algorithm = self._algorithm
        knowledge = {node: algorithm.known_tokens(node) for node in self._problem.nodes}
        return RoundObservation(
            round_index=round_index,
            knowledge=knowledge,
            broadcast_payloads=dict(broadcast_payloads),
            previous_messages=previous_messages,
            algorithm_name=algorithm.name,
            extra=algorithm.observation_extra(),
        )

    def _round_graph(
        self, round_index: int, observation: Optional[RoundObservation], trace: DynamicGraphTrace
    ) -> Dict[NodeId, FrozenSet[NodeId]]:
        edges = self._adversary.edges_for_round(round_index, observation)
        recorded = trace.record_round(edges)
        if self._require_connected and len(self._problem.nodes) > 1:
            if not is_connected(self._problem.nodes, recorded):
                raise AdversaryViolationError(
                    f"adversary produced a disconnected graph in round {round_index}"
                )
        return trace.neighbors(round_index)

    def _play_broadcast_round(
        self,
        round_index: int,
        trace: DynamicGraphTrace,
        accountant: MessageAccountant,
        previous_messages: Tuple[SentRecord, ...],
    ) -> Tuple[SentRecord, ...]:
        algorithm: LocalBroadcastAlgorithm = self._algorithm  # type: ignore[assignment]
        node_set = self._node_set

        broadcasts = algorithm.select_broadcasts(round_index)
        for node in broadcasts:
            if node not in node_set:
                raise ProtocolViolationError(f"broadcast scheduled for unknown node {node}")

        observation = self._observation(round_index, broadcasts, previous_messages)
        neighbors = self._round_graph(round_index, observation, trace)

        inbox: Dict[NodeId, List[ReceivedMessage]] = {node: [] for node in self._nodes}
        sent_records: List[SentRecord] = []
        for node in sorted(broadcasts):
            payload = broadcasts[node]
            if payload is None:
                continue
            accountant.count_broadcast(node, payload)
            sent_records.append(SentRecord(sender=node, receiver=None, payload=payload))
            for neighbor in neighbors[node]:
                inbox[neighbor].append(ReceivedMessage(sender=node, payload=payload))

        algorithm.receive_broadcasts(round_index, inbox, neighbors)
        return tuple(sent_records)

    def _play_unicast_round(
        self,
        round_index: int,
        trace: DynamicGraphTrace,
        accountant: MessageAccountant,
        previous_messages: Tuple[SentRecord, ...],
    ) -> Tuple[SentRecord, ...]:
        algorithm: UnicastAlgorithm = self._algorithm  # type: ignore[assignment]
        node_set = self._node_set

        observation = self._observation(round_index, {}, previous_messages)
        neighbors = self._round_graph(round_index, observation, trace)
        algorithm.on_topology(
            round_index,
            neighbors,
            trace.inserted_edges(round_index),
            trace.removed_edges(round_index),
        )

        sends = algorithm.select_messages(round_index, neighbors)
        inbox: Dict[NodeId, List[ReceivedMessage]] = {node: [] for node in self._nodes}
        sent_records: List[SentRecord] = []
        for sender in sorted(sends):
            if sender not in node_set:
                raise ProtocolViolationError(f"messages scheduled for unknown sender {sender}")
            for receiver in sorted(sends[sender]):
                if receiver not in neighbors[sender]:
                    raise ProtocolViolationError(
                        f"node {sender} tried to send to non-neighbour {receiver} "
                        f"in round {round_index}"
                    )
                for payload in sends[sender][receiver]:
                    accountant.count_unicast(sender, receiver, payload)
                    sent_records.append(
                        SentRecord(sender=sender, receiver=receiver, payload=payload)
                    )
                    inbox[receiver].append(ReceivedMessage(sender=sender, payload=payload))

        algorithm.receive_messages(round_index, inbox)
        return tuple(sent_records)


def run_execution(
    problem: DisseminationProblem,
    algorithm: TokenForwardingAlgorithm,
    adversary,
    *,
    max_rounds: Optional[int] = None,
    seed: SeedLike = None,
) -> ExecutionResult:
    """Convenience wrapper: construct a :class:`Simulator` and run it once."""
    simulator = Simulator(
        problem, algorithm, adversary, max_rounds=max_rounds, seed=seed
    )
    return simulator.run()
