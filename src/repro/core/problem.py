"""The k-token dissemination problem (Definition 1.2).

A :class:`DisseminationProblem` fixes the node set, the token universe and
the initial token placement.  Constructors are provided for the instances the
paper studies:

* the **single-source** case (all k tokens start at one node, Section 3.1);
* the **multi-source** case (arbitrary placement over ``s`` sources,
  Section 3.2);
* **n-gossip** (one token per node, the canonical small-k instance);
* a random placement used by the local-broadcast lower bound, where each
  token is given independently to each node so that nodes initially hold at
  most ``k/2`` tokens on average (Section 2).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.core.tokens import Token, make_tokens, tokens_by_source, validate_token_universe
from repro.utils.ids import NodeId, validate_nodes
from repro.utils.rng import SeedLike, ensure_rng
from repro.utils.validation import ConfigurationError, require_positive_int


@dataclass(frozen=True)
class DisseminationProblem:
    """An instance of the k-token dissemination problem.

    Attributes:
        nodes: the fixed node set ``V`` (sorted).
        tokens: the token universe ``T`` (``k = |T|``).
        initial_knowledge: the tokens initially known by each node.  Every
            token must be known by at least one node.
    """

    nodes: Tuple[NodeId, ...]
    tokens: Tuple[Token, ...]
    initial_knowledge: Mapping[NodeId, FrozenSet[Token]]

    def __post_init__(self) -> None:
        nodes = tuple(validate_nodes(self.nodes))
        object.__setattr__(self, "nodes", nodes)
        tokens = validate_token_universe(self.tokens)
        object.__setattr__(self, "tokens", tokens)
        node_set = set(nodes)
        token_set = set(tokens)
        knowledge: Dict[NodeId, FrozenSet[Token]] = {}
        for node in nodes:
            known = frozenset(self.initial_knowledge.get(node, frozenset()))
            unknown_tokens = known - token_set
            if unknown_tokens:
                raise ConfigurationError(
                    f"node {node} initially holds tokens outside the universe: {unknown_tokens}"
                )
            knowledge[node] = known
        for node in self.initial_knowledge:
            if node not in node_set:
                raise ConfigurationError(f"initial knowledge given for unknown node {node}")
        covered = set()
        for known in knowledge.values():
            covered |= known
        missing = token_set - covered
        if missing:
            raise ConfigurationError(f"tokens not initially placed at any node: {missing}")
        object.__setattr__(self, "initial_knowledge", knowledge)

    @property
    def num_nodes(self) -> int:
        """``n``."""
        return len(self.nodes)

    @property
    def num_tokens(self) -> int:
        """``k``."""
        return len(self.tokens)

    @property
    def sources(self) -> Tuple[NodeId, ...]:
        """The nodes that initially hold at least one token, sorted by ID."""
        return tuple(sorted(node for node, known in self.initial_knowledge.items() if known))

    @property
    def num_sources(self) -> int:
        """``s`` — the number of source nodes."""
        return len(self.sources)

    def initial_tokens_of(self, node: NodeId) -> FrozenSet[Token]:
        """The tokens initially placed at ``node``."""
        return self.initial_knowledge[node]

    def tokens_of_source(self, source: NodeId) -> Tuple[Token, ...]:
        """All tokens whose token identifier names ``source`` as origin."""
        return tuple(sorted(token for token in self.tokens if token.source == source))

    def required_token_learnings(self) -> int:
        """The number of token-learning events any correct execution must produce."""
        return sum(
            self.num_tokens - len(self.initial_knowledge[node]) for node in self.nodes
        )

    def describe(self) -> Dict[str, object]:
        """A compact dictionary summary used in experiment records."""
        return {
            "n": self.num_nodes,
            "k": self.num_tokens,
            "s": self.num_sources,
            "required_learnings": self.required_token_learnings(),
        }


def _node_range(num_nodes: int) -> List[NodeId]:
    require_positive_int(num_nodes, "num_nodes")
    return list(range(num_nodes))


def single_source_problem(
    num_nodes: int, num_tokens: int, source: NodeId = 0
) -> DisseminationProblem:
    """All ``num_tokens`` tokens start at a single ``source`` node (Section 3.1)."""
    nodes = _node_range(num_nodes)
    require_positive_int(num_tokens, "num_tokens")
    if source not in nodes:
        raise ConfigurationError(f"source {source} is not in 0..{num_nodes - 1}")
    tokens = make_tokens(source, num_tokens)
    knowledge = {source: frozenset(tokens)}
    return DisseminationProblem(tuple(nodes), tokens, knowledge)


def multi_source_problem(
    num_nodes: int,
    tokens_per_source: Mapping[NodeId, int],
) -> DisseminationProblem:
    """Tokens distributed over multiple sources: source ``a_i`` holds ``k_i`` tokens."""
    nodes = _node_range(num_nodes)
    if not tokens_per_source:
        raise ConfigurationError("tokens_per_source must not be empty")
    all_tokens: List[Token] = []
    knowledge: Dict[NodeId, FrozenSet[Token]] = {}
    for source in sorted(tokens_per_source):
        count = tokens_per_source[source]
        require_positive_int(count, f"tokens_per_source[{source}]")
        if source not in nodes:
            raise ConfigurationError(f"source {source} is not in 0..{num_nodes - 1}")
        tokens = make_tokens(source, count)
        all_tokens.extend(tokens)
        knowledge[source] = frozenset(tokens)
    return DisseminationProblem(tuple(nodes), tuple(all_tokens), knowledge)


def n_gossip_problem(num_nodes: int) -> DisseminationProblem:
    """One token per node (k = n, s = n): the canonical n-gossip instance."""
    nodes = _node_range(num_nodes)
    return multi_source_problem(num_nodes, {node: 1 for node in nodes})


def uniform_multi_source_problem(
    num_nodes: int, num_sources: int, num_tokens: int, seed: SeedLike = None
) -> DisseminationProblem:
    """``num_tokens`` tokens spread as evenly as possible over ``num_sources`` random sources."""
    rng = ensure_rng(seed)
    nodes = _node_range(num_nodes)
    require_positive_int(num_sources, "num_sources")
    require_positive_int(num_tokens, "num_tokens")
    if num_sources > num_nodes:
        raise ConfigurationError("num_sources cannot exceed num_nodes")
    if num_tokens < num_sources:
        raise ConfigurationError("num_tokens must be at least num_sources")
    sources = sorted(rng.sample(nodes, num_sources))
    base, extra = divmod(num_tokens, num_sources)
    counts = {
        source: base + (1 if position < extra else 0)
        for position, source in enumerate(sources)
    }
    return multi_source_problem(num_nodes, counts)


def random_assignment_problem(
    num_nodes: int,
    num_tokens: int,
    inclusion_probability: float = 0.25,
    seed: SeedLike = None,
) -> DisseminationProblem:
    """Each token is given independently to each node with the given probability.

    This is the initial distribution used in the local-broadcast lower bound
    (Section 2), which only requires that nodes initially hold at most ``k/2``
    tokens on average.  Token ``i`` is attributed to the lowest-ID node that
    holds it (or to node 0 if no node drew it), so the token universe remains
    well formed.
    """
    rng = ensure_rng(seed)
    nodes = _node_range(num_nodes)
    require_positive_int(num_tokens, "num_tokens")
    if not 0.0 <= inclusion_probability <= 1.0:
        raise ConfigurationError("inclusion_probability must lie in [0, 1]")

    holders: List[List[NodeId]] = []
    for _ in range(num_tokens):
        holding = [node for node in nodes if rng.random() < inclusion_probability]
        holders.append(holding)

    # Assign a nominal source per token (lowest-ID holder, or node 0).
    per_source_counter: Dict[NodeId, int] = {}
    tokens: List[Token] = []
    knowledge: Dict[NodeId, set] = {node: set() for node in nodes}
    for holding in holders:
        source = min(holding) if holding else nodes[0]
        per_source_counter[source] = per_source_counter.get(source, 0) + 1
        token = Token(source=source, index=per_source_counter[source])
        tokens.append(token)
        owners = holding if holding else [source]
        for node in owners:
            knowledge[node].add(token)
    frozen = {node: frozenset(known) for node, known in knowledge.items()}
    return DisseminationProblem(tuple(nodes), tuple(tokens), frozen)
