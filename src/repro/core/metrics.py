"""Message-complexity accounting.

Implements the cost measures of Section 1.3:

* **message complexity** (Definition 1.1) — total number of messages sent; a
  local broadcast counts as one message, unicast messages to different
  neighbours are counted separately;
* **amortized message complexity** — total messages divided by the number of
  tokens ``k``;
* **adversary-competitive message complexity** (Definition 1.3) — an
  algorithm has α-adversary-competitive message complexity ``M`` if its total
  message count is at most ``M + α · TC(E)`` for every execution.  For a
  measured execution we therefore report ``max(0, total - α · TC)`` as the
  adversary-adjusted cost.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.comm import CommunicationModel
from repro.core.messages import MessageKind, Payload
from repro.utils.ids import NodeId
from repro.utils.validation import ConfigurationError


@dataclass(frozen=True)
class MessageStatistics:
    """An immutable snapshot of message counts for a finished execution."""

    communication_model: CommunicationModel
    total_messages: int
    messages_by_kind: Dict[str, int]
    per_round_messages: List[int]
    per_node_messages: Dict[NodeId, int]

    def messages_of_kind(self, kind: MessageKind) -> int:
        """Messages of one kind (token / completeness / request / control)."""
        return self.messages_by_kind.get(kind.value, 0)

    def amortized(self, num_tokens: int) -> float:
        """Amortized message complexity: total messages per token."""
        if num_tokens <= 0:
            raise ConfigurationError("num_tokens must be positive")
        return self.total_messages / num_tokens

    def adversary_competitive(self, topological_changes: int, alpha: float = 1.0) -> float:
        """The α-adversary-competitive cost ``max(0, total - α · TC)`` (Definition 1.3)."""
        if alpha < 0:
            raise ConfigurationError("alpha must be non-negative")
        if topological_changes < 0:
            raise ConfigurationError("topological_changes must be non-negative")
        return max(0.0, self.total_messages - alpha * topological_changes)

    def amortized_adversary_competitive(
        self, num_tokens: int, topological_changes: int, alpha: float = 1.0
    ) -> float:
        """Adversary-competitive cost divided by the number of tokens."""
        if num_tokens <= 0:
            raise ConfigurationError("num_tokens must be positive")
        return self.adversary_competitive(topological_changes, alpha) / num_tokens


class MessageAccountant:
    """Mutable message counter with explicit model validation.

    Public building block for user code and tests that count messages
    outside an execution.  The round kernel itself counts through the
    index-based :class:`~repro.core.rounds.AccountingStage` (which fast
    programs increment in bulk); both produce the same
    :class:`MessageStatistics` shape.
    """

    def __init__(self, communication_model: CommunicationModel):
        self._model = communication_model
        self._total = 0
        self._by_kind: Dict[str, int] = {}
        self._per_round: List[int] = []
        self._per_node: Dict[NodeId, int] = {}
        self._current_round_count = 0
        self._round_open = False

    @property
    def communication_model(self) -> CommunicationModel:
        """The communication model messages are being counted under."""
        return self._model

    @property
    def total_messages(self) -> int:
        """Messages counted so far (including the currently open round)."""
        return self._total

    def begin_round(self) -> None:
        """Open accounting for the next round."""
        if self._round_open:
            raise ConfigurationError("begin_round called while a round is already open")
        self._round_open = True
        self._current_round_count = 0

    def end_round(self) -> int:
        """Close the current round and return the number of messages it used."""
        if not self._round_open:
            raise ConfigurationError("end_round called without begin_round")
        self._round_open = False
        self._per_round.append(self._current_round_count)
        return self._current_round_count

    def _count(self, sender: NodeId, kind: MessageKind) -> None:
        if not self._round_open:
            raise ConfigurationError("messages can only be counted inside an open round")
        self._total += 1
        self._current_round_count += 1
        self._by_kind[kind.value] = self._by_kind.get(kind.value, 0) + 1
        self._per_node[sender] = self._per_node.get(sender, 0) + 1

    def count_broadcast(self, sender: NodeId, payload: Payload) -> None:
        """Count one local broadcast (one message regardless of the neighbourhood size)."""
        if not self._model.is_broadcast:
            raise ConfigurationError("count_broadcast is only valid in the local broadcast model")
        self._count(sender, payload.kind)

    def count_unicast(self, sender: NodeId, receiver: NodeId, payload: Payload) -> None:
        """Count one unicast message from ``sender`` to ``receiver``."""
        if not self._model.is_unicast:
            raise ConfigurationError("count_unicast is only valid in the unicast model")
        if sender == receiver:
            raise ConfigurationError("a node cannot send a unicast message to itself")
        self._count(sender, payload.kind)

    def snapshot(self) -> MessageStatistics:
        """Freeze the current counters into an immutable statistics object."""
        return MessageStatistics(
            communication_model=self._model,
            total_messages=self._total,
            messages_by_kind=dict(self._by_kind),
            per_round_messages=list(self._per_round),
            per_node_messages=dict(self._per_node),
        )
