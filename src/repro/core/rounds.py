"""The staged round kernel: one execution core under every backend.

The paper's model (Section 1.3) defines a single round structure, and this
module is now the only place that implements it.  Each round passes through
four explicit stages, driven by :class:`RoundKernel`:

1. :class:`CommitStage` — in the **local broadcast** model, nodes commit to
   their broadcast payloads *before* the adversary fixes the round graph
   (the strongly adaptive adversary of Section 2 sees those payloads); in
   the **unicast** model nothing is committed here — nodes choose messages
   only after learning their neighbourhood.
2. :class:`AdversaryStage` — the adversary fixes the round graph ``E_r``.
   Adaptive adversaries receive a :class:`~repro.core.observation.RoundObservation`
   built lazily from the live execution state; oblivious adversaries receive
   ``None`` (obliviousness is enforced structurally, here).  The stage
   normalizes edges to integer ids, records the trace, validates per-round
   connectivity and maintains per-node adjacency bitmasks.
3. :class:`DeliveryStage` — messages are selected (unicast) and delivered,
   and every message is counted.
4. :class:`AccountingStage` — per-kind / per-round / per-node message
   counters and the token-learning event log (Definition 1.4).

What actually *runs* inside the stages is a :class:`RoundProgram`.  Two
program families exist:

* the **exchange programs** (:class:`BroadcastExchangeProgram`,
  :class:`UnicastExchangeProgram`) drive a real algorithm object through its
  ``select``/``receive`` interface — the reference semantics; they work with
  any :class:`~repro.core.state.KnowledgeState`;
* **fast programs** (:class:`FastRoundProgram` subclasses, defined next to
  each algorithm in :mod:`repro.algorithms`) re-express one algorithm's
  per-round knowledge delta directly on the bit-level state — the fast path
  used by the bitset backend.

Because both families run under the same kernel, the round structure, graph
handling, accounting and event ordering are shared by construction; the
differential harness (:mod:`repro.backends.differential`) then only has to
guard the per-algorithm delta logic.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, FrozenSet, List, Optional, Set, Tuple, Type

if TYPE_CHECKING:  # imported lazily at runtime: algorithm modules carry
    # their fast programs and import this module, so a module-level import
    # here would be circular.
    from repro.algorithms.base import TokenForwardingAlgorithm

from repro.core.comm import CommunicationModel
from repro.core.events import EventLog
from repro.core.messages import Payload, ReceivedMessage
from repro.core.metrics import MessageStatistics
from repro.core.observation import RoundObservation, SentRecord
from repro.core.problem import DisseminationProblem
from repro.core.result import ExecutionResult
from repro.core.state import (
    BitsetKnowledgeState,
    KnowledgeState,
    MappingKnowledgeState,
    edge_id,
)
from repro.core.tokens import Token
from repro.dynamics.graph_sequence import EdgeIdTrace
from repro.utils.ids import NodeId
from repro.utils.rng import SeedLike, ensure_rng, spawn_rng
from repro.utils.validation import (
    AdversaryViolationError,
    ConfigurationError,
    ProtocolViolationError,
    require_positive_int,
)


def default_round_limit(problem: DisseminationProblem) -> int:
    """A generous default round limit: well above the O(nk) bounds of the paper."""
    n, k = problem.num_nodes, problem.num_tokens
    return 10 * n * k + 10 * n + 100


# ---------------------------------------------------------------------------
# Stages
# ---------------------------------------------------------------------------


class AccountingStage:
    """Message counters and the token-learning event log of one execution.

    Counters are index-based (dense node indices) so fast programs can
    increment :attr:`per_node_counts` directly in their inner loops; the
    exchange programs go through :meth:`count`.  The stage also owns the
    :class:`~repro.core.events.EventLog`: after every round it drains the
    program's buffered token learnings, which fixes the event order to
    "delivery order within the round" for every program family.
    """

    def __init__(self, model: CommunicationModel, nodes: Tuple[NodeId, ...]) -> None:
        self.model = model
        self.nodes = nodes
        self.events = EventLog()
        self.total = 0
        self.kind_counts: Dict[str, int] = {}
        self.per_round: List[int] = []
        self.per_node_counts: List[int] = [0] * len(nodes)
        self._round_count = 0
        self._round_open = False

    def begin_round(self) -> None:
        if self._round_open:
            raise ConfigurationError("begin_round called while a round is already open")
        self._round_open = True
        self._round_count = 0

    def count(self, sender_index: int, kind_value: str) -> None:
        """Count one message of ``kind_value`` sent by node ``sender_index``."""
        self.total += 1
        self._round_count += 1
        self.kind_counts[kind_value] = self.kind_counts.get(kind_value, 0) + 1
        self.per_node_counts[sender_index] += 1

    def count_bulk(self, kind_value: str, amount: int) -> None:
        """Count ``amount`` messages of one kind (per-node counts are the
        caller's responsibility via :attr:`per_node_counts`)."""
        if amount:
            self.total += amount
            self._round_count += amount
            self.kind_counts[kind_value] = (
                self.kind_counts.get(kind_value, 0) + amount
            )

    def close_round(self, round_index: int, program: "RoundProgram") -> int:
        """End the round: record its message count, drain learning events."""
        if not self._round_open:
            raise ConfigurationError("close_round called without begin_round")
        self._round_open = False
        self.per_round.append(self._round_count)
        self.events.record_bulk(round_index, program.drain_learnings())
        return self._round_count

    def statistics(self) -> MessageStatistics:
        """Freeze the counters into an immutable statistics snapshot."""
        nodes = self.nodes
        per_node = {
            nodes[index]: count
            for index, count in enumerate(self.per_node_counts)
            if count
        }
        return MessageStatistics(
            communication_model=self.model,
            total_messages=self.total,
            messages_by_kind=dict(self.kind_counts),
            per_round_messages=list(self.per_round),
            per_node_messages=per_node,
        )


class CommitStage:
    """Stage 1: payload commitment *before* the round graph exists.

    Only the local broadcast model commits here (Section 1.3: nodes choose
    their broadcast without neighbourhood information).  In the unicast
    model the commitment is ``None`` — message selection happens inside the
    delivery stage, after the adversary fixed the graph.
    """

    def run(self, program: "RoundProgram", round_index: int) -> Optional[object]:
        if program.model.is_broadcast:
            return program.commit(round_index)
        return None


class AdversaryStage:
    """Stage 2: the adversary fixes ``E_r``; graph state is updated.

    Owns the :class:`~repro.dynamics.graph_sequence.EdgeIdTrace` and the
    per-node adjacency bitmasks shared by every program.  Oblivious
    adversaries never receive an observation — the stage builds one (from
    the program, lazily) only for adaptive adversaries.
    """

    def __init__(
        self,
        nodes: Tuple[NodeId, ...],
        index_of: Dict[NodeId, int],
        adversary,
        *,
        require_connected: bool,
        keep_trace: bool,
    ) -> None:
        self.nodes = nodes
        self.n = len(nodes)
        self.index_of = index_of
        self.adversary = adversary
        self.require_connected = require_connected
        self.observe = not getattr(adversary, "oblivious", False)
        #: The observation fields the adversary declared it reads (``None``
        #: = everything); programs materialize only these.
        self.observed_fields: Optional[FrozenSet[str]] = getattr(
            adversary, "observed_fields", None
        )
        n = self.n
        self.trace = EdgeIdTrace(
            nodes,
            lambda eid: (nodes[eid // n], nodes[eid % n]),
            keep_history=keep_trace,
        )
        self.adj: List[int] = [0] * n
        self.inserted_ids: FrozenSet[int] = frozenset()
        self.removed_ids: FrozenSet[int] = frozenset()
        self._previous_ids: FrozenSet[int] = frozenset()
        self._last_raw_edges: Optional[object] = None
        self._last_ids: Optional[FrozenSet[int]] = None
        #: The adversary's promise (if any) that its topology stops changing
        #: from this round on; lets :meth:`advance` skip the edge query for
        #: every later round.
        self._steady_after: Optional[int] = getattr(
            adversary, "steady_after_round", None
        )

    def _edge_ids_for_round(
        self, round_index: int, observation: Optional[RoundObservation]
    ) -> FrozenSet[int]:
        raw = self.adversary.edges_for_round(round_index, observation)
        # Schedule-replaying adversaries return the same frozenset object for
        # repeated rounds; skip re-normalizing it.
        if raw is self._last_raw_edges and self._last_ids is not None:
            return self._last_ids
        index_of = self.index_of
        n = self.n
        ids: Set[int] = set()
        add = ids.add
        for u, v in raw:
            iu = index_of.get(u)
            iv = index_of.get(v)
            if iu is None or iv is None:
                raise ConfigurationError(
                    f"edge ({u}, {v}) has an endpoint outside the node set"
                )
            if iu == iv:
                raise ConfigurationError(f"self-loop edges are not allowed: ({u}, {v})")
            add(edge_id(iu, iv, n))
        frozen = frozenset(ids)
        if isinstance(raw, frozenset):
            self._last_raw_edges = raw
            self._last_ids = frozen
        return frozen

    def _is_connected(self, ids: FrozenSet[int]) -> bool:
        n = self.n
        parent = list(range(n))
        components = n
        for eid in ids:
            a, b = divmod(eid, n)
            while parent[a] != a:
                parent[a] = parent[parent[a]]
                a = parent[a]
            while parent[b] != b:
                parent[b] = parent[parent[b]]
                b = parent[b]
            if a != b:
                parent[b] = a
                components -= 1
                if components == 1:
                    return True
        return components == 1

    def advance(
        self,
        round_index: int,
        program: "RoundProgram",
        commitment: Optional[object],
    ) -> None:
        """Fix and validate the round graph, update trace and adjacency."""
        steady_after = self._steady_after
        if steady_after is not None and round_index > steady_after:
            # The adversary promised a steady topology from ``steady_after``
            # on, and that round has already been played: the graph, its
            # validation and the adjacency are all unchanged.
            if self.inserted_ids:
                self.inserted_ids = frozenset()
            if self.removed_ids:
                self.removed_ids = frozenset()
            self.trace.record_unchanged()
            return
        observation = (
            program.observation(round_index, commitment) if self.observe else None
        )
        current = self._edge_ids_for_round(round_index, observation)
        previous = self._previous_ids
        if current is previous:
            # Schedule-replaying adversaries hand back the identical edge set
            # object round after round; skip the O(|E|) set differences and
            # the connectivity re-check — the set was validated when it was
            # first produced, and identical edges stay connected.
            inserted = removed = frozenset()
        else:
            inserted = frozenset(current - previous)
            removed = frozenset(previous - current)
            if self.require_connected and self.n > 1 and not self._is_connected(current):
                raise AdversaryViolationError(
                    f"adversary produced a disconnected graph in round {round_index}"
                )
        self.trace.record_ids(current, inserted, removed)
        adj = self.adj
        n = self.n
        for eid in inserted:
            a, b = divmod(eid, n)
            adj[a] |= 1 << b
            adj[b] |= 1 << a
        for eid in removed:
            a, b = divmod(eid, n)
            adj[a] ^= 1 << b
            adj[b] ^= 1 << a
        self.inserted_ids = inserted
        self.removed_ids = removed
        self._previous_ids = current

    def catch_up(self, target_round: int) -> None:
        """Advance the trace to ``target_round`` in one step.

        Only valid for rounds past the adversary's
        :attr:`~repro.adversaries.base.Adversary.steady_after_round` — the
        batch kernel uses this to stop stepping per-lane stages once every
        lane's topology has gone steady, then settles the traces here.
        """
        count = target_round - self.trace.num_rounds
        if count > 0:
            if self.inserted_ids:
                self.inserted_ids = frozenset()
            if self.removed_ids:
                self.removed_ids = frozenset()
            self.trace.record_unchanged_many(count)

    def neighbors_view(self) -> Dict[NodeId, FrozenSet[NodeId]]:
        """The current adjacency as the object-level mapping algorithms use."""
        nodes = self.nodes
        view: Dict[NodeId, FrozenSet[NodeId]] = {}
        for index, mask in enumerate(self.adj):
            neighbors = []
            while mask:
                low = mask & -mask
                neighbors.append(nodes[low.bit_length() - 1])
                mask ^= low
            view[nodes[index]] = frozenset(neighbors)
        return view


class DeliveryStage:
    """Stage 3: message selection (unicast), delivery and counting.

    Programs that declare ``track_edge_history`` get their per-edge
    insertion history refreshed here, before delivery, so the new / idle /
    contributive classification of Section 3.1.1 sees this round's graph.
    """

    def run(
        self,
        program: "RoundProgram",
        round_index: int,
        commitment: Optional[object],
    ) -> None:
        if getattr(program, "track_edge_history", False):
            program.update_edge_history(round_index)
        program.deliver(round_index, commitment)


# ---------------------------------------------------------------------------
# Programs
# ---------------------------------------------------------------------------


class RoundProgram:
    """What runs inside the kernel's stages for one execution.

    A program encapsulates one algorithm's per-round behaviour against a
    :class:`~repro.core.state.KnowledgeState`.  The kernel guarantees the
    call order ``commit`` (broadcast model only) → ``observation`` (adaptive
    adversaries only) → ``deliver`` → ``drain_learnings`` once per round.
    """

    #: Communication model; fixes the commit-before-graph vs graph-before-
    #: send stage ordering.
    model: CommunicationModel

    def setup(self) -> None:
        """One-time initialization before the first round."""

    def commit(self, round_index: int) -> object:
        """Commit broadcast payloads (local broadcast model only)."""
        raise NotImplementedError

    def observation(
        self, round_index: int, commitment: Optional[object]
    ) -> RoundObservation:
        """The observation a strongly adaptive adversary receives this round."""
        raise NotImplementedError

    def deliver(self, round_index: int, commitment: Optional[object]) -> None:
        """Select (unicast), deliver and count this round's messages."""
        raise NotImplementedError

    def completed(self) -> bool:
        """True iff the dissemination problem is solved."""
        raise NotImplementedError

    def is_quiescent(self) -> bool:
        """True iff the program will never send another message."""
        return False

    def drain_learnings(self) -> List[Tuple[NodeId, Token]]:
        """Token learnings of the round just played, in delivery order."""
        raise NotImplementedError


class _ExchangeProgram(RoundProgram):
    """Shared plumbing of the two algorithm-driven (reference) programs."""

    def __init__(self, kernel: "RoundKernel") -> None:
        self.kernel = kernel
        self.algorithm: "TokenForwardingAlgorithm" = kernel.algorithm
        self.model = self.algorithm.communication_model
        self._previous_messages: Tuple[SentRecord, ...] = ()

    def setup(self) -> None:
        kernel = self.kernel
        self.algorithm.setup(kernel.problem, kernel.algorithm_rng, state=kernel.state)

    def observation(
        self, round_index: int, commitment: Optional[object]
    ) -> RoundObservation:
        algorithm = self.algorithm
        kernel = self.kernel
        wants = kernel.wants_observation_field
        nodes = kernel.problem.nodes
        knowledge = (
            {node: algorithm.known_tokens(node) for node in nodes}
            if wants("knowledge")
            else {}
        )
        state = kernel.state
        index_of = kernel.index_of
        counts = (
            {node: state.known_count(index_of[node]) for node in nodes}
            if wants("knowledge_counts")
            else {}
        )
        payloads = (
            dict(commitment)
            if commitment is not None and wants("broadcast_payloads")
            else {}
        )
        return RoundObservation(
            round_index=round_index,
            knowledge=knowledge,
            broadcast_payloads=payloads,
            previous_messages=self._previous_messages,
            algorithm_name=algorithm.name,
            extra=algorithm.observation_extra() if wants("extra") else {},
            knowledge_counts=counts,
        )

    def completed(self) -> bool:
        return self.kernel.state.all_complete()

    def is_quiescent(self) -> bool:
        return self.algorithm.is_quiescent()

    def drain_learnings(self) -> List[Tuple[NodeId, Token]]:
        return self.algorithm.drain_token_learnings()


class BroadcastExchangeProgram(_ExchangeProgram):
    """Reference semantics of the local broadcast model, any algorithm."""

    def commit(self, round_index: int) -> Dict[NodeId, Optional[Payload]]:
        algorithm = self.algorithm
        broadcasts = algorithm.select_broadcasts(round_index)
        node_set = self.kernel.node_set
        for node in broadcasts:
            if node not in node_set:
                raise ProtocolViolationError(
                    f"broadcast scheduled for unknown node {node}"
                )
        return broadcasts

    def deliver(self, round_index: int, commitment: Optional[object]) -> None:
        broadcasts: Dict[NodeId, Optional[Payload]] = commitment  # type: ignore[assignment]
        kernel = self.kernel
        algorithm = self.algorithm
        neighbors = kernel.graph.neighbors_view()
        accounting = kernel.accounting
        index_of = kernel.index_of
        inbox: Dict[NodeId, List[ReceivedMessage]] = {
            node: [] for node in kernel.nodes
        }
        records: Optional[List[SentRecord]] = [] if kernel.observe_messages else None
        for node in sorted(broadcasts):
            payload = broadcasts[node]
            if payload is None:
                continue
            accounting.count(index_of[node], payload.kind.value)
            if records is not None:
                records.append(SentRecord(sender=node, receiver=None, payload=payload))
            for neighbor in neighbors[node]:
                inbox[neighbor].append(ReceivedMessage(sender=node, payload=payload))
        algorithm.receive_broadcasts(round_index, inbox, neighbors)
        if records is not None:
            self._previous_messages = tuple(records)


class UnicastExchangeProgram(_ExchangeProgram):
    """Reference semantics of the unicast model, any algorithm."""

    def deliver(self, round_index: int, commitment: Optional[object]) -> None:
        kernel = self.kernel
        algorithm = self.algorithm
        graph = kernel.graph
        neighbors = graph.neighbors_view()
        algorithm.on_topology(
            round_index,
            neighbors,
            graph.trace.inserted_edges(round_index),
            graph.trace.removed_edges(round_index),
        )

        sends = algorithm.select_messages(round_index, neighbors)
        accounting = kernel.accounting
        index_of = kernel.index_of
        node_set = kernel.node_set
        inbox: Dict[NodeId, List[ReceivedMessage]] = {
            node: [] for node in kernel.nodes
        }
        records: Optional[List[SentRecord]] = [] if kernel.observe_messages else None
        for sender in sorted(sends):
            if sender not in node_set:
                raise ProtocolViolationError(
                    f"messages scheduled for unknown sender {sender}"
                )
            for receiver in sorted(sends[sender]):
                if receiver not in neighbors[sender]:
                    raise ProtocolViolationError(
                        f"node {sender} tried to send to non-neighbour {receiver} "
                        f"in round {round_index}"
                    )
                for payload in sends[sender][receiver]:
                    accounting.count(index_of[sender], payload.kind.value)
                    if records is not None:
                        records.append(
                            SentRecord(sender=sender, receiver=receiver, payload=payload)
                        )
                    inbox[receiver].append(
                        ReceivedMessage(sender=sender, payload=payload)
                    )
        algorithm.receive_messages(round_index, inbox)
        if records is not None:
            self._previous_messages = tuple(records)


def record_edge_insertions(
    edge_inserted: Dict[int, int],
    edge_token_round: Dict[int, int],
    inserted_ids,
    round_index: int,
) -> None:
    """Fold one round's edge insertions into an ``id -> round`` history.

    A reinserted edge starts a fresh history (see
    ``UnicastAlgorithm.on_topology``), so its last token round is dropped.
    Shared by the serial fast programs (through
    :meth:`FastRoundProgram.update_edge_history`) and the per-lane batch
    programs, which keep one history pair per lane.
    """
    for eid in inserted_ids:
        edge_inserted[eid] = round_index
        edge_token_round.pop(eid, None)


def prioritized_edge_indices(
    n: int,
    node_index: int,
    candidates_mask: int,
    round_index: int,
    edge_inserted: Dict[int, int],
    edge_token_round: Dict[int, int],
) -> List[int]:
    """The Section-3.1.1 request priority order on index-layer state.

    ``candidates_mask`` is a node bitmask; the result lists its indices in
    **new** (inserted this round or the previous one), then **idle**, then
    **contributive** order — ascending within each class, exactly like the
    reference :meth:`~repro.algorithms.base.UnicastAlgorithm.is_new_edge`
    family.  The history dicts are the caller's (one pair per lane in the
    batch programs).
    """
    v = node_index
    new_edges: List[int] = []
    idle_edges: List[int] = []
    contributive_edges: List[int] = []
    to_visit = candidates_mask
    while to_visit:
        low = to_visit & -to_visit
        u = low.bit_length() - 1
        to_visit ^= low
        eid = edge_id(v, u, n)
        inserted_round = edge_inserted.get(eid, 0)
        if inserted_round >= round_index - 1:
            new_edges.append(u)
        else:
            token_round = edge_token_round.get(eid)
            if token_round is not None and token_round >= inserted_round:
                contributive_edges.append(u)
            else:
                idle_edges.append(u)
    return new_edges + idle_edges + contributive_edges


def pending_request_bits(
    requests: Optional[Dict[int, int]], neighbors_mask: int
) -> int:
    """Token bits requested last round over edges that still exist."""
    pending_mask = 0
    if requests:
        for u, token_bit_index in requests.items():
            if (neighbors_mask >> u) & 1:
                pending_mask |= 1 << token_bit_index
    return pending_mask


class FastRoundProgram(RoundProgram):
    """Base class for the bit-level fast programs shipped with algorithms.

    Subclasses express one algorithm's per-round knowledge delta directly on
    the index layer of the :class:`~repro.core.state.KnowledgeState` (token
    bitmasks, adjacency bitmasks, flat ``(sender, tag, value)`` message
    tuples) while the kernel supplies the shared round structure.  They must
    reproduce the exchange programs' results *exactly*: same message counts
    by kind/round/node, same token-learning event order, same rounds.

    Under an adaptive adversary the base class contributes the lazy
    :class:`~repro.core.observation.RoundObservation` adapter: only the
    fields the adversary declared it reads are materialized from the bit
    state, and subclasses record payload-level :class:`SentRecord` tuples
    (only when ``kernel.observe_messages`` is set) via
    :meth:`store_sent_records`.
    """

    #: Set by subclasses that consult per-edge insertion history
    #: (the new / idle / contributive classification of Section 3.1.1).
    track_edge_history = False

    def __init__(self, kernel: "RoundKernel", algorithm) -> None:
        self.kernel = kernel
        self.algorithm = algorithm
        self.model = algorithm.communication_model
        state = kernel.state
        if not isinstance(state, BitsetKnowledgeState):
            raise ConfigurationError(
                f"{type(self).__name__} runs on BitsetKnowledgeState, "
                f"not {type(state).__name__}; use the exchange programs "
                "(allow_fast_programs=False) with other representations"
            )
        self.state = state
        self.nodes = state.nodes
        self.n = state.n
        self.index_of = state.index_of
        self.tokens = state.tokens
        self.k = state.k
        self.token_index = state.token_index
        self.full_mask = state.full_mask
        self.adj = kernel.graph.adj
        self.accounting = kernel.accounting
        self.per_node = kernel.accounting.per_node_counts
        # Per-edge history (id -> round), maintained when track_edge_history.
        self.edge_inserted: Dict[int, int] = {}
        self.edge_token_round: Dict[int, int] = {}
        self._sent_records: Tuple[SentRecord, ...] = ()

    # -- kernel interface ---------------------------------------------------

    def completed(self) -> bool:
        return self.state.incomplete_count() == 0

    def drain_learnings(self) -> List[Tuple[NodeId, Token]]:
        return self.state.drain_learnings()

    def observation(
        self, round_index: int, commitment: Optional[object]
    ) -> RoundObservation:
        state = self.state
        wants = self.kernel.wants_observation_field
        knowledge = (
            {node: state.known_tokens(node) for node in state.nodes}
            if wants("knowledge")
            else {}
        )
        counts = (
            {
                node: state.known_count(index)
                for index, node in enumerate(state.nodes)
            }
            if wants("knowledge_counts")
            else {}
        )
        payloads = (
            self.commit_payloads(commitment) if wants("broadcast_payloads") else {}
        )
        return RoundObservation(
            round_index=round_index,
            knowledge=knowledge,
            broadcast_payloads=payloads,
            previous_messages=self._sent_records,
            algorithm_name=self.algorithm.name,
            extra=self.observation_extra() if wants("extra") else {},
            knowledge_counts=counts,
        )

    # -- subclass hooks -----------------------------------------------------

    def commit_payloads(
        self, commitment: Optional[object]
    ) -> Dict[NodeId, Optional[Payload]]:
        """Materialize the committed payloads for the observation (broadcast
        model programs override; the unicast default is the empty mapping)."""
        return {}

    def observation_extra(self) -> Dict[str, object]:
        """Mirror of the algorithm's ``observation_extra`` on the fast state."""
        return {}

    # -- shared helpers -----------------------------------------------------

    def update_edge_history(self, round_index: int) -> None:
        """Track per-edge insertion rounds; the delivery stage calls this
        before ``deliver`` for programs declaring ``track_edge_history``."""
        record_edge_insertions(
            self.edge_inserted,
            self.edge_token_round,
            self.kernel.graph.inserted_ids,
            round_index,
        )

    def prioritized_edges(
        self, node_index: int, candidates_mask: int, round_index: int
    ) -> List[int]:
        """Candidate neighbours in the Section-3.1.1 request priority order.

        ``candidates_mask`` is a node bitmask (typically the known-complete
        neighbours of ``node_index``); the result lists their indices in
        **new** (inserted this round or the previous one), then **idle**,
        then **contributive** order — ascending within each class, exactly
        like the reference
        :meth:`~repro.algorithms.base.UnicastAlgorithm.is_new_edge` family.
        Requires ``track_edge_history``.
        """
        return prioritized_edge_indices(
            self.n,
            node_index,
            candidates_mask,
            round_index,
            self.edge_inserted,
            self.edge_token_round,
        )

    def pending_request_mask(
        self, requests: Optional[Dict[int, int]], neighbors_mask: int
    ) -> int:
        """Token bits requested last round over edges that still exist.

        Those tokens are guaranteed to arrive this round (complete nodes
        respond immediately), so the node does not re-request them.
        """
        return pending_request_bits(requests, neighbors_mask)

    def store_sent_records(self, records: List[SentRecord]) -> None:
        """Remember this round's sends for the next round's observation."""
        self._sent_records = tuple(records)


# ---------------------------------------------------------------------------
# Kernel
# ---------------------------------------------------------------------------


class RoundKernel:
    """Drives one execution through the staged round loop.

    Args:
        problem: the dissemination instance.
        algorithm: a :class:`LocalBroadcastAlgorithm` or
            :class:`UnicastAlgorithm`.
        adversary: any object following the adversary protocol of
            :mod:`repro.adversaries`.
        state_factory: the :class:`~repro.core.state.KnowledgeState`
            implementation this execution runs on.
        allow_fast_programs: when True, an algorithm exposing a native fast
            program (``fast_program_factory``) runs it instead of the generic
            exchange program.  The reference backend keeps this off so the
            exchange path continues to define the semantics.
        max_rounds: round limit; defaults to :func:`default_round_limit`.
        seed: base seed; the algorithm and the adversary receive independent
            generators derived from it (algorithm stream first, exactly as
            the historical engine did).
        require_connected: enforce per-round connectivity (the paper's model
            requirement).  Disable only for diagnostic experiments.
        keep_trace: when False, the trace drops per-round edge ids as it
            goes; ``TC(E)``, removals and current-round queries survive.
        tracer: a :class:`repro.obs.Tracer`; when enabled, each round's four
            stages run inside spans and the result carries a per-stage
            timing breakdown.  ``None`` (the default) is the disabled no-op
            tracer — the round loop then runs entirely uninstrumented.
    """

    def __init__(
        self,
        problem: DisseminationProblem,
        algorithm: "TokenForwardingAlgorithm",
        adversary,
        *,
        state_factory: Type[KnowledgeState] = MappingKnowledgeState,
        allow_fast_programs: bool = False,
        max_rounds: Optional[int] = None,
        seed: SeedLike = None,
        require_connected: bool = True,
        keep_trace: bool = True,
        tracer=None,
    ) -> None:
        from repro.algorithms.base import LocalBroadcastAlgorithm, UnicastAlgorithm

        if not isinstance(algorithm, (LocalBroadcastAlgorithm, UnicastAlgorithm)):
            raise ConfigurationError(
                "algorithm must derive from LocalBroadcastAlgorithm or UnicastAlgorithm"
            )
        self.problem = problem
        self.algorithm = algorithm
        self.adversary = adversary
        if max_rounds is None:
            max_rounds = default_round_limit(problem)
        self.max_rounds = require_positive_int(max_rounds, "max_rounds")

        # Mirror the historical RNG derivation order exactly: the algorithm
        # stream is spawned first, then the adversary stream, so executions
        # see the same randomness regardless of state or program choice.
        base_rng = ensure_rng(seed)
        self.algorithm_rng = spawn_rng(base_rng, "algorithm")
        self.adversary_rng = spawn_rng(base_rng, "adversary")

        self.state = state_factory(problem)
        self.nodes: Tuple[NodeId, ...] = self.state.nodes
        self.node_set = frozenset(self.nodes)
        self.index_of = self.state.index_of

        self.accounting = AccountingStage(algorithm.communication_model, self.nodes)
        self.graph = AdversaryStage(
            self.nodes,
            self.index_of,
            adversary,
            require_connected=require_connected,
            keep_trace=keep_trace,
        )
        self.commit_stage = CommitStage()
        self.delivery_stage = DeliveryStage()
        #: True iff the adversary is adaptive — programs must then build an
        #: observation for it every round.
        self.observe = self.graph.observe
        #: The declared observation field scope (``None`` = everything).
        self.observed_fields = self.graph.observed_fields
        #: True iff programs must record payload-level SentRecords: only
        #: adaptive adversaries that actually read ``previous_messages``.
        self.observe_messages = self.observe and (
            self.observed_fields is None
            or "previous_messages" in self.observed_fields
        )
        if tracer is None:
            from repro.obs.tracing import NULL_TRACER

            tracer = NULL_TRACER
        self.tracer = tracer
        self.program = self._build_program(allow_fast_programs)

    def wants_observation_field(self, field_name: str) -> bool:
        """True iff the adversary's declared scope includes ``field_name``."""
        return self.observed_fields is None or field_name in self.observed_fields

    def _build_program(self, allow_fast_programs: bool) -> RoundProgram:
        if allow_fast_programs:
            factory = self.algorithm.fast_program_factory()
            if factory is not None:
                return factory(self)
        if self.algorithm.communication_model.is_broadcast:
            return BroadcastExchangeProgram(self)
        return UnicastExchangeProgram(self)

    def run(self) -> ExecutionResult:
        """Run the execution to completion (or the round limit)."""
        program = self.program
        program.setup()
        self.adversary.reset(self.problem, self.adversary_rng)

        tracer = self.tracer
        timings = None
        if tracer.enabled:
            # Spans may accumulate into a tracer shared across executions;
            # subtracting the starting totals attributes only this run.
            before = tracer.timings()
            completed, rounds_played = self._play_rounds_traced(program, tracer)
            from repro.obs.tracing import timing_delta

            timings = timing_delta(before, tracer.timings())
        else:
            completed, rounds_played = self._play_rounds(program)

        return ExecutionResult(
            algorithm_name=self.algorithm.name,
            communication_model=self.algorithm.communication_model,
            problem=self.problem,
            completed=completed,
            rounds=rounds_played,
            messages=self.accounting.statistics(),
            trace=self.graph.trace,
            events=self.accounting.events,
            adversary_name=getattr(
                self.adversary, "name", type(self.adversary).__name__
            ),
            timings=timings,
        )

    def _play_rounds(self, program: RoundProgram) -> Tuple[bool, int]:
        """The uninstrumented round loop (tracing disabled)."""
        accounting = self.accounting
        commit_stage = self.commit_stage
        graph_stage = self.graph
        delivery_stage = self.delivery_stage

        completed = program.completed()
        rounds_played = 0
        while not completed and rounds_played < self.max_rounds:
            round_index = rounds_played + 1
            accounting.begin_round()
            commitment = commit_stage.run(program, round_index)
            graph_stage.advance(round_index, program, commitment)
            delivery_stage.run(program, round_index, commitment)
            accounting.close_round(round_index, program)
            rounds_played = round_index
            completed = program.completed()
            if not completed and program.is_quiescent():
                # The program will never send another message: no further
                # progress is possible, so stop instead of idling to the
                # round limit (the result is reported as not completed).
                break
        return completed, rounds_played

    def _play_rounds_traced(self, program: RoundProgram, tracer) -> Tuple[bool, int]:
        """The same round loop with each stage bracketed by a tracer span.

        Kept as a separate loop so the disabled path stays free of span
        construction entirely; ``repro bench --max-obs-overhead`` guards
        this loop's own cost with no-op spans.
        """
        from repro.obs.tracing import (
            STAGE_ACCOUNTING,
            STAGE_ADVERSARY,
            STAGE_COMMIT,
            STAGE_DELIVERY,
        )

        accounting = self.accounting
        commit_stage = self.commit_stage
        graph_stage = self.graph
        delivery_stage = self.delivery_stage

        completed = program.completed()
        rounds_played = 0
        while not completed and rounds_played < self.max_rounds:
            round_index = rounds_played + 1
            accounting.begin_round()
            with tracer.span(STAGE_COMMIT, round=round_index):
                commitment = commit_stage.run(program, round_index)
            with tracer.span(STAGE_ADVERSARY, round=round_index):
                graph_stage.advance(round_index, program, commitment)
            with tracer.span(STAGE_DELIVERY, round=round_index):
                delivery_stage.run(program, round_index, commitment)
            with tracer.span(STAGE_ACCOUNTING, round=round_index):
                accounting.close_round(round_index, program)
            rounds_played = round_index
            completed = program.completed()
            if not completed and program.is_quiescent():
                # See _play_rounds: quiescence means no further progress.
                break
        return completed, rounds_played
