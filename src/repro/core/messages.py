"""Message payloads exchanged by token-forwarding algorithms.

The unicast algorithms of Section 3 use exactly three message types
(cf. the proof of Theorem 3.1):

1. **token messages** — carry one token;
2. **completeness announcements** — a node announces that it is complete
   (with respect to a given source in the multi-source case);
3. **token requests** — an incomplete node asks a complete neighbour for a
   specific missing token.

Every payload fits in the paper's message-size budget of a constant number of
tokens plus ``O(log n)`` bits.  Each payload sent to a neighbour counts as one
message in the unicast model; in the local broadcast model one payload per
broadcasting node per round counts as one message.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional, Union

from repro.core.tokens import Token
from repro.utils.ids import NodeId


class MessageKind(enum.Enum):
    """Classification used by the message accountant."""

    TOKEN = "token"
    COMPLETENESS = "completeness"
    REQUEST = "request"
    CONTROL = "control"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True, slots=True)
class TokenMessage:
    """A message carrying a single token (type 1)."""

    token: Token

    @property
    def kind(self) -> MessageKind:
        return MessageKind.TOKEN


@dataclass(frozen=True, slots=True)
class CompletenessMessage:
    """A completeness announcement (type 2).

    ``source`` identifies the source node the sender is complete with respect
    to; in the single-source setting it is simply that single source.
    """

    source: NodeId

    @property
    def kind(self) -> MessageKind:
        return MessageKind.COMPLETENESS


@dataclass(frozen=True, slots=True)
class RequestMessage:
    """A token request (type 3) for the token ``⟨source, index⟩``."""

    source: NodeId
    index: int

    @property
    def kind(self) -> MessageKind:
        return MessageKind.REQUEST

    @property
    def token(self) -> Token:
        """The requested token."""
        return Token(source=self.source, index=self.index)


@dataclass(frozen=True, slots=True)
class ControlMessage:
    """A generic control/beacon message (used by baseline algorithms,
    e.g. spanning-tree construction probes)."""

    tag: str
    data: Optional[object] = None

    @property
    def kind(self) -> MessageKind:
        return MessageKind.CONTROL


Payload = Union[TokenMessage, CompletenessMessage, RequestMessage, ControlMessage]


@dataclass(frozen=True, slots=True)
class ReceivedMessage:
    """A payload together with its sender, as delivered to the receiving node."""

    sender: NodeId
    payload: Payload

    @property
    def kind(self) -> MessageKind:
        return self.payload.kind
