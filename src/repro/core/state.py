"""Pluggable per-node token-knowledge representations.

The paper's model tracks one piece of per-node state: the set of tokens each
node knows (``K_v(t)``, Section 1.3).  :class:`KnowledgeState` abstracts that
state behind one interface with two observable layers:

* an **object layer** used by the algorithm classes (``knows``, ``learn``,
  ``known_tokens`` over :class:`~repro.core.tokens.Token` values), and
* an **index layer** used by the bit-level kernel programs (``know_mask``,
  ``learn_index`` over dense node/token indices; tokens are indexed in
  sorted order, so bit ``i`` always means the ``i``-th smallest token).

Two implementations ship:

* :class:`MappingKnowledgeState` — the reference dict-of-sets representation
  (exactly what :class:`~repro.algorithms.base.TokenForwardingAlgorithm`
  historically stored inline);
* :class:`BitsetKnowledgeState` — one Python integer per node (promoted out
  of the old ``backends/bitset.py``), where ``knows`` is a bit test and a
  whole neighbourhood learns a token with a handful of mask operations.

Both maintain the same derived quantities (per-node missing counts, the
number of incomplete nodes, the buffered token-learning events the kernel
drains into the :class:`~repro.core.events.EventLog`), so an algorithm — or
a kernel program — behaves identically on either: the representation is an
execution detail, never semantics.
"""

from __future__ import annotations

import abc
from typing import Dict, FrozenSet, List, Set, Tuple

from repro.core.problem import DisseminationProblem
from repro.core.tokens import Token
from repro.utils.ids import NodeId


def bit_indices(mask: int) -> List[int]:
    """The set bit positions of ``mask`` in ascending order."""
    indices = []
    while mask:
        low = mask & -mask
        indices.append(low.bit_length() - 1)
        mask ^= low
    return indices


def edge_id(a: int, b: int, n: int) -> int:
    """The canonical integer id of the undirected edge ``{a, b}``.

    ``a`` and ``b`` are dense node *indices*; the id is ``min * n + max``,
    the encoding shared by the kernel's adversary stage, the fast programs'
    per-edge history and the trace's ``id_to_edge`` inverse.
    """
    return a * n + b if a < b else b * n + a


class KnowledgeState(abc.ABC):
    """Token knowledge of every node, behind a representation-neutral API.

    The constructor fixes the dense index maps shared by every
    representation: nodes in sorted order, tokens in sorted order.  All
    index-layer operations refer to these positions.
    """

    __slots__ = (
        "problem",
        "nodes",
        "n",
        "index_of",
        "tokens",
        "k",
        "token_index",
        "full_mask",
        "_pending",
    )

    def __init__(self, problem: DisseminationProblem) -> None:
        self.problem = problem
        self.nodes: Tuple[NodeId, ...] = problem.nodes
        self.n = len(self.nodes)
        self.index_of: Dict[NodeId, int] = {
            node: index for index, node in enumerate(self.nodes)
        }
        self.tokens: Tuple[Token, ...] = tuple(sorted(problem.tokens))
        self.k = len(self.tokens)
        self.token_index: Dict[Token, int] = {
            token: index for index, token in enumerate(self.tokens)
        }
        self.full_mask = (1 << self.k) - 1
        #: Token learnings buffered since the last drain, in learn order.
        self._pending: List[Tuple[NodeId, Token]] = []

    # -- object layer (algorithm-facing) -----------------------------------

    @abc.abstractmethod
    def knows(self, node: NodeId, token: Token) -> bool:
        """True iff ``node`` already knows ``token``."""

    @abc.abstractmethod
    def known_tokens(self, node: NodeId) -> FrozenSet[Token]:
        """The tokens currently known by ``node`` (``K_v(t)``)."""

    @abc.abstractmethod
    def missing_tokens(self, node: NodeId) -> List[Token]:
        """The tokens ``node`` has not yet learned, in sorted order."""

    @abc.abstractmethod
    def is_node_complete(self, node: NodeId) -> bool:
        """True iff ``node`` knows all ``k`` tokens (Definition 3.1)."""

    @abc.abstractmethod
    def all_complete(self) -> bool:
        """True iff every node knows every token (dissemination solved)."""

    def learn(self, node: NodeId, token: Token) -> bool:
        """Record that ``node`` received ``token``; True iff it is new."""
        return self.learn_index(self.index_of[node], self.token_index[token])

    def drain_learnings(self) -> List[Tuple[NodeId, Token]]:
        """Return (and clear) the learnings buffered since the last drain."""
        learnings, self._pending = self._pending, []
        return learnings

    # -- index layer (kernel-program-facing) --------------------------------

    @abc.abstractmethod
    def learn_index(self, node_index: int, token_bit_index: int) -> bool:
        """Index-layer :meth:`learn`; must buffer the learning when new."""

    @abc.abstractmethod
    def know_mask(self, node_index: int) -> int:
        """The knowledge of one node as a token bitmask."""

    @abc.abstractmethod
    def known_count(self, node_index: int) -> int:
        """``|K_v|`` for the node at ``node_index``."""

    @abc.abstractmethod
    def incomplete_count(self) -> int:
        """Number of nodes still missing at least one token."""

    def holders_mask(self, token_bit_index: int) -> int:
        """The nodes knowing one token, as a node bitmask."""
        mask = 0
        for index in range(self.n):
            if self.knows(self.nodes[index], self.tokens[token_bit_index]):
                mask |= 1 << index
        return mask

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{type(self).__name__}(n={self.n}, k={self.k}, "
            f"incomplete={self.incomplete_count()})"
        )


class MappingKnowledgeState(KnowledgeState):
    """The reference representation: one set of tokens per node."""

    __slots__ = ("_knowledge", "_missing_count", "_incomplete")

    def __init__(self, problem: DisseminationProblem) -> None:
        super().__init__(problem)
        self._knowledge: Dict[NodeId, Set[Token]] = {
            node: set(problem.initial_knowledge[node]) for node in self.nodes
        }
        self._missing_count: Dict[NodeId, int] = {
            node: self.k - len(self._knowledge[node]) for node in self.nodes
        }
        self._incomplete = sum(
            1 for count in self._missing_count.values() if count > 0
        )

    def knows(self, node: NodeId, token: Token) -> bool:
        return token in self._knowledge[node]

    def known_tokens(self, node: NodeId) -> FrozenSet[Token]:
        return frozenset(self._knowledge[node])

    def missing_tokens(self, node: NodeId) -> List[Token]:
        known = self._knowledge[node]
        return sorted(token for token in self.problem.tokens if token not in known)

    def is_node_complete(self, node: NodeId) -> bool:
        return self._missing_count[node] == 0

    def all_complete(self) -> bool:
        return self._incomplete == 0

    def learn(self, node: NodeId, token: Token) -> bool:
        known = self._knowledge[node]
        if token in known:
            return False
        known.add(token)
        self._missing_count[node] -= 1
        if self._missing_count[node] == 0:
            self._incomplete -= 1
        self._pending.append((node, token))
        return True

    def learn_index(self, node_index: int, token_bit_index: int) -> bool:
        return self.learn(self.nodes[node_index], self.tokens[token_bit_index])

    def know_mask(self, node_index: int) -> int:
        token_index = self.token_index
        mask = 0
        for token in self._knowledge[self.nodes[node_index]]:
            mask |= 1 << token_index[token]
        return mask

    def known_count(self, node_index: int) -> int:
        return len(self._knowledge[self.nodes[node_index]])

    def incomplete_count(self) -> int:
        return self._incomplete


class BitsetKnowledgeState(KnowledgeState):
    """One integer bitmask per node; bit ``i`` is the ``i``-th sorted token.

    The mask lists (:attr:`know`, :attr:`know_count`) are public on purpose:
    bit-level kernel programs read them directly in their inner loops.  All
    writes must go through :meth:`learn_index` so the completeness counter
    and the pending-learnings buffer stay consistent.
    """

    __slots__ = ("know", "know_count", "_incomplete")

    def __init__(self, problem: DisseminationProblem) -> None:
        super().__init__(problem)
        token_index = self.token_index
        know: List[int] = []
        know_count: List[int] = []
        for node in self.nodes:
            mask = 0
            for token in problem.initial_knowledge[node]:
                mask |= 1 << token_index[token]
            know.append(mask)
            know_count.append(len(problem.initial_knowledge[node]))
        self.know = know
        self.know_count = know_count
        self._incomplete = sum(1 for count in know_count if count < self.k)

    def knows(self, node: NodeId, token: Token) -> bool:
        return bool(
            (self.know[self.index_of[node]] >> self.token_index[token]) & 1
        )

    def known_tokens(self, node: NodeId) -> FrozenSet[Token]:
        tokens = self.tokens
        return frozenset(
            tokens[index] for index in bit_indices(self.know[self.index_of[node]])
        )

    def missing_tokens(self, node: NodeId) -> List[Token]:
        tokens = self.tokens
        missing = ~self.know[self.index_of[node]] & self.full_mask
        return [tokens[index] for index in bit_indices(missing)]

    def is_node_complete(self, node: NodeId) -> bool:
        return self.know_count[self.index_of[node]] == self.k

    def all_complete(self) -> bool:
        return self._incomplete == 0

    def learn_index(self, node_index: int, token_bit_index: int) -> bool:
        bit = 1 << token_bit_index
        if self.know[node_index] & bit:
            return False
        self.know[node_index] |= bit
        self.know_count[node_index] += 1
        if self.know_count[node_index] == self.k:
            self._incomplete -= 1
        self._pending.append((self.nodes[node_index], self.tokens[token_bit_index]))
        return True

    def know_mask(self, node_index: int) -> int:
        return self.know[node_index]

    def known_count(self, node_index: int) -> int:
        return self.know_count[node_index]

    def incomplete_count(self) -> int:
        return self._incomplete

    def holders_mask(self, token_bit_index: int) -> int:
        bit = 1 << token_bit_index
        mask = 0
        for index, value in enumerate(self.know):
            if value & bit:
                mask |= 1 << index
        return mask
