"""Pluggable per-node token-knowledge representations.

The paper's model tracks one piece of per-node state: the set of tokens each
node knows (``K_v(t)``, Section 1.3).  :class:`KnowledgeState` abstracts that
state behind one interface with two observable layers:

* an **object layer** used by the algorithm classes (``knows``, ``learn``,
  ``known_tokens`` over :class:`~repro.core.tokens.Token` values), and
* an **index layer** used by the bit-level kernel programs (``know_mask``,
  ``learn_index`` over dense node/token indices; tokens are indexed in
  sorted order, so bit ``i`` always means the ``i``-th smallest token).

Three implementations ship:

* :class:`MappingKnowledgeState` — the reference dict-of-sets representation
  (exactly what :class:`~repro.algorithms.base.TokenForwardingAlgorithm`
  historically stored inline);
* :class:`BitsetKnowledgeState` — one Python integer per node (promoted out
  of the old ``backends/bitset.py``), where ``knows`` is a bit test and a
  whole neighbourhood learns a token with a handful of mask operations;
* :class:`BatchKnowledgeState` — a ``numpy.bool_`` array of shape
  ``(lanes, n, k)`` holding the knowledge of many independently seeded
  repetitions (*lanes*) of the same problem at once.  The batch backend
  (:mod:`repro.batch`) steps all lanes in lockstep; the per-lane protocol
  methods make any single lane look like an ordinary knowledge state.

All maintain the same derived quantities (per-node missing counts, the
number of incomplete nodes, the buffered token-learning events the kernel
drains into the :class:`~repro.core.events.EventLog`), so an algorithm — or
a kernel program — behaves identically on either: the representation is an
execution detail, never semantics.
"""

from __future__ import annotations

import abc
from typing import Dict, FrozenSet, List, Set, Tuple

from repro.core.events import SEG_COLUMN, SEG_TRIPLES, column_segment

from repro.core.problem import DisseminationProblem
from repro.core.tokens import Token
from repro.utils.ids import NodeId
from repro.utils.validation import ConfigurationError, require_positive_int


def require_numpy(feature: str = "the batch backend"):
    """Import and return numpy, or explain how to install it.

    numpy is an optional dependency (the ``repro[fast]`` extra): everything
    except the vectorized batch subsystem runs without it.
    """
    try:
        import numpy
    except ImportError as error:
        raise ConfigurationError(
            f"{feature} needs numpy, which is an optional dependency; "
            "install it with: pip install \"repro[fast]\" (or: pip install numpy)"
        ) from error
    return numpy


def numpy_available() -> bool:
    """True iff numpy can be imported (the ``repro[fast]`` extra is installed)."""
    try:
        import numpy  # noqa: F401
    except ImportError:
        return False
    return True


def bit_indices(mask: int) -> List[int]:
    """The set bit positions of ``mask`` in ascending order."""
    indices = []
    while mask:
        low = mask & -mask
        indices.append(low.bit_length() - 1)
        mask ^= low
    return indices


def edge_id(a: int, b: int, n: int) -> int:
    """The canonical integer id of the undirected edge ``{a, b}``.

    ``a`` and ``b`` are dense node *indices*; the id is ``min * n + max``,
    the encoding shared by the kernel's adversary stage, the fast programs'
    per-edge history and the trace's ``id_to_edge`` inverse.
    """
    return a * n + b if a < b else b * n + a


class KnowledgeState(abc.ABC):
    """Token knowledge of every node, behind a representation-neutral API.

    The constructor fixes the dense index maps shared by every
    representation: nodes in sorted order, tokens in sorted order.  All
    index-layer operations refer to these positions.
    """

    __slots__ = (
        "problem",
        "nodes",
        "n",
        "index_of",
        "tokens",
        "k",
        "token_index",
        "full_mask",
        "_pending",
    )

    def __init__(self, problem: DisseminationProblem) -> None:
        self.problem = problem
        self.nodes: Tuple[NodeId, ...] = problem.nodes
        self.n = len(self.nodes)
        self.index_of: Dict[NodeId, int] = {
            node: index for index, node in enumerate(self.nodes)
        }
        self.tokens: Tuple[Token, ...] = tuple(sorted(problem.tokens))
        self.k = len(self.tokens)
        self.token_index: Dict[Token, int] = {
            token: index for index, token in enumerate(self.tokens)
        }
        self.full_mask = (1 << self.k) - 1
        #: Token learnings buffered since the last drain, in learn order.
        self._pending: List[Tuple[NodeId, Token]] = []

    # -- object layer (algorithm-facing) -----------------------------------

    @abc.abstractmethod
    def knows(self, node: NodeId, token: Token) -> bool:
        """True iff ``node`` already knows ``token``."""

    @abc.abstractmethod
    def known_tokens(self, node: NodeId) -> FrozenSet[Token]:
        """The tokens currently known by ``node`` (``K_v(t)``)."""

    @abc.abstractmethod
    def missing_tokens(self, node: NodeId) -> List[Token]:
        """The tokens ``node`` has not yet learned, in sorted order."""

    @abc.abstractmethod
    def is_node_complete(self, node: NodeId) -> bool:
        """True iff ``node`` knows all ``k`` tokens (Definition 3.1)."""

    @abc.abstractmethod
    def all_complete(self) -> bool:
        """True iff every node knows every token (dissemination solved)."""

    def learn(self, node: NodeId, token: Token) -> bool:
        """Record that ``node`` received ``token``; True iff it is new."""
        return self.learn_index(self.index_of[node], self.token_index[token])

    def drain_learnings(self) -> List[Tuple[NodeId, Token]]:
        """Return (and clear) the learnings buffered since the last drain."""
        learnings, self._pending = self._pending, []
        return learnings

    # -- index layer (kernel-program-facing) --------------------------------

    @abc.abstractmethod
    def learn_index(self, node_index: int, token_bit_index: int) -> bool:
        """Index-layer :meth:`learn`; must buffer the learning when new."""

    @abc.abstractmethod
    def know_mask(self, node_index: int) -> int:
        """The knowledge of one node as a token bitmask."""

    @abc.abstractmethod
    def known_count(self, node_index: int) -> int:
        """``|K_v|`` for the node at ``node_index``."""

    @abc.abstractmethod
    def incomplete_count(self) -> int:
        """Number of nodes still missing at least one token."""

    def holders_mask(self, token_bit_index: int) -> int:
        """The nodes knowing one token, as a node bitmask."""
        mask = 0
        for index in range(self.n):
            if self.knows(self.nodes[index], self.tokens[token_bit_index]):
                mask |= 1 << index
        return mask

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{type(self).__name__}(n={self.n}, k={self.k}, "
            f"incomplete={self.incomplete_count()})"
        )


class MappingKnowledgeState(KnowledgeState):
    """The reference representation: one set of tokens per node."""

    __slots__ = ("_knowledge", "_missing_count", "_incomplete")

    def __init__(self, problem: DisseminationProblem) -> None:
        super().__init__(problem)
        self._knowledge: Dict[NodeId, Set[Token]] = {
            node: set(problem.initial_knowledge[node]) for node in self.nodes
        }
        self._missing_count: Dict[NodeId, int] = {
            node: self.k - len(self._knowledge[node]) for node in self.nodes
        }
        self._incomplete = sum(
            1 for count in self._missing_count.values() if count > 0
        )

    def knows(self, node: NodeId, token: Token) -> bool:
        return token in self._knowledge[node]

    def known_tokens(self, node: NodeId) -> FrozenSet[Token]:
        return frozenset(self._knowledge[node])

    def missing_tokens(self, node: NodeId) -> List[Token]:
        known = self._knowledge[node]
        return sorted(token for token in self.problem.tokens if token not in known)

    def is_node_complete(self, node: NodeId) -> bool:
        return self._missing_count[node] == 0

    def all_complete(self) -> bool:
        return self._incomplete == 0

    def learn(self, node: NodeId, token: Token) -> bool:
        known = self._knowledge[node]
        if token in known:
            return False
        known.add(token)
        self._missing_count[node] -= 1
        if self._missing_count[node] == 0:
            self._incomplete -= 1
        self._pending.append((node, token))
        return True

    def learn_index(self, node_index: int, token_bit_index: int) -> bool:
        return self.learn(self.nodes[node_index], self.tokens[token_bit_index])

    def know_mask(self, node_index: int) -> int:
        token_index = self.token_index
        mask = 0
        for token in self._knowledge[self.nodes[node_index]]:
            mask |= 1 << token_index[token]
        return mask

    def known_count(self, node_index: int) -> int:
        return len(self._knowledge[self.nodes[node_index]])

    def incomplete_count(self) -> int:
        return self._incomplete


class BitsetKnowledgeState(KnowledgeState):
    """One integer bitmask per node; bit ``i`` is the ``i``-th sorted token.

    The mask lists (:attr:`know`, :attr:`know_count`) are public on purpose:
    bit-level kernel programs read them directly in their inner loops.  All
    writes must go through :meth:`learn_index` so the completeness counter
    and the pending-learnings buffer stay consistent.
    """

    __slots__ = ("know", "know_count", "_incomplete")

    def __init__(self, problem: DisseminationProblem) -> None:
        super().__init__(problem)
        token_index = self.token_index
        know: List[int] = []
        know_count: List[int] = []
        for node in self.nodes:
            mask = 0
            for token in problem.initial_knowledge[node]:
                mask |= 1 << token_index[token]
            know.append(mask)
            know_count.append(len(problem.initial_knowledge[node]))
        self.know = know
        self.know_count = know_count
        self._incomplete = sum(1 for count in know_count if count < self.k)

    def knows(self, node: NodeId, token: Token) -> bool:
        return bool(
            (self.know[self.index_of[node]] >> self.token_index[token]) & 1
        )

    def known_tokens(self, node: NodeId) -> FrozenSet[Token]:
        tokens = self.tokens
        return frozenset(
            tokens[index] for index in bit_indices(self.know[self.index_of[node]])
        )

    def missing_tokens(self, node: NodeId) -> List[Token]:
        tokens = self.tokens
        missing = ~self.know[self.index_of[node]] & self.full_mask
        return [tokens[index] for index in bit_indices(missing)]

    def is_node_complete(self, node: NodeId) -> bool:
        return self.know_count[self.index_of[node]] == self.k

    def all_complete(self) -> bool:
        return self._incomplete == 0

    def learn_index(self, node_index: int, token_bit_index: int) -> bool:
        bit = 1 << token_bit_index
        if self.know[node_index] & bit:
            return False
        self.know[node_index] |= bit
        self.know_count[node_index] += 1
        if self.know_count[node_index] == self.k:
            self._incomplete -= 1
        self._pending.append((self.nodes[node_index], self.tokens[token_bit_index]))
        return True

    def know_mask(self, node_index: int) -> int:
        return self.know[node_index]

    def known_count(self, node_index: int) -> int:
        return self.know_count[node_index]

    def incomplete_count(self) -> int:
        return self._incomplete

    def holders_mask(self, token_bit_index: int) -> int:
        bit = 1 << token_bit_index
        mask = 0
        for index, value in enumerate(self.know):
            if value & bit:
                mask |= 1 << index
        return mask


class BatchKnowledgeState(KnowledgeState):
    """Knowledge of ``lanes`` repetitions as one ``(lanes, n, k)`` bool array.

    Every lane starts from the same problem (per-repetition seeds only
    diverge the adversary and algorithm randomness, never the initial token
    placement), so the constructor broadcasts the initial knowledge across
    the lane axis.  Two layers of access:

    * the **per-lane protocol**: :meth:`select_lane` picks the active lane,
      after which the full :class:`KnowledgeState` interface (``knows``,
      ``learn_index``, ``know_mask``, ...) reads and writes that lane only —
      per-lane program bodies run unchanged against a batch state;
    * **bulk operations** used by the vectorized batch programs:
      :meth:`holders_column` (a ``(lanes, n)`` view of one token's holders),
      :meth:`learn_token_bulk` (a whole learner matrix in one shot) and
      :meth:`completed_lanes`.

    Token-learning events are buffered *per lane* (delivery order within the
    lane), so the batch kernel reconstructs each lane's event log exactly as
    a serial execution would have recorded it.
    """

    __slots__ = (
        "np",
        "lanes",
        "know",
        "known_counts",
        "current_round",
        "_lane",
        "_lane_pending",
    )

    def __init__(self, problem: DisseminationProblem, lanes: int = 1) -> None:
        super().__init__(problem)
        require_positive_int(lanes, "lanes")
        np = require_numpy("BatchKnowledgeState")
        self.np = np
        self.lanes = lanes
        know = np.zeros((lanes, self.n, self.k), dtype=np.bool_)
        token_index = self.token_index
        for index, node in enumerate(self.nodes):
            for token in problem.initial_knowledge[node]:
                know[:, index, token_index[token]] = True
        self.know = know
        self.known_counts = know.sum(axis=2, dtype=np.int64)
        self._lane = 0
        #: The round stamp applied to buffered learnings; the kernel bumps it
        #: via :meth:`begin_round` so lanes can be drained once per run
        #: instead of once per round.
        self.current_round = 0
        #: Per-lane event-log segments (see :mod:`repro.core.events`), in
        #: learn order; learnings are kept columnar so no per-event python
        #: objects exist until the log is actually read.
        self._lane_pending: List[List[tuple]] = [[] for _ in range(lanes)]

    def begin_round(self, round_index: int) -> None:
        """Stamp all learnings buffered from now on with ``round_index``."""
        self.current_round = round_index

    # -- lane selection ------------------------------------------------------

    @property
    def lane(self) -> int:
        """The active lane addressed by the per-lane protocol methods."""
        return self._lane

    def select_lane(self, lane: int) -> "BatchKnowledgeState":
        """Make ``lane`` the target of the per-lane protocol methods."""
        if not 0 <= lane < self.lanes:
            raise ConfigurationError(f"lane {lane} out of range [0, {self.lanes})")
        self._lane = lane
        return self

    # -- object layer (active lane) ------------------------------------------

    def knows(self, node: NodeId, token: Token) -> bool:
        return bool(
            self.know[self._lane, self.index_of[node], self.token_index[token]]
        )

    def known_tokens(self, node: NodeId) -> FrozenSet[Token]:
        row = self.know[self._lane, self.index_of[node]]
        tokens = self.tokens
        return frozenset(tokens[int(index)] for index in self.np.nonzero(row)[0])

    def missing_tokens(self, node: NodeId) -> List[Token]:
        row = self.know[self._lane, self.index_of[node]]
        tokens = self.tokens
        return [tokens[int(index)] for index in self.np.nonzero(~row)[0]]

    def is_node_complete(self, node: NodeId) -> bool:
        return int(self.known_counts[self._lane, self.index_of[node]]) == self.k

    def all_complete(self) -> bool:
        return self.incomplete_count() == 0

    def drain_learnings(self) -> List[Tuple[NodeId, Token]]:
        pairs: List[Tuple[NodeId, Token]] = []
        for segment in self.drain_lane_segments(self._lane):
            if segment[0] is SEG_COLUMN:
                _, _, token, indices, nodes = segment
                pairs.extend((nodes[index], token) for index in indices)
            else:
                pairs.extend((node, token) for _, node, token in segment[1])
        return pairs

    # -- index layer (active lane) -------------------------------------------

    def learn_index(self, node_index: int, token_bit_index: int) -> bool:
        return self.learn_lane_index(self._lane, node_index, token_bit_index)

    def know_mask(self, node_index: int) -> int:
        row = self.know[self._lane, node_index]
        mask = 0
        for index in self.np.nonzero(row)[0]:
            mask |= 1 << int(index)
        return mask

    def known_count(self, node_index: int) -> int:
        return int(self.known_counts[self._lane, node_index])

    def incomplete_count(self) -> int:
        return int((self.known_counts[self._lane] < self.k).sum())

    def holders_mask(self, token_bit_index: int) -> int:
        column = self.know[self._lane, :, token_bit_index]
        mask = 0
        for index in self.np.nonzero(column)[0]:
            mask |= 1 << int(index)
        return mask

    # -- bulk layer (all lanes) ----------------------------------------------

    def learn_lane_index(self, lane: int, node_index: int, token_bit_index: int) -> bool:
        """Index-layer learn on an explicit lane; buffers the lane's event."""
        if self.know[lane, node_index, token_bit_index]:
            return False
        self.know[lane, node_index, token_bit_index] = True
        self.known_counts[lane, node_index] += 1
        triple = (
            self.current_round,
            self.nodes[node_index],
            self.tokens[token_bit_index],
        )
        segments = self._lane_pending[lane]
        if segments and segments[-1][0] is SEG_TRIPLES:
            segments[-1][1].append(triple)
        else:
            segments.append((SEG_TRIPLES, [triple]))
        return True

    def holders_column(self, token_bit_index: int):
        """The ``(lanes, n)`` bool view of one token's holders (no copy)."""
        return self.know[:, :, token_bit_index]

    def learn_token_bulk(self, token_bit_index: int, learners) -> None:
        """Learn one token for a whole ``(lanes, n)`` learner matrix.

        ``learners`` must be ``False`` for nodes that already know the token
        and for every inactive lane.  Events are buffered lane-major with
        node indices ascending inside each lane — exactly the order a serial
        broadcast delivery would have produced.
        """
        np = self.np
        self.know[:, :, token_bit_index] |= learners
        self.known_counts += learners
        lane_ids, node_ids = np.nonzero(learners)
        if lane_ids.size == 0:
            return
        nodes = self.nodes
        token = self.tokens[token_bit_index]
        round_index = self.current_round
        pending = self._lane_pending
        # ``nonzero`` returns lane-major rows, so one searchsorted yields each
        # lane's slice; each slice becomes one columnar log segment — no
        # per-learning python objects are built here.
        node_list = node_ids.tolist()
        bounds = np.searchsorted(lane_ids, np.arange(self.lanes + 1)).tolist()
        for lane in range(self.lanes):
            start, stop = bounds[lane], bounds[lane + 1]
            if start != stop:
                pending[lane].append(
                    column_segment(round_index, token, node_list[start:stop], nodes)
                )

    def completed_lanes(self):
        """A ``(lanes,)`` bool array: which lanes have solved dissemination."""
        return (self.known_counts == self.k).all(axis=1)

    def drain_lane_segments(self, lane: int) -> List[tuple]:
        """Return (and clear) one lane's buffered, round-stamped learnings.

        Entries are event-log segments (see :mod:`repro.core.events`) in
        learn order (round-ascending because the kernel advances rounds
        monotonically) — ready for
        :meth:`~repro.core.events.EventLog.extend_segments`.
        """
        segments = self._lane_pending[lane]
        self._lane_pending[lane] = []
        return segments
