"""Communication models (Section 1.3).

* ``LOCAL_BROADCAST`` — in each round every node may locally broadcast one
  message which all of its neighbours receive; a local broadcast counts as a
  single message regardless of the number of neighbours.
* ``UNICAST`` — at the beginning of each round every node learns the IDs of
  its current neighbours and may send a different message to each of them;
  messages to different neighbours are counted separately.
"""

from __future__ import annotations

import enum


class CommunicationModel(enum.Enum):
    """The two communication modes studied in the paper."""

    LOCAL_BROADCAST = "local_broadcast"
    UNICAST = "unicast"

    @property
    def is_broadcast(self) -> bool:
        """True for the local broadcast model."""
        return self is CommunicationModel.LOCAL_BROADCAST

    @property
    def is_unicast(self) -> bool:
        """True for the unicast model."""
        return self is CommunicationModel.UNICAST

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value
