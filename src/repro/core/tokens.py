"""Tokens (the k pieces of information to disseminate).

Following the Multi-Source-Unicast algorithm (Section 3.2.1), a token carries
the identifier of its source node and an index within that source, i.e. the
token identifier ``⟨ID_x, i⟩`` of the paper.  Tokens are immutable and
hashable, and token-forwarding algorithms may only store, copy and forward
them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Sequence, Tuple

from repro.utils.ids import NodeId
from repro.utils.validation import ConfigurationError, require_positive_int


@dataclass(frozen=True, order=True)
class Token:
    """A single token ``⟨source, index⟩``.

    ``source`` is the node at which the token is initially placed and
    ``index`` numbers the tokens of that source from 1 to ``k_source``.
    """

    source: NodeId
    index: int

    def __post_init__(self) -> None:
        if self.index < 1:
            raise ConfigurationError(f"token indices start at 1, got {self.index}")

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"⟨{self.source},{self.index}⟩"


def make_tokens(source: NodeId, count: int) -> Tuple[Token, ...]:
    """Create ``count`` tokens originating at ``source`` with indices ``1..count``."""
    require_positive_int(count, "count")
    return tuple(Token(source=source, index=i) for i in range(1, count + 1))


def tokens_by_source(tokens: Iterable[Token]) -> Dict[NodeId, List[Token]]:
    """Group tokens by source node, each group sorted by index."""
    grouped: Dict[NodeId, List[Token]] = {}
    for token in tokens:
        grouped.setdefault(token.source, []).append(token)
    for source in grouped:
        grouped[source].sort()
    return grouped


def source_token_counts(tokens: Iterable[Token]) -> Dict[NodeId, int]:
    """Number of tokens per source node."""
    return {source: len(group) for source, group in tokens_by_source(tokens).items()}


def validate_token_universe(tokens: Sequence[Token]) -> Tuple[Token, ...]:
    """Validate that tokens are distinct and per-source indices are 1..k_source."""
    token_tuple = tuple(tokens)
    if len(set(token_tuple)) != len(token_tuple):
        raise ConfigurationError("tokens must be distinct")
    for source, group in tokens_by_source(token_tuple).items():
        indices = [token.index for token in group]
        if indices != list(range(1, len(group) + 1)):
            raise ConfigurationError(
                f"tokens of source {source} must be indexed 1..{len(group)}, got {indices}"
            )
    return token_tuple
