"""Simulation core: tokens, messages, problems, metrics and the round engine.

This package implements the synchronous round model of Section 1.3 of the
paper, for both communication modes:

* **local broadcast** — each node sends one message per round that all of its
  neighbours receive; each local broadcast counts as a single message;
* **unicast** — each node may send different messages to different neighbours;
  every message to a neighbour counts separately.

The staged round kernel (:mod:`repro.core.rounds`) drives an algorithm
against an adversary over a dynamic graph — commit, adversary, delivery and
accounting stages over a pluggable :mod:`knowledge state <repro.core.state>`
— records the graph trace, accounts for all messages and token-learning
events, and returns an :class:`~repro.core.result.ExecutionResult`.
:class:`~repro.core.engine.Simulator` is the reference façade over it.
"""

from repro.core.tokens import Token, make_tokens, tokens_by_source
from repro.core.messages import (
    MessageKind,
    TokenMessage,
    CompletenessMessage,
    RequestMessage,
    ReceivedMessage,
)
from repro.core.comm import CommunicationModel
from repro.core.problem import (
    DisseminationProblem,
    single_source_problem,
    multi_source_problem,
    n_gossip_problem,
    random_assignment_problem,
)
from repro.core.events import TokenLearning, EventLog
from repro.core.metrics import MessageAccountant, MessageStatistics
from repro.core.observation import RoundObservation
from repro.core.result import ExecutionResult
from repro.core.state import (
    BitsetKnowledgeState,
    KnowledgeState,
    MappingKnowledgeState,
)
from repro.core.rounds import RoundKernel
from repro.core.engine import Simulator

__all__ = [
    "Token",
    "make_tokens",
    "tokens_by_source",
    "MessageKind",
    "TokenMessage",
    "CompletenessMessage",
    "RequestMessage",
    "ReceivedMessage",
    "CommunicationModel",
    "DisseminationProblem",
    "single_source_problem",
    "multi_source_problem",
    "n_gossip_problem",
    "random_assignment_problem",
    "TokenLearning",
    "EventLog",
    "MessageAccountant",
    "MessageStatistics",
    "RoundObservation",
    "ExecutionResult",
    "KnowledgeState",
    "MappingKnowledgeState",
    "BitsetKnowledgeState",
    "RoundKernel",
    "Simulator",
]
