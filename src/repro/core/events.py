"""Token-learning events (Definition 1.4) and the execution event log.

A token learning ``⟨v, τ, r⟩`` occurs when node ``v`` receives token ``τ``
for the first time in round ``r``.  If each of the k tokens is initially
given to exactly one node, exactly ``k(n-1)`` token learnings must occur in
any execution that solves k-token dissemination.

Executions record hundreds of thousands of learnings, while most consumers
only ever ask for counts, so the log stores learnings as cheap *segments*
(a round's worth of pairs, a vectorized column of node indices, or raw
stamped triples) and materializes :class:`TokenLearning` objects and the
per-round / per-node aggregates lazily, on first access.  The hot engine
loops append through :meth:`EventLog.record_bulk` and
:meth:`EventLog.extend_segments`, which never construct event objects.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.core.tokens import Token
from repro.utils.ids import NodeId

#: Segment tags: a list of ``(node, token)`` pairs sharing one round, a
#: column of node *indices* learning one token in one round (resolved
#: against a node sequence at materialization time), and pre-stamped
#: ``(round, node, token)`` triples.
SEG_PAIRS = "pairs"
SEG_COLUMN = "column"
SEG_TRIPLES = "triples"


@dataclass(frozen=True, order=True, slots=True)
class TokenLearning:
    """The event ``⟨node, token, round⟩``: ``node`` learns ``token`` in round ``round``."""

    round_index: int
    node: NodeId
    token: Token


def column_segment(
    round_index: int,
    token: Token,
    node_indices: List[int],
    nodes: Sequence[NodeId],
) -> Tuple[str, int, Token, List[int], Sequence[NodeId]]:
    """A segment of ``len(node_indices)`` learnings of one token in one round.

    ``node_indices`` index into ``nodes``; the lookup is deferred until the
    log is actually read.  The caller hands over ownership of the list.
    """
    return (SEG_COLUMN, round_index, token, node_indices, nodes)


class EventLog:
    """An append-only log of token-learning events with per-round aggregation."""

    def __init__(self) -> None:
        self._segments: List[tuple] = []
        self._count = 0
        self._materialized: Optional[List[TokenLearning]] = None
        self._per_round: Optional[Dict[int, int]] = None
        self._per_node: Optional[Dict[NodeId, int]] = None

    def record(self, round_index: int, node: NodeId, token: Token) -> TokenLearning:
        """Append a token-learning event and return it."""
        event = TokenLearning(round_index=round_index, node=node, token=token)
        segments = self._segments
        if segments and segments[-1][0] is SEG_TRIPLES:
            segments[-1][1].append((round_index, node, token))
        else:
            segments.append((SEG_TRIPLES, [(round_index, node, token)]))
        self._count += 1
        if self._materialized is not None:
            self._materialized.append(event)
        if self._per_round is not None:
            self._per_round[round_index] = self._per_round.get(round_index, 0) + 1
        if self._per_node is not None:
            self._per_node[node] = self._per_node.get(node, 0) + 1
        return event

    def record_bulk(
        self, round_index: int, learnings: List[Tuple[NodeId, Token]]
    ) -> None:
        """Append ``⟨node, token, round_index⟩`` for every pair, in order.

        The fast path for the serial kernel's per-round drain: the list is
        stored as-is (the caller hands over ownership) and no event objects
        or aggregates are built until somebody asks.
        """
        if not isinstance(learnings, list):
            learnings = list(learnings)
        if not learnings:
            return
        self._segments.append((SEG_PAIRS, round_index, learnings))
        self._count += len(learnings)
        self._invalidate()

    def extend_segments(self, segments: List[tuple]) -> None:
        """Append pre-built segments (see module tags) in order.

        The batch kernel's once-per-run drain: a lane's whole history of
        column and triple segments arrives in one call, with rounds
        non-decreasing across segments.
        """
        count = 0
        for segment in segments:
            tag = segment[0]
            if tag is SEG_COLUMN:
                count += len(segment[3])
            elif tag is SEG_PAIRS:
                count += len(segment[2])
            else:
                count += len(segment[1])
        if not count:
            return
        self._segments.extend(segments)
        self._count += count
        self._invalidate()

    def _invalidate(self) -> None:
        self._materialized = None
        self._per_round = None
        self._per_node = None

    def _iter_raw(self) -> Iterator[Tuple[int, NodeId, Token]]:
        for segment in self._segments:
            tag = segment[0]
            if tag is SEG_COLUMN:
                _, round_index, token, indices, nodes = segment
                for index in indices:
                    yield (round_index, nodes[index], token)
            elif tag is SEG_PAIRS:
                _, round_index, pairs = segment
                for node, token in pairs:
                    yield (round_index, node, token)
            else:
                yield from segment[1]

    def _events_list(self) -> List[TokenLearning]:
        events = self._materialized
        if events is None:
            events = self._materialized = [
                TokenLearning(round_index=r, node=v, token=t)
                for r, v, t in self._iter_raw()
            ]
        return events

    def _round_counts(self) -> Dict[int, int]:
        per_round = self._per_round
        if per_round is None:
            per_round = self._per_round = {}
            for segment in self._segments:
                tag = segment[0]
                if tag is SEG_COLUMN:
                    round_index, amount = segment[1], len(segment[3])
                    per_round[round_index] = per_round.get(round_index, 0) + amount
                elif tag is SEG_PAIRS:
                    round_index, amount = segment[1], len(segment[2])
                    per_round[round_index] = per_round.get(round_index, 0) + amount
                else:
                    for round_index, _, _ in segment[1]:
                        per_round[round_index] = per_round.get(round_index, 0) + 1
        return per_round

    def _node_counts(self) -> Dict[NodeId, int]:
        per_node = self._per_node
        if per_node is None:
            per_node = self._per_node = {}
            for _, node, _ in self._iter_raw():
                per_node[node] = per_node.get(node, 0) + 1
        return per_node

    @property
    def events(self) -> List[TokenLearning]:
        """All recorded events in insertion order."""
        return list(self._events_list())

    def total_learnings(self) -> int:
        """Total number of token-learning events."""
        return self._count

    def learnings_in_round(self, round_index: int) -> int:
        """Number of token learnings that occurred in a given round."""
        return self._round_counts().get(round_index, 0)

    def learnings_of_node(self, node: NodeId) -> int:
        """Number of tokens learned (not counting initial knowledge) by a node."""
        return self._node_counts().get(node, 0)

    def max_learnings_in_a_round(self) -> int:
        """The maximum number of learnings in any single round (0 if empty)."""
        return max(self._round_counts().values(), default=0)

    def rounds_with_learnings(self) -> List[int]:
        """The sorted list of rounds in which at least one learning occurred."""
        return sorted(self._round_counts())

    def last_learning_round(self) -> Optional[int]:
        """The last round in which any node learned a token, or ``None``."""
        per_round = self._round_counts()
        return max(per_round) if per_round else None

    def __iter__(self) -> Iterator[TokenLearning]:
        return iter(self._events_list())

    def __len__(self) -> int:
        return self._count
