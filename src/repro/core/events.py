"""Token-learning events (Definition 1.4) and the execution event log.

A token learning ``⟨v, τ, r⟩`` occurs when node ``v`` receives token ``τ``
for the first time in round ``r``.  If each of the k tokens is initially
given to exactly one node, exactly ``k(n-1)`` token learnings must occur in
any execution that solves k-token dissemination.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

from repro.core.tokens import Token
from repro.utils.ids import NodeId


@dataclass(frozen=True, order=True, slots=True)
class TokenLearning:
    """The event ``⟨node, token, round⟩``: ``node`` learns ``token`` in round ``round``."""

    round_index: int
    node: NodeId
    token: Token


class EventLog:
    """An append-only log of token-learning events with per-round aggregation."""

    def __init__(self) -> None:
        self._events: List[TokenLearning] = []
        self._per_round: Dict[int, int] = {}
        self._per_node: Dict[NodeId, int] = {}

    def record(self, round_index: int, node: NodeId, token: Token) -> TokenLearning:
        """Append a token-learning event and return it."""
        event = TokenLearning(round_index=round_index, node=node, token=token)
        self._events.append(event)
        self._per_round[round_index] = self._per_round.get(round_index, 0) + 1
        self._per_node[node] = self._per_node.get(node, 0) + 1
        return event

    @property
    def events(self) -> List[TokenLearning]:
        """All recorded events in insertion order."""
        return list(self._events)

    def total_learnings(self) -> int:
        """Total number of token-learning events."""
        return len(self._events)

    def learnings_in_round(self, round_index: int) -> int:
        """Number of token learnings that occurred in a given round."""
        return self._per_round.get(round_index, 0)

    def learnings_of_node(self, node: NodeId) -> int:
        """Number of tokens learned (not counting initial knowledge) by a node."""
        return self._per_node.get(node, 0)

    def max_learnings_in_a_round(self) -> int:
        """The maximum number of learnings in any single round (0 if empty)."""
        return max(self._per_round.values(), default=0)

    def rounds_with_learnings(self) -> List[int]:
        """The sorted list of rounds in which at least one learning occurred."""
        return sorted(self._per_round)

    def last_learning_round(self) -> Optional[int]:
        """The last round in which any node learned a token, or ``None``."""
        return max(self._per_round) if self._per_round else None

    def __iter__(self) -> Iterator[TokenLearning]:
        return iter(self._events)

    def __len__(self) -> int:
        return len(self._events)
