"""Execution results returned by the simulator."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.comm import CommunicationModel
from repro.core.events import EventLog
from repro.core.metrics import MessageStatistics
from repro.core.problem import DisseminationProblem
from repro.dynamics.graph_sequence import DynamicGraphTrace
from repro.utils.validation import ConfigurationError


@dataclass
class ExecutionResult:
    """The outcome of running one algorithm against one adversary.

    The result bundles everything needed to evaluate the paper's cost
    measures: message statistics, the recorded dynamic-graph trace (for
    ``TC(E)``), the token-learning event log and termination information.
    """

    algorithm_name: str
    communication_model: CommunicationModel
    problem: DisseminationProblem
    completed: bool
    rounds: int
    messages: MessageStatistics
    trace: DynamicGraphTrace
    events: EventLog
    adversary_name: str = ""
    #: Wall seconds per kernel stage (commit/adversary/delivery/accounting),
    #: populated only when the execution ran under a timing tracer.  Never
    #: part of records or differential comparison — purely observability.
    timings: Optional[Dict[str, float]] = None

    @property
    def total_messages(self) -> int:
        """Total message complexity of the execution (Definition 1.1)."""
        return self.messages.total_messages

    @property
    def topological_changes(self) -> int:
        """``TC(E)`` — total number of edge insertions over the execution."""
        return self.trace.topological_changes()

    @property
    def num_tokens(self) -> int:
        """``k``."""
        return self.problem.num_tokens

    @property
    def num_nodes(self) -> int:
        """``n``."""
        return self.problem.num_nodes

    def amortized_messages(self) -> float:
        """Amortized message complexity: total messages per token."""
        return self.messages.amortized(self.num_tokens)

    def adversary_competitive_messages(self, alpha: float = 1.0) -> float:
        """α-adversary-competitive cost ``max(0, total - α · TC(E))`` (Definition 1.3)."""
        return self.messages.adversary_competitive(self.topological_changes, alpha)

    def amortized_adversary_competitive_messages(self, alpha: float = 1.0) -> float:
        """Adversary-competitive cost per token."""
        return self.messages.amortized_adversary_competitive(
            self.num_tokens, self.topological_changes, alpha
        )

    def token_learnings(self) -> int:
        """Number of token-learning events recorded (Definition 1.4)."""
        return self.events.total_learnings()

    def verify_dissemination(self) -> None:
        """Raise unless the execution actually solved the dissemination problem.

        A completed execution must have produced exactly the number of token
        learnings required by the initial distribution.
        """
        if not self.completed:
            raise ConfigurationError(
                f"execution of {self.algorithm_name} did not complete within {self.rounds} rounds"
            )
        required = self.problem.required_token_learnings()
        observed = self.events.total_learnings()
        if observed != required:
            raise ConfigurationError(
                f"expected {required} token learnings for a correct execution, observed {observed}"
            )

    def summary(self) -> Dict[str, object]:
        """A flat dictionary summary suitable for experiment tables."""
        return {
            "algorithm": self.algorithm_name,
            "adversary": self.adversary_name,
            "model": self.communication_model.value,
            "n": self.num_nodes,
            "k": self.num_tokens,
            "s": self.problem.num_sources,
            "completed": self.completed,
            "rounds": self.rounds,
            "total_messages": self.total_messages,
            "amortized_messages": self.amortized_messages(),
            "topological_changes": self.topological_changes,
            "adversary_competitive": self.adversary_competitive_messages(),
            "amortized_adversary_competitive": self.amortized_adversary_competitive_messages(),
            "token_learnings": self.token_learnings(),
        }
