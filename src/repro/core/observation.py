"""Observations handed to adaptive adversaries.

The strongly adaptive adversary of the paper chooses the round graph with
full knowledge of the algorithm's state, including the messages nodes are
about to send and their random choices (Section 1.3).  The engine exposes
this information through a :class:`RoundObservation`:

* in the **local broadcast** model the observation is built *after* the nodes
  have committed to their broadcast payloads for the round but *before* the
  graph is fixed (matching the lower-bound model of Section 2);
* in the **unicast** model neighbourhood information is available to nodes at
  the start of the round, so the adversary fixes the graph first; it observes
  the complete node state (knowledge sets and the messages of the previous
  round) when doing so.

Oblivious adversaries never receive an observation (the engine passes
``None``), which enforces obliviousness structurally.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Mapping, Optional, Tuple

from repro.core.messages import Payload
from repro.core.tokens import Token
from repro.utils.ids import NodeId


@dataclass(frozen=True, slots=True)
class SentRecord:
    """A message sent in a previous round: (sender, receiver, payload).

    For local broadcasts ``receiver`` is ``None``.
    """

    sender: NodeId
    receiver: Optional[NodeId]
    payload: Payload


@dataclass(frozen=True, slots=True)
class RoundObservation:
    """Everything a strongly adaptive adversary may inspect for the current round.

    Attributes:
        round_index: the 1-indexed round about to be played.
        knowledge: current token knowledge ``K_v(r-1)`` of every node.
        broadcast_payloads: in the local broadcast model, the payload each
            node has committed to broadcast this round (``None`` entries mean
            the node stays silent).  Empty in the unicast model.
        previous_messages: the messages sent in the previous round.
        algorithm_name: the name of the running algorithm.
        extra: free-form additional state exposed by the algorithm (e.g. the
            set of complete nodes for the unicast algorithms).
        knowledge_counts: the number of tokens each node knows,
            ``|K_v(r-1)|``.  Cheaper to materialize than the full knowledge
            sets; adversaries that only rank nodes by how much they know
            (e.g. star-recenter) declare this field instead of ``knowledge``.
            May be empty when the observation was built for an adversary
            that did not request it — fall back to ``len(knowledge[v])``.
    """

    round_index: int
    knowledge: Mapping[NodeId, FrozenSet[Token]]
    broadcast_payloads: Mapping[NodeId, Optional[Payload]] = field(default_factory=dict)
    previous_messages: Tuple[SentRecord, ...] = ()
    algorithm_name: str = ""
    extra: Mapping[str, object] = field(default_factory=dict)
    knowledge_counts: Mapping[NodeId, int] = field(default_factory=dict)

    def broadcasting_nodes(self) -> List[NodeId]:
        """The nodes that will broadcast a payload this round (local broadcast model)."""
        return sorted(
            node for node, payload in self.broadcast_payloads.items() if payload is not None
        )
