"""Strongly adaptive adversaries for the unicast algorithms.

These adversaries inspect the :class:`~repro.core.observation.RoundObservation`
built by the engine — the algorithm's knowledge sets and the messages of the
previous round — and rewire the topology to hurt the algorithm:

* :class:`RequestCuttingAdversary` removes every edge that carried a token
  request in the previous round, wasting the request (the responding token
  would have been sent over that edge).  This is exactly the behaviour the
  proof of Theorem 3.1 charges to the adversary via ``TC(E)``: every wasted
  request is paid for by an edge deletion, and every deletion is preceded by
  an insertion.
* :class:`StarRecenterAdversary` repeatedly recenters a star on the node that
  knows the fewest tokens, maximizing churn while slowing dissemination.
* :class:`AdaptiveRewiringAdversary` combines background churn with targeted
  removal of edges between nodes of very different knowledge (the edges over
  which most learning would happen).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set

from repro.adversaries.base import Adversary
from repro.core.messages import MessageKind
from repro.core.observation import RoundObservation
from repro.dynamics.connectivity import ensure_connected
from repro.dynamics.generators import random_connected_edges
from repro.utils.ids import Edge, NodeId, normalize_edge
from repro.utils.validation import require_non_negative_int, require_probability


class RequestCuttingAdversary(Adversary):
    """Removes edges that carried token requests in the previous round.

    Parameters:
        edge_probability: density of the background random graph.
        cut_fraction: fraction of the request-carrying edges removed each
            round (1.0 removes all of them).
    """

    oblivious = False
    observed_fields = frozenset({"previous_messages"})

    def __init__(
        self,
        edge_probability: float = 0.15,
        cut_fraction: float = 1.0,
        name: str = "request-cutting",
    ):
        super().__init__()
        require_probability(edge_probability, "edge_probability")
        require_probability(cut_fraction, "cut_fraction")
        self._edge_probability = edge_probability
        self._cut_fraction = cut_fraction
        self._current: Optional[Set[Edge]] = None
        self.name = name

    def on_reset(self) -> None:
        self._current = None

    def _request_edges(self, observation: Optional[RoundObservation]) -> Set[Edge]:
        if observation is None:
            return set()
        request_edges: Set[Edge] = set()
        for record in observation.previous_messages:
            if record.receiver is None:
                continue
            if record.payload.kind is MessageKind.REQUEST:
                request_edges.add(normalize_edge(record.sender, record.receiver))
        return request_edges

    def edges_for_round(
        self, round_index: int, observation: Optional[RoundObservation]
    ) -> Iterable[Edge]:
        nodes = list(self.nodes)
        if self._current is None:
            self._current = set(
                random_connected_edges(nodes, self._edge_probability, self.rng)
            )
            return set(self._current)
        edges = set(self._current)
        request_edges = sorted(self._request_edges(observation) & edges)
        num_to_cut = int(round(self._cut_fraction * len(request_edges)))
        for edge in self.rng.sample(request_edges, num_to_cut):
            edges.discard(edge)
        # Replace cut edges with fresh random edges so the density stays stable.
        candidates = [
            normalize_edge(u, v)
            for index, u in enumerate(nodes)
            for v in nodes[index + 1 :]
            if normalize_edge(u, v) not in edges
        ]
        replacements = self.rng.sample(candidates, min(num_to_cut, len(candidates)))
        edges.update(replacements)
        self._current = set(ensure_connected(nodes, edges, self.rng))
        return set(self._current)


class StarRecenterAdversary(Adversary):
    """A star recentred every round on the node that knows the fewest tokens.

    Adaptive: the choice of center depends on the algorithm's knowledge.  Every
    recentring inserts and removes Θ(n) edges, so ``TC(E)`` grows linearly in
    the number of rounds times ``n``.
    """

    oblivious = False
    observed_fields = frozenset({"knowledge_counts"})

    def __init__(self, name: str = "star-recenter"):
        super().__init__()
        self.name = name
        self._center: Optional[NodeId] = None

    def on_reset(self) -> None:
        self._center = None

    def _pick_center(self, observation: Optional[RoundObservation]) -> NodeId:
        nodes = list(self.nodes)
        if observation is None:
            return self.rng.choice(nodes)
        # Least-informed node, ties broken by ID; avoid repeating the center so
        # every round forces churn.  Knowledge counts suffice for the ranking;
        # observations built without them fall back to the full sets.
        counts = observation.knowledge_counts
        if counts:
            ranked = sorted(nodes, key=lambda node: (counts[node], node))
        else:
            ranked = sorted(nodes, key=lambda node: (len(observation.knowledge[node]), node))
        for node in ranked:
            if node != self._center:
                return node
        return ranked[0]

    def edges_for_round(
        self, round_index: int, observation: Optional[RoundObservation]
    ) -> Iterable[Edge]:
        self._center = self._pick_center(observation)
        return {
            normalize_edge(self._center, node)
            for node in self.nodes
            if node != self._center
        }


class AdaptiveRewiringAdversary(Adversary):
    """Background churn plus targeted cutting of high-value edges.

    Each round the adversary removes up to ``targeted_cuts`` edges whose two
    endpoints have the most dissimilar knowledge (those are the edges over
    which the most tokens could be learned), plus random churn, then repairs
    connectivity.
    """

    oblivious = False
    observed_fields = frozenset({"knowledge"})

    def __init__(
        self,
        edge_probability: float = 0.15,
        targeted_cuts: int = 5,
        random_churn: int = 2,
        name: str = "adaptive-rewiring",
    ):
        super().__init__()
        require_probability(edge_probability, "edge_probability")
        require_non_negative_int(targeted_cuts, "targeted_cuts")
        require_non_negative_int(random_churn, "random_churn")
        self._edge_probability = edge_probability
        self._targeted_cuts = targeted_cuts
        self._random_churn = random_churn
        self._current: Optional[Set[Edge]] = None
        self.name = name

    def on_reset(self) -> None:
        self._current = None

    def _knowledge_gap(self, observation: RoundObservation, edge: Edge) -> int:
        u, v = edge
        known_u = observation.knowledge[u]
        known_v = observation.knowledge[v]
        return len(known_u ^ known_v)

    def edges_for_round(
        self, round_index: int, observation: Optional[RoundObservation]
    ) -> Iterable[Edge]:
        nodes = list(self.nodes)
        if self._current is None:
            self._current = set(
                random_connected_edges(nodes, self._edge_probability, self.rng)
            )
            return set(self._current)
        edges = set(self._current)
        removed = 0
        if observation is not None and self._targeted_cuts > 0:
            ranked = sorted(
                edges,
                key=lambda edge: self._knowledge_gap(observation, edge),
                reverse=True,
            )
            for edge in ranked[: self._targeted_cuts]:
                if self._knowledge_gap(observation, edge) == 0:
                    break
                edges.discard(edge)
                removed += 1
        removable = sorted(edges)
        for edge in self.rng.sample(removable, min(self._random_churn, len(removable))):
            edges.discard(edge)
            removed += 1
        candidates = [
            normalize_edge(u, v)
            for index, u in enumerate(nodes)
            for v in nodes[index + 1 :]
            if normalize_edge(u, v) not in edges
        ]
        edges.update(self.rng.sample(candidates, min(removed, len(candidates))))
        self._current = set(ensure_connected(nodes, edges, self.rng))
        return set(self._current)
