"""Oblivious adversaries.

An oblivious adversary commits to the entire topology sequence before the
execution starts (Section 1.3).  We provide two flavours:

* :class:`ScheduleAdversary` replays a pre-committed
  :class:`~repro.dynamics.graph_sequence.GraphSchedule`;
* lazily generated adversaries whose round graphs depend only on the round
  index and the adversary's private randomness (never on the algorithm);
  because the engine seeds the adversary before the execution and never hands
  it an observation, the generated sequence is equivalent to a pre-committed
  one.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set

from repro.adversaries.base import Adversary
from repro.core.observation import RoundObservation
from repro.dynamics.connectivity import ensure_connected, is_connected
from repro.dynamics.generators import random_connected_edges
from repro.dynamics.graph_sequence import GraphSchedule
from repro.utils.ids import Edge, normalize_edge
from repro.utils.validation import (
    ConfigurationError,
    require_non_negative_int,
    require_probability,
)


class ScheduleAdversary(Adversary):
    """Replays a pre-committed schedule; the last round graph repeats forever."""

    oblivious = True

    def __init__(self, schedule: GraphSchedule, name: str = "schedule"):
        super().__init__()
        self._schedule = schedule
        self.name = name

    @property
    def schedule(self) -> GraphSchedule:
        """The committed schedule."""
        return self._schedule

    @property
    def steady_after_round(self) -> int:
        """Past the schedule's length the last round graph repeats forever."""
        return self._schedule.num_rounds

    def on_reset(self) -> None:
        if set(self._schedule.nodes) != set(self.problem.nodes):
            raise ConfigurationError(
                "the schedule's node set does not match the problem's node set"
            )

    def edges_for_round(
        self, round_index: int, observation: Optional[RoundObservation]
    ) -> Iterable[Edge]:
        return self._schedule.edges_for_round(round_index)


class StaticAdversary(ScheduleAdversary):
    """A static (never changing) network given by a single connected edge set."""

    def __init__(self, num_nodes: int, edges: Iterable[Edge], name: str = "static"):
        nodes = list(range(num_nodes))
        edge_set = {normalize_edge(u, v) for (u, v) in edges}
        if not is_connected(nodes, edge_set):
            raise ConfigurationError("StaticAdversary requires a connected edge set")
        super().__init__(GraphSchedule(nodes, [edge_set]), name=name)


class RandomChurnObliviousAdversary(Adversary):
    """Fresh connected G(n, p) graph every ``period`` rounds, independent of the algorithm."""

    oblivious = True

    def __init__(
        self,
        edge_probability: float = 0.1,
        period: int = 1,
        name: str = "random-churn",
    ):
        super().__init__()
        require_probability(edge_probability, "edge_probability")
        if period < 1:
            raise ConfigurationError("period must be at least 1")
        self._edge_probability = edge_probability
        self._period = period
        self._current: Optional[Set[Edge]] = None
        self.name = name

    def on_reset(self) -> None:
        self._current = None

    def edges_for_round(
        self, round_index: int, observation: Optional[RoundObservation]
    ) -> Iterable[Edge]:
        needs_refresh = self._current is None or (round_index - 1) % self._period == 0
        if needs_refresh:
            self._current = random_connected_edges(
                self.nodes, self._edge_probability, self.rng
            )
        return set(self._current)


class ControlledChurnAdversary(Adversary):
    """An oblivious adversary with an explicit per-round churn budget.

    Starting from a connected random graph, every round it removes up to
    ``changes_per_round`` random edges and inserts the same number of fresh
    random edges (then repairs connectivity).  The total number of
    topological changes of an x-round execution is therefore roughly
    ``changes_per_round · x`` plus the initial edges, which makes this
    adversary the workhorse for sweeping ``TC(E)`` in the
    adversary-competitive experiments.
    """

    oblivious = True

    def __init__(
        self,
        changes_per_round: int = 0,
        edge_probability: float = 0.15,
        name: str = "controlled-churn",
    ):
        super().__init__()
        require_non_negative_int(changes_per_round, "changes_per_round")
        require_probability(edge_probability, "edge_probability")
        self._changes_per_round = changes_per_round
        self._edge_probability = edge_probability
        self._current: Optional[Set[Edge]] = None
        self.name = name

    @property
    def changes_per_round(self) -> int:
        """The configured per-round churn budget."""
        return self._changes_per_round

    def on_reset(self) -> None:
        self._current = None

    def _initial_edges(self) -> Set[Edge]:
        return set(
            random_connected_edges(self.nodes, self._edge_probability, self.rng)
        )

    def edges_for_round(
        self, round_index: int, observation: Optional[RoundObservation]
    ) -> Iterable[Edge]:
        if self._current is None:
            self._current = self._initial_edges()
            return set(self._current)
        if self._changes_per_round == 0:
            return set(self._current)
        nodes = list(self.nodes)
        edges = set(self._current)
        removable = sorted(edges)
        to_remove = self.rng.sample(
            removable, min(self._changes_per_round, len(removable))
        )
        for edge in to_remove:
            edges.discard(edge)
        candidates = [
            normalize_edge(u, v)
            for index, u in enumerate(nodes)
            for v in nodes[index + 1 :]
            if normalize_edge(u, v) not in edges
        ]
        to_add = self.rng.sample(candidates, min(len(to_remove), len(candidates)))
        edges.update(to_add)
        self._current = set(ensure_connected(nodes, edges, self.rng))
        return set(self._current)
