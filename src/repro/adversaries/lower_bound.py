"""The Section-2 lower-bound adversary for the local broadcast model.

The strongly adaptive adversary used in the proof of Theorem 2.3 works as
follows.  Before the execution it samples, for every node ``v``, a set
``K'_v`` containing each token independently with probability 1/4.  In every
round, after the nodes have committed to the tokens they will broadcast
(``i_v(r)``, or ⊥ for silent nodes), the adversary declares the potential
edge ``{u, v}`` *free* iff

    ``i_u ∈ {⊥} ∪ K_v(r-1) ∪ K'_v``  and  ``i_v ∈ {⊥} ∪ K_u(r-1) ∪ K'_u``,

i.e. iff communication over the edge contributes nothing to the potential
``Φ(t) = Σ_v |K_v(t) ∪ K'_v|``.  The adversary connects the round graph using
free edges wherever possible and only adds ``(#components - 1)`` non-free
edges to keep the graph connected, so the potential grows by at most
``2 · (#components - 1)`` per round; Lemma 2.1 shows the number of components
is O(log n) and Lemma 2.2 shows it is 1 whenever at most ``n / (c log n)``
nodes broadcast.

Implementation note: the proof adds *all* free edges.  Adding them all is
irrelevant for the message count in the local broadcast model (a broadcast
costs one message regardless of degree) and for the potential (free edges
contribute nothing by definition), so to keep the simulated graphs sparse we
include a spanning forest of the free-edge graph plus the minimal set of
connecting non-free edges.  The number of connected components — the quantity
the analysis is about — is identical.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Set

from repro.adversaries.base import Adversary
from repro.core.messages import TokenMessage
from repro.core.observation import RoundObservation
from repro.core.tokens import Token
from repro.dynamics.connectivity import (
    connected_components,
    connecting_edges_between_components,
    spanning_forest,
)
from repro.utils.ids import Edge, NodeId, normalize_edge
from repro.utils.validation import ConfigurationError, SimulationError, require_probability


@dataclass
class LowerBoundRoundStats:
    """Per-round bookkeeping of the lower-bound adversary."""

    round_index: int
    broadcasting_nodes: int
    free_components: int
    non_free_edges_added: int


class LowerBoundAdversary(Adversary):
    """The strongly adaptive free-edge adversary of Section 2.

    Only meaningful for algorithms in the local broadcast model.  The
    adversary exposes its sampled ``K'_v`` sets (:attr:`kprime_sets`) and
    per-round statistics (:attr:`round_stats`) so the analysis package can
    evaluate the potential function and verify the lemmas empirically.
    """

    oblivious = False
    observed_fields = frozenset({"knowledge", "broadcast_payloads"})

    def __init__(self, inclusion_probability: float = 0.25, name: str = "lower-bound"):
        super().__init__()
        require_probability(inclusion_probability, "inclusion_probability")
        self._inclusion_probability = inclusion_probability
        self._kprime: Dict[NodeId, FrozenSet[Token]] = {}
        self._round_stats: List[LowerBoundRoundStats] = []
        self.name = name

    # -- setup ---------------------------------------------------------------

    def on_reset(self) -> None:
        self._round_stats = []
        tokens = self.problem.tokens
        self._kprime = {
            node: frozenset(
                token for token in tokens if self.rng.random() < self._inclusion_probability
            )
            for node in self.nodes
        }

    @property
    def kprime_sets(self) -> Dict[NodeId, FrozenSet[Token]]:
        """The sampled ``K'_v`` sets of the current execution."""
        return dict(self._kprime)

    @property
    def round_stats(self) -> List[LowerBoundRoundStats]:
        """Per-round component/broadcast statistics recorded so far."""
        return list(self._round_stats)

    def initial_potential(self) -> int:
        """``Φ(0) = Σ_v |K_v(0) ∪ K'_v|``."""
        return sum(
            len(set(self.problem.initial_knowledge[node]) | set(self._kprime[node]))
            for node in self.nodes
        )

    # -- round graph ----------------------------------------------------------

    @staticmethod
    def _broadcast_token(payload) -> Optional[Token]:
        if payload is None:
            return None
        if isinstance(payload, TokenMessage):
            return payload.token
        # Non-token broadcasts carry no token, so they can never increase the
        # potential; treat them like silence for the free-edge test.
        return None

    def _is_free(
        self,
        token_u: Optional[Token],
        token_v: Optional[Token],
        knowledge_u: FrozenSet[Token],
        knowledge_v: FrozenSet[Token],
        kprime_u: FrozenSet[Token],
        kprime_v: FrozenSet[Token],
    ) -> bool:
        u_harmless = token_u is None or token_u in knowledge_v or token_u in kprime_v
        v_harmless = token_v is None or token_v in knowledge_u or token_v in kprime_u
        return u_harmless and v_harmless

    def free_edges(self, observation: RoundObservation) -> Set[Edge]:
        """All free potential edges of the observed round (Section 2)."""
        nodes = list(self.nodes)
        tokens = {
            node: self._broadcast_token(observation.broadcast_payloads.get(node))
            for node in nodes
        }
        free: Set[Edge] = set()
        for index, u in enumerate(nodes):
            for v in nodes[index + 1 :]:
                if self._is_free(
                    tokens[u],
                    tokens[v],
                    observation.knowledge[u],
                    observation.knowledge[v],
                    self._kprime[u],
                    self._kprime[v],
                ):
                    free.add(normalize_edge(u, v))
        return free

    def edges_for_round(
        self, round_index: int, observation: Optional[RoundObservation]
    ) -> Iterable[Edge]:
        if observation is None:
            raise SimulationError(
                "LowerBoundAdversary is strongly adaptive and requires an observation; "
                "it cannot be used as an oblivious adversary"
            )
        if not self._kprime:
            raise ConfigurationError("adversary used before reset")
        free = self.free_edges(observation)
        forest = spanning_forest(self.nodes, free)
        components = connected_components(self.nodes, free)
        connectors = connecting_edges_between_components(components, self.rng)
        self._round_stats.append(
            LowerBoundRoundStats(
                round_index=round_index,
                broadcasting_nodes=len(observation.broadcasting_nodes()),
                free_components=len(components),
                non_free_edges_added=len(connectors),
            )
        )
        return forest | connectors

    # -- diagnostics ------------------------------------------------------------

    def max_free_components(self) -> int:
        """The maximum number of free-edge components seen in any round."""
        return max((stats.free_components for stats in self._round_stats), default=0)

    def total_non_free_edges(self) -> int:
        """Total number of non-free connecting edges the adversary had to add."""
        return sum(stats.non_free_edges_added for stats in self._round_stats)
