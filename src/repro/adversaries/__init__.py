"""Dynamic-network adversaries.

The paper distinguishes two worst-case adversaries (Section 1.3):

* the **strongly adaptive** adversary fixes the round graph knowing the full
  state of the algorithm, including the messages about to be sent and the
  algorithm's randomness for the round;
* the **oblivious** adversary must commit to the whole topology sequence
  before the execution starts.

Both must keep every round graph connected.  This package provides the
adversary protocol, oblivious adversaries driven by schedules or lazy
generators, adaptive adversaries that attack the unicast algorithms, the
Section-2 lower-bound adversary for the local broadcast model, and a
controlled-churn adversary used to sweep the number of topological changes
``TC(E)``.
"""

from repro.adversaries.base import Adversary
from repro.adversaries.oblivious import (
    ScheduleAdversary,
    StaticAdversary,
    RandomChurnObliviousAdversary,
    ControlledChurnAdversary,
)
from repro.adversaries.adaptive import (
    AdaptiveRewiringAdversary,
    RequestCuttingAdversary,
    StarRecenterAdversary,
)
from repro.adversaries.lower_bound import LowerBoundAdversary

__all__ = [
    "Adversary",
    "ScheduleAdversary",
    "StaticAdversary",
    "RandomChurnObliviousAdversary",
    "ControlledChurnAdversary",
    "AdaptiveRewiringAdversary",
    "RequestCuttingAdversary",
    "StarRecenterAdversary",
    "LowerBoundAdversary",
]
