"""The adversary protocol.

An adversary produces the edge set ``E_r`` of every round.  The engine calls
:meth:`Adversary.reset` once per execution (handing it the problem instance
and a private random generator) and then :meth:`Adversary.edges_for_round`
once per round.

Adaptive adversaries receive a :class:`~repro.core.observation.RoundObservation`
describing the algorithm's state; oblivious adversaries receive ``None`` —
the engine enforces obliviousness structurally by never building an
observation for an adversary whose :attr:`Adversary.oblivious` flag is set.
"""

from __future__ import annotations

import abc
import random
from typing import FrozenSet, Iterable, Optional, Tuple

from repro.core.observation import RoundObservation
from repro.core.problem import DisseminationProblem
from repro.utils.ids import Edge, NodeId
from repro.utils.validation import SimulationError


class Adversary(abc.ABC):
    """Base class for all adversaries."""

    #: Human-readable name used in results and reports.
    name: str = "adversary"
    #: True for adversaries that commit to the topology before the execution.
    oblivious: bool = True
    #: The :class:`~repro.core.observation.RoundObservation` fields this
    #: adversary actually reads (field names such as ``"knowledge"``,
    #: ``"knowledge_counts"``, ``"previous_messages"``,
    #: ``"broadcast_payloads"``, ``"extra"``).  ``None`` means "everything"
    #: — the safe default for third-party adversaries.  Declaring a narrow
    #: set lets the kernel skip materializing the expensive fields (e.g.
    #: per-node knowledge sets) it will never look at.  Irrelevant for
    #: oblivious adversaries, which receive no observation at all.
    observed_fields: Optional[FrozenSet[str]] = None
    #: If not ``None``, a round index ``s`` such that for every round
    #: ``r >= s`` the adversary returns a graph equal to the round-``s``
    #: graph — i.e. the topology goes *steady* from round ``s`` on.  The
    #: kernel uses this to skip querying (and re-validating) the edge set
    #: once the steady round has been played.  ``None`` means "unknown"
    #: — the safe default; the adversary is queried every round.
    steady_after_round: Optional[int] = None

    def __init__(self) -> None:
        self._problem: Optional[DisseminationProblem] = None
        self._rng: Optional[random.Random] = None

    def reset(self, problem: DisseminationProblem, rng: random.Random) -> None:
        """Prepare for a fresh execution on ``problem``."""
        self._problem = problem
        self._rng = rng
        self.on_reset()

    def on_reset(self) -> None:
        """Subclass hook called at the end of :meth:`reset`."""

    @property
    def problem(self) -> DisseminationProblem:
        """The problem of the current execution."""
        if self._problem is None:
            raise SimulationError("the adversary has not been reset with a problem yet")
        return self._problem

    @property
    def nodes(self) -> Tuple[NodeId, ...]:
        """The node set ``V``."""
        return self.problem.nodes

    @property
    def rng(self) -> random.Random:
        """The adversary's private random generator."""
        if self._rng is None:
            raise SimulationError("the adversary has not been reset with an RNG yet")
        return self._rng

    @abc.abstractmethod
    def edges_for_round(
        self, round_index: int, observation: Optional[RoundObservation]
    ) -> Iterable[Edge]:
        """Return the edge set ``E_r`` of round ``round_index`` (must be connected)."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(name={self.name!r}, oblivious={self.oblivious})"
