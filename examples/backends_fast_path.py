"""Execution backends: pick a fast path, prove it is exact, measure it.

This example shows the three moves of the backend subsystem:

1. run the *same* scenario spec under the reference engine and the bitset
   fast path (only ``backend`` differs — seeds, and therefore the adversary's
   randomness, are identical by construction);
2. differentially validate the backends field by field;
3. time both to see what the fast path buys.

Run with::

    PYTHONPATH=src python examples/backends_fast_path.py
"""

from __future__ import annotations

import time

from repro.backends.differential import validate_backends
from repro.scenarios import ScenarioSpec, run_scenario


def make_spec(num_nodes: int = 48) -> ScenarioSpec:
    """Flooding with k = n over a static random graph (the classic sweep)."""
    return ScenarioSpec(
        problem="single-source",
        problem_params={"num_nodes": num_nodes, "num_tokens": num_nodes},
        algorithm="flooding",
        algorithm_params={"rounds_per_token": 8},
        adversary="static-random",
        adversary_params={"num_nodes": num_nodes},
        name="backends-demo",
    )


def run_same_spec_on_both_backends(num_nodes: int = 48) -> None:
    """Identical records out of either backend; only wall-clock differs."""
    spec = make_spec(num_nodes)
    timings = {}
    results = {}
    for backend in ("reference", "bitset"):
        variant = ScenarioSpec.from_dict({**spec.to_dict(), "backend": backend})
        start = time.perf_counter()
        results[backend] = run_scenario(variant)
        timings[backend] = time.perf_counter() - start
    reference, bitset = results["reference"], results["bitset"]
    print(f"n = k = {num_nodes}, flooding on a static random graph")
    for backend, result in results.items():
        print(
            f"  {backend:>9}: rounds={result.rounds} "
            f"messages={result.total_messages} "
            f"learnings={result.token_learnings()} "
            f"({timings[backend]:.3f}s)"
        )
    assert reference.total_messages == bitset.total_messages
    assert reference.events.events == bitset.events.events
    print(f"  identical results, {timings['reference'] / timings['bitset']:.1f}x faster")


def differentially_validate() -> None:
    """The harness behind ``python -m repro verify-backend``."""
    specs = [
        ScenarioSpec.from_dict({**make_spec(16).to_dict(), "seed": seed})
        for seed in (0, 1, 2)
    ]
    report = validate_backends(specs, candidate="bitset")
    print(
        f"differential validation: {len(report.outcomes)} executions, "
        f"{'PASS' if report.passed else 'FAIL'}"
    )


def adaptive_adversaries_run_on_the_fast_path() -> None:
    """Since the staged round kernel, the bitset backend also covers adaptive
    adversaries: the kernel builds each RoundObservation lazily from the
    bitmask state, so the strongly adaptive star-recenter adversary sees
    exactly what it would see under the reference engine."""
    spec = ScenarioSpec(
        problem="single-source",
        problem_params={"num_nodes": 16, "num_tokens": 12},
        algorithm="single-source",
        adversary="star-recenter",
        name="backends-demo-adaptive",
    )
    report = validate_backends([spec], candidate="bitset")
    print(
        f"adaptive adversary (star-recenter): "
        f"{'identical results on both backends' if report.passed else 'FAIL'}"
    )


def main() -> None:
    run_same_spec_on_both_backends()
    print()
    differentially_validate()
    adaptive_adversaries_run_on_the_fast_path()


if __name__ == "__main__":
    main()
