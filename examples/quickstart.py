#!/usr/bin/env python3
"""Quickstart: disseminate k tokens from a single source on a churning network.

This example walks through the core workflow of the library using the
declarative Scenario API:

1. describe the experiment as a :class:`repro.ScenarioSpec` — problem,
   algorithm and adversary by registry name (Definition 1.2 / Section 1.3);
2. run it with :func:`repro.run_scenario`;
3. read off the paper's cost measures — total, amortized and
   adversary-competitive message complexity (Definitions 1.1 and 1.3).

Specs are plain data: ``spec.to_json()`` round-trips through files and
worker processes, and ``python -m repro run --spec <file>`` re-runs the
exact same experiment from the shell.  The second example drops one level
down with :func:`repro.materialize` to keep a handle on the adversary
object while still naming everything through the registries.

Run with::

    python examples/quickstart.py
"""

from repro import (
    ScenarioSpec,
    Simulator,
    format_table,
    materialize,
    run_scenario,
    single_source_competitive_bound,
)


def run_unicast_example(num_nodes: int = 20, num_tokens: int = 40) -> None:
    """Algorithm 1 (Single-Source-Unicast) under a churn adversary."""
    spec = ScenarioSpec(
        problem="single-source",
        problem_params={"num_nodes": num_nodes, "num_tokens": num_tokens},
        algorithm="single-source",
        adversary="churn",
        adversary_params={"changes_per_round": 5, "edge_probability": 0.25},
        seed=7,
        name="quickstart-unicast",
    )
    result = run_scenario(spec)
    result.verify_dissemination()

    bound = single_source_competitive_bound(num_nodes, num_tokens)
    print("Single-Source-Unicast (Algorithm 1) under controlled churn")
    print(
        format_table(
            ["metric", "value"],
            [
                ["nodes (n)", num_nodes],
                ["tokens (k)", num_tokens],
                ["rounds", result.rounds],
                ["total messages", result.total_messages],
                ["topological changes TC(E)", result.topological_changes],
                ["amortized messages / token", round(result.amortized_messages(), 2)],
                [
                    "1-adversary-competitive cost",
                    round(result.adversary_competitive_messages(), 2),
                ],
                ["paper bound O(n^2 + nk)", bound],
                [
                    "amortized competitive / token",
                    round(result.amortized_adversary_competitive_messages(), 2),
                ],
            ],
        )
    )
    print()


def run_broadcast_example(num_nodes: int = 16) -> None:
    """Naive flooding against the Section-2 worst-case adversary."""
    spec = ScenarioSpec(
        problem="random-placement",
        problem_params={"num_nodes": num_nodes, "num_tokens": num_nodes, "seed": 3},
        algorithm="flooding",
        adversary="lower-bound",
        seed=3,
        name="quickstart-broadcast",
    )
    # materialize() gives access to the live objects (here: the adversary's
    # free-edge statistics) while the scenario stays registry-named.
    problem, algorithm, adversary = materialize(spec)
    result = Simulator(problem, algorithm, adversary, seed=spec.seed).run()

    print("Naive flooding against the strongly adaptive lower-bound adversary")
    print(
        format_table(
            ["metric", "value"],
            [
                ["nodes (n)", num_nodes],
                ["tokens (k)", problem.num_tokens],
                ["rounds", result.rounds],
                ["local broadcasts", result.total_messages],
                ["amortized broadcasts / token", round(result.amortized_messages(), 2)],
                ["naive bound n^2", num_nodes**2],
                ["max free-edge components seen", adversary.max_free_components()],
            ],
        )
    )
    print()


def main() -> None:
    run_unicast_example()
    run_broadcast_example()


if __name__ == "__main__":
    main()
