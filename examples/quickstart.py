#!/usr/bin/env python3
"""Quickstart: disseminate k tokens from a single source on a churning network.

This example walks through the core workflow of the library:

1. build a k-token dissemination problem (Definition 1.2);
2. pick an adversary that controls the dynamic topology;
3. run a token-forwarding algorithm with the synchronous round engine;
4. read off the paper's cost measures — total, amortized and
   adversary-competitive message complexity (Definitions 1.1 and 1.3).

Run with::

    python examples/quickstart.py
"""

from repro import (
    ControlledChurnAdversary,
    FloodingAlgorithm,
    LowerBoundAdversary,
    Simulator,
    SingleSourceUnicastAlgorithm,
    format_table,
    random_assignment_problem,
    single_source_problem,
    single_source_competitive_bound,
)


def run_unicast_example(num_nodes: int = 20, num_tokens: int = 40) -> None:
    """Algorithm 1 (Single-Source-Unicast) under a churn adversary."""
    problem = single_source_problem(num_nodes, num_tokens)
    adversary = ControlledChurnAdversary(changes_per_round=5, edge_probability=0.25)
    result = Simulator(problem, SingleSourceUnicastAlgorithm(), adversary, seed=7).run()
    result.verify_dissemination()

    bound = single_source_competitive_bound(num_nodes, num_tokens)
    print("Single-Source-Unicast (Algorithm 1) under controlled churn")
    print(
        format_table(
            ["metric", "value"],
            [
                ["nodes (n)", num_nodes],
                ["tokens (k)", num_tokens],
                ["rounds", result.rounds],
                ["total messages", result.total_messages],
                ["topological changes TC(E)", result.topological_changes],
                ["amortized messages / token", round(result.amortized_messages(), 2)],
                [
                    "1-adversary-competitive cost",
                    round(result.adversary_competitive_messages(), 2),
                ],
                ["paper bound O(n^2 + nk)", bound],
                [
                    "amortized competitive / token",
                    round(result.amortized_adversary_competitive_messages(), 2),
                ],
            ],
        )
    )
    print()


def run_broadcast_example(num_nodes: int = 16) -> None:
    """Naive flooding against the Section-2 worst-case adversary."""
    problem = random_assignment_problem(num_nodes, num_nodes, seed=3)
    adversary = LowerBoundAdversary()
    result = Simulator(problem, FloodingAlgorithm(), adversary, seed=3).run()

    print("Naive flooding against the strongly adaptive lower-bound adversary")
    print(
        format_table(
            ["metric", "value"],
            [
                ["nodes (n)", num_nodes],
                ["tokens (k)", problem.num_tokens],
                ["rounds", result.rounds],
                ["local broadcasts", result.total_messages],
                ["amortized broadcasts / token", round(result.amortized_messages(), 2)],
                ["naive bound n^2", num_nodes**2],
                ["max free-edge components seen", adversary.max_free_components()],
            ],
        )
    )
    print()


def main() -> None:
    run_unicast_example()
    run_broadcast_example()


if __name__ == "__main__":
    main()
