#!/usr/bin/env python3
"""Results warehouse walkthrough: run → store → aggregate → compare → report.

This example closes the loop the Scenario API opens.  PR-style pipeline:

1. a parameter sweep is expanded into :class:`repro.ScenarioSpec` objects
   and executed with the parallel-capable :class:`repro.ScenarioRunner`;
2. the emitted records are merged into an on-disk :class:`repro.RunStore`
   (idempotent: merging the same sweep twice changes nothing);
3. the store is queried and aggregated with bootstrap confidence intervals;
4. the measured scaling is compared against the paper's closed-form bounds
   (log-log slope fit → within-bound verdict);
5. the full markdown report — including the paper-vs-measured Table 1 —
   is rendered.

The same pipeline from the shell::

    python -m repro sweep --grid '{"num_nodes": [8, 12, 16]}' \\
        -n 8 -k 16 --repetitions 3 --store warehouse
    python -m repro analyze warehouse --bounds
    python -m repro report warehouse --output report.md

Run with::

    python examples/results_warehouse.py
"""

import tempfile

from repro import ScenarioRunner, ScenarioSpec, sweep
from repro.results import (
    RunStore,
    aggregate,
    compare_to_bounds,
    render_report,
    rows_to_table,
)
from repro.results.report import COMPARISON_COLUMNS


def main(num_repetitions: int = 3) -> None:
    base = ScenarioSpec(
        problem="single-source",
        problem_params={"num_nodes": 8, "num_tokens": 16},
        algorithm="single-source",
        adversary="churn",
        adversary_params={"changes_per_round": 3, "edge_probability": 0.3},
        repetitions=num_repetitions,
        name="warehouse-demo",
    )
    specs = sweep(base, {"problem.num_nodes": [8, 12, 16]})

    with tempfile.TemporaryDirectory() as tmp:
        store = RunStore(f"{tmp}/warehouse")

        records = ScenarioRunner().run(specs)
        added, skipped = store.add(records)
        print(f"first merge : {added} added, {skipped} skipped")

        # Idempotence: re-running the identical sweep adds nothing.
        added, skipped = store.add(ScenarioRunner().run(specs))
        print(f"second merge: {added} added, {skipped} skipped")

        rows = aggregate(store.records(), group_by=("algorithm", "n"))
        for row in rows:
            print(
                f"n={row['n']}: amortized competitive "
                f"{row['amortized_adversary_competitive_mean']:.2f} "
                f"[{row['amortized_adversary_competitive_ci_low']:.2f}, "
                f"{row['amortized_adversary_competitive_ci_high']:.2f}] "
                f"over {row['runs']} runs"
            )

        print()
        print(rows_to_table(compare_to_bounds(store.records()), COMPARISON_COLUMNS, "text"))
        print()
        print(render_report(store.records(), group_by=("algorithm", "n")))


if __name__ == "__main__":
    main()
