#!/usr/bin/env python3
"""Scenario: gossip in a churning peer-to-peer overlay (n-gossip).

The paper's introduction motivates the problem with peer-to-peer and overlay
networks where every peer has an update to share (k = n, one token per node)
and the membership graph changes continuously.  This example compares three
strategies on the same n-gossip instance under an oblivious churn adversary:

* plain Multi-Source-Unicast (Section 3.2.1) — pays the O(n²s) announcement
  term with s = n sources;
* the Oblivious-Multi-Source algorithm (Algorithm 2) — first reduces the
  sources to a few centers with random walks, then disseminates;
* naive flooding — the O(n²)-amortized local broadcast baseline.

Run with::

    python examples/p2p_gossip.py
"""

from repro import (
    FloodingAlgorithm,
    MultiSourceUnicastAlgorithm,
    ObliviousMultiSourceAlgorithm,
    ScheduleAdversary,
    Simulator,
    format_table,
    n_gossip_problem,
    rewiring_regular_schedule,
    schedule_summary,
)

NUM_NODES = 20
NUM_ROUNDS = 600
SEED = 11


def build_adversary() -> ScheduleAdversary:
    """An oblivious adversary driving a rewired quasi-regular overlay."""
    schedule = rewiring_regular_schedule(
        NUM_NODES, NUM_ROUNDS, degree=6, rewire_probability=0.4, seed=SEED
    )
    return ScheduleAdversary(schedule, name="p2p-overlay")


def run(algorithm, label: str):
    problem = n_gossip_problem(NUM_NODES)
    result = Simulator(problem, algorithm, build_adversary(), seed=SEED, max_rounds=5000).run()
    return {
        "strategy": label,
        "completed": result.completed,
        "rounds": result.rounds,
        "total messages": result.total_messages,
        "amortized / token": round(result.amortized_messages(), 1),
    }


def main() -> None:
    overlay = build_adversary().schedule
    summary = schedule_summary(overlay.prefix(50))
    print(
        f"Overlay: n = {summary.num_nodes}, mean degree = {summary.degrees.mean_degree:.1f}, "
        f"~{summary.churn.mean_insertions_per_round:.1f} edge insertions per round\n"
    )

    rows = [
        run(MultiSourceUnicastAlgorithm(), "multi-source unicast (s = n)"),
        run(
            ObliviousMultiSourceAlgorithm(force_two_phase=True, center_probability=0.2),
            "oblivious random-walk reduction",
        ),
        run(FloodingAlgorithm(), "naive flooding (local broadcast)"),
    ]
    print("n-gossip on a churning P2P overlay")
    print(
        format_table(
            ["strategy", "completed", "rounds", "total messages", "amortized / token"],
            [[row[c] for c in ("strategy", "completed", "rounds", "total messages",
                               "amortized / token")] for row in rows],
        )
    )
    print(
        "\nThe random-walk source reduction (Algorithm 2) sends fewer messages than "
        "running the multi-source protocol on all n sources, matching the paper's "
        "motivation for the oblivious-adversary algorithm."
    )


if __name__ == "__main__":
    main()
