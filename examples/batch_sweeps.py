"""Vectorized batch sweeps: run every repetition of a grid cell in lockstep.

The batch backend (``repro.batch``, needs the ``repro[fast]`` numpy extra)
executes all pending repetitions of one scenario as *lanes* of a single
vectorized kernel: one ``(lanes, n, k)`` knowledge cube, one program, and
per-lane adversaries/RNG streams that replay exactly what serial runs would
have drawn.  This example shows the three ways to reach it:

1. explicitly, through ``BatchBackend.run_batch`` — one call, one record per
   repetition, byte-identical to running each repetition serially;
2. implicitly, through the fluent :class:`~repro.api.Experiment` pipeline,
   which routes multi-repetition grid cells to the batch kernel on its own;
3. measured, with the same timing comparison CI gates
   (``python -m repro bench --sweeps``).

Run with::

    PYTHONPATH=src python examples/batch_sweeps.py
"""

from __future__ import annotations

import time

from repro.core.state import numpy_available
from repro.scenarios import ScenarioSpec
from repro.scenarios.runner import record_from_result, repetition_seed, run_spec


def make_spec(num_nodes: int = 48, repetitions: int = 8) -> ScenarioSpec:
    """Flooding with k = n over static random graphs, many repetitions."""
    return ScenarioSpec(
        problem="single-source",
        problem_params={"num_nodes": num_nodes, "num_tokens": num_nodes},
        algorithm="flooding",
        algorithm_params={"rounds_per_token": 8},
        adversary="static-random",
        adversary_params={"num_nodes": num_nodes},
        repetitions=repetitions,
        name="batch-demo",
    )


def run_batch_explicitly(num_nodes: int = 48, repetitions: int = 8) -> None:
    """All repetitions in one vectorized pass, records identical to serial."""
    from repro.backends import BatchBackend

    spec = make_spec(num_nodes, repetitions)

    start = time.perf_counter()
    serial_records = run_spec(spec)
    serial_seconds = time.perf_counter() - start

    start = time.perf_counter()
    results = BatchBackend().run_batch(spec)
    batch_seconds = time.perf_counter() - start
    batch_records = [
        record_from_result(spec, repetition, repetition_seed(spec, repetition), result)
        for repetition, result in enumerate(results)
    ]

    print(f"n = k = {num_nodes}, flooding, {repetitions} repetitions")
    print(f"  serial bitset-per-repetition: {serial_seconds:.3f}s")
    print(f"  batch (lockstep lanes):       {batch_seconds:.3f}s")
    assert serial_records == batch_records
    print(f"  identical records, {serial_seconds / batch_seconds:.1f}x faster")


def run_batch_through_the_pipeline() -> None:
    """``Experiment.run()`` groups pending repetitions and batches them."""
    from repro import Experiment

    runs = (
        Experiment.grid(
            algorithm="flooding",
            adversary="static-random",
            num_nodes=[24, 32],
            num_tokens=16,
        )
        .seeds(6)  # 6 repetitions per grid point
        .run()     # multi-repetition cells are dispatched to the batch kernel
    )
    print("pipeline sweep (auto-batched):")
    print(runs.aggregate(by=["n"]).table("md", statistics=("mean",)))


def adaptive_scenarios_fall_back() -> None:
    """Non-vectorizable scenarios still work: the backend runs them per lane."""
    from repro.backends import BatchBackend

    spec = ScenarioSpec(
        problem="single-source",
        problem_params={"num_nodes": 16, "num_tokens": 12},
        algorithm="single-source",
        adversary="star-recenter",  # adaptive: observes the algorithm
        repetitions=3,
        name="batch-demo-fallback",
    )
    results = BatchBackend().run_batch(spec)
    # star-recenter is the paper's lower-bound adversary: it is *supposed* to
    # stall dissemination, so runs hitting the round budget is the expected
    # outcome — the point here is only that the batch backend handles it.
    print(
        f"adaptive adversary (star-recenter): {len(results)} repetitions via "
        f"per-lane fallback, {sum(r.completed for r in results)} finished "
        f"within the round budget (the lower-bound adversary stalls the rest)"
    )


def main() -> None:
    if not numpy_available():
        print("numpy is not installed (pip install repro[fast]); skipping demo")
        return
    run_batch_explicitly()
    print()
    run_batch_through_the_pipeline()
    print()
    adaptive_scenarios_fall_back()


if __name__ == "__main__":
    main()
