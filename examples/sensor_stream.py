#!/usr/bin/env python3
"""Scenario: streaming many updates from one sink in a mobile sensor network.

The single-source case of the paper (Section 3.1) models, e.g., a base
station streaming a long sequence of configuration updates (k >> n tokens)
to every sensor while the radio connectivity graph keeps changing as nodes
move.  This example runs Algorithm 1 on a geometric-mobility workload and
shows the paper's headline claim for this regime: once the adversary is
charged for its topology changes, the amortized cost per update is linear in
the network size, far below the Θ(n²) cost of flooding each update.

Run with::

    python examples/sensor_stream.py
"""

from repro import (
    FloodingAlgorithm,
    ScheduleAdversary,
    Simulator,
    SingleSourceUnicastAlgorithm,
    format_table,
    geometric_mobility_schedule,
    single_source_problem,
    stabilize_schedule,
)

NUM_NODES = 18
NUM_TOKENS = 90          # a long update stream: k = 5n
SEED = 23


def build_adversary() -> ScheduleAdversary:
    """Mobile sensors on the unit square; edges persist at least 3 rounds."""
    schedule = geometric_mobility_schedule(
        NUM_NODES, 4000, radius=0.35, speed=0.04, seed=SEED
    )
    return ScheduleAdversary(stabilize_schedule(schedule, sigma=3), name="mobile-sensors")


def main() -> None:
    problem = single_source_problem(NUM_NODES, NUM_TOKENS, source=0)

    unicast = Simulator(
        problem, SingleSourceUnicastAlgorithm(), build_adversary(), seed=SEED, max_rounds=20000
    ).run()
    unicast.verify_dissemination()

    flooding = Simulator(
        single_source_problem(NUM_NODES, NUM_TOKENS, source=0),
        FloodingAlgorithm(),
        build_adversary(),
        seed=SEED,
        max_rounds=20000,
    ).run()

    print("Streaming k = 5n updates from a base station over a mobile sensor network\n")
    rows = [
        [
            "single-source unicast (Algorithm 1)",
            unicast.rounds,
            unicast.total_messages,
            unicast.topological_changes,
            round(unicast.amortized_messages(), 1),
            round(unicast.amortized_adversary_competitive_messages(), 1),
        ],
        [
            "flooding (local broadcast)",
            flooding.rounds,
            flooding.total_messages,
            flooding.topological_changes,
            round(flooding.amortized_messages(), 1),
            round(flooding.messages.amortized_adversary_competitive(
                NUM_TOKENS, flooding.topological_changes), 1),
        ],
    ]
    print(
        format_table(
            [
                "strategy",
                "rounds",
                "total messages",
                "TC(E)",
                "amortized / token",
                "amortized competitive / token",
            ],
            rows,
        )
    )
    print(
        f"\nWith k = {NUM_TOKENS} = 5n tokens, the adversary-competitive amortized cost of "
        f"Algorithm 1 is close to n = {NUM_NODES} (the optimal cost of delivering one token "
        "to every node), while flooding pays on the order of n² per token."
    )


if __name__ == "__main__":
    main()
