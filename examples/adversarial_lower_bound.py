#!/usr/bin/env python3
"""Scenario: watching the Section-2 lower bound bite.

This example reproduces the mechanics of the Ω(n²/log²n) local-broadcast
lower bound (Theorem 2.3).  The strongly adaptive adversary samples the
"discount" sets K'_v, keeps every free edge it can, and only adds the few
non-free edges needed to stay connected; the potential function
Φ(t) = Σ_v |K_v(t) ∪ K'_v| then grows by at most O(log n) per round, which is
what forces any local-broadcast algorithm to spend Ω(n²/log²n) amortized
messages.

The script runs naive flooding against this adversary, prints the potential
trajectory and the per-round component counts, and compares the measured
amortized cost with the analytic bounds.

Run with::

    python examples/adversarial_lower_bound.py
"""

from repro import (
    FloodingAlgorithm,
    LowerBoundAdversary,
    PotentialTracker,
    Simulator,
    flooding_amortized_upper_bound,
    format_table,
    local_broadcast_lower_bound,
    random_assignment_problem,
)

NUM_NODES = 20
NUM_TOKENS = 20
SEED = 5


def main() -> None:
    problem = random_assignment_problem(
        NUM_NODES, NUM_TOKENS, inclusion_probability=0.25, seed=SEED
    )
    adversary = LowerBoundAdversary()
    result = Simulator(problem, FloodingAlgorithm(), adversary, seed=SEED).run()

    tracker = PotentialTracker(problem, adversary.kprime_sets)
    trajectory = tracker.replay(result.events, result.rounds)

    print("Flooding vs the Section-2 strongly adaptive adversary\n")
    print(
        format_table(
            ["metric", "value"],
            [
                ["nodes (n) / tokens (k)", f"{NUM_NODES} / {NUM_TOKENS}"],
                ["completed", result.completed],
                ["rounds", result.rounds],
                ["local broadcasts", result.total_messages],
                ["measured amortized / token", round(result.amortized_messages(), 1)],
                [
                    "paper lower bound n^2/log^2 n",
                    round(local_broadcast_lower_bound(NUM_NODES), 1),
                ],
                ["paper upper bound n^2", flooding_amortized_upper_bound(NUM_NODES)],
            ],
        )
    )

    print("\nPotential function Φ(t) = Σ_v |K_v(t) ∪ K'_v|")
    print(
        format_table(
            ["quantity", "value"],
            [
                ["Φ(0)", trajectory.initial],
                ["target nk", tracker.maximum_potential()],
                ["Φ(end)", trajectory.final],
                ["max per-round increase", trajectory.max_round_increase],
                ["max free-edge components", adversary.max_free_components()],
                ["non-free edges ever added", adversary.total_non_free_edges()],
            ],
        )
    )

    # Show the first few rounds of the adversary's bookkeeping.
    rows = [
        [stats.round_index, stats.broadcasting_nodes, stats.free_components,
         stats.non_free_edges_added, increase]
        for stats, increase in list(zip(adversary.round_stats, trajectory.increases))[:12]
    ]
    print("\nFirst rounds of the execution (adversary view)")
    print(
        format_table(
            ["round", "broadcasters", "free components", "non-free edges", "Φ increase"],
            rows,
        )
    )
    print(
        "\nEvery round the potential grows by at most 2·(components − 1): the adversary "
        "keeps almost all communication on free edges, which is exactly the mechanism "
        "behind the Ω(n²/log²n) amortized lower bound."
    )


if __name__ == "__main__":
    main()
