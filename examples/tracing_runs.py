"""Observability: tracing runs, watching progress, summarizing timing.

The ``repro.obs`` package (stdlib-only) makes executions observable at
three granularities without changing a single result field:

1. **Spans** — a :class:`~repro.obs.TimingTracer` handed to any backend
   times the four kernel stages (commit / adversary / delivery /
   accounting) of every round; the per-stage totals come back on
   ``ExecutionResult.timings``.
2. **Progress events** — :meth:`~repro.api.Experiment.observe` registers
   callbacks that receive typed ``CellStarted`` / ``CellCached`` /
   ``CellCompleted`` / ``RunFinished`` events as a run streams, including
   per-cell backend and wall seconds.
3. **Trace files** — a :class:`~repro.obs.TraceWriter` observer persists
   those events as JSONL; ``summarize_trace`` folds a trace back into a
   per-backend, per-stage timing table (the same table the CLI renders
   via ``python -m repro trace summarize``).

Run with::

    PYTHONPATH=src python examples/tracing_runs.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro.obs import (
    CellCompleted,
    MetricsRegistry,
    TimingTracer,
    TraceWriter,
    read_trace,
    render_trace_summary,
    summarize_trace,
)
from repro.scenarios import ScenarioSpec
from repro.scenarios.runner import run_scenario


def make_spec(num_nodes: int = 16, repetitions: int = 3) -> ScenarioSpec:
    """Flooding with k = n over a static random graph."""
    return ScenarioSpec(
        problem="single-source",
        problem_params={"num_nodes": num_nodes, "num_tokens": num_nodes},
        algorithm="flooding",
        algorithm_params={"rounds_per_token": 8},
        adversary="static-random",
        adversary_params={"num_nodes": num_nodes},
        repetitions=repetitions,
        name="tracing-demo",
    )


def trace_one_run(num_nodes: int = 16) -> None:
    """A TimingTracer splits one execution into its four kernel stages."""
    tracer = TimingTracer()
    result = run_scenario(make_spec(num_nodes), tracer=tracer)
    print(f"one run: {result.rounds} rounds, {result.total_messages} messages")
    for stage, seconds in (result.timings or {}).items():
        print(f"  {stage:<12} {seconds * 1000:7.2f} ms")
    print(f"  span depth never exceeded {tracer.max_depth}")


def observe_experiment(num_nodes: int = 16, repetitions: int = 3) -> None:
    """Experiment.observe streams typed progress events as cells execute."""
    from repro import Experiment

    events = []
    experiment = (
        Experiment.grid(
            algorithm="flooding",
            adversary="static-random",
            num_nodes=num_nodes,
            num_tokens=num_nodes,
        )
        .seeds(repetitions)
        .observe(events.append, timings=True)
    )
    # RunSet executes lazily: events stream while records are consumed.
    records = experiment.run().records()
    print(f"observed {len(events)} events over {len(records)} records:")
    for event in events:
        name = type(event).__name__
        if isinstance(event, CellCompleted):
            print(
                f"  {name}: cell {event.index + 1}/{event.total} on "
                f"{event.backend} in {event.seconds:.3f}s"
            )
        else:
            print(f"  {name}")


def write_and_summarize_trace(num_nodes: int = 16, repetitions: int = 3) -> None:
    """TraceWriter persists events as JSONL; summarize_trace folds them back."""
    from repro import Experiment

    with tempfile.TemporaryDirectory() as tmp:
        trace_path = Path(tmp) / "trace.jsonl"
        with TraceWriter(trace_path) as writer:
            (
                Experiment.grid(
                    algorithm="flooding",
                    adversary="static-random",
                    num_nodes=num_nodes,
                    num_tokens=num_nodes,
                )
                .seeds(repetitions)
                .observe(writer, timings=True)
                .run()
                .records()  # consume: RunSet executes (and traces) lazily
            )
        summary = summarize_trace(read_trace(trace_path))
        print(render_trace_summary(summary))


def count_with_metrics(num_nodes: int = 12, repetitions: int = 2) -> None:
    """A MetricsRegistry aggregates counters and histograms across runs."""
    registry = MetricsRegistry()
    runs = registry.counter("demo.runs")
    rounds = registry.histogram("demo.rounds")
    spec = make_spec(num_nodes, repetitions)
    for repetition in range(spec.repetitions):
        result = run_scenario(spec, repetition)
        runs.inc()
        rounds.observe(result.rounds)
    snapshot = registry.snapshot()
    print(f"metrics: {snapshot['counters']['demo.runs']:.0f} runs, "
          f"mean rounds {snapshot['histograms']['demo.rounds']['mean']:.1f}")


def main() -> None:
    print("=== per-stage timing of one run ===")
    trace_one_run()
    print("\n=== progress events from an Experiment ===")
    observe_experiment()
    print("\n=== JSONL trace -> per-stage summary table ===")
    write_and_summarize_trace()
    print("\n=== metrics registry ===")
    count_with_metrics()


if __name__ == "__main__":
    main()
