"""Unit tests for connectivity helpers."""

import random

import pytest

from repro.dynamics.connectivity import (
    bfs_tree,
    connected_components,
    connecting_edges_between_components,
    ensure_connected,
    is_connected,
    spanning_forest,
)


class TestConnectedComponents:
    def test_single_node(self):
        assert connected_components([0], []) == [{0}]

    def test_disconnected_pairs(self):
        components = connected_components([0, 1, 2, 3], [(0, 1), (2, 3)])
        assert sorted(sorted(c) for c in components) == [[0, 1], [2, 3]]

    def test_fully_connected(self):
        components = connected_components([0, 1, 2], [(0, 1), (1, 2)])
        assert components == [{0, 1, 2}]

    def test_isolated_nodes_are_components(self):
        components = connected_components([0, 1, 2], [(0, 1)])
        assert len(components) == 2


class TestIsConnected:
    def test_path_is_connected(self):
        assert is_connected([0, 1, 2], [(0, 1), (1, 2)])

    def test_missing_edge_disconnects(self):
        assert not is_connected([0, 1, 2], [(0, 1)])

    def test_single_node_is_connected(self):
        assert is_connected([5], [])


class TestEnsureConnected:
    def test_already_connected_is_unchanged(self):
        edges = {(0, 1), (1, 2)}
        result = ensure_connected([0, 1, 2], edges, random.Random(0))
        assert result == edges

    def test_adds_minimum_number_of_edges(self):
        result = ensure_connected([0, 1, 2, 3], [(0, 1)], random.Random(0))
        # 3 components -> 2 connecting edges added.
        assert len(result) == 3
        assert is_connected([0, 1, 2, 3], result)

    def test_empty_edge_set_becomes_spanning_connected(self):
        result = ensure_connected(list(range(6)), [], random.Random(1))
        assert is_connected(list(range(6)), result)
        assert len(result) == 5

    def test_original_edges_preserved(self):
        result = ensure_connected([0, 1, 2, 3], [(2, 3)], random.Random(2))
        assert (2, 3) in result


class TestSpanningForest:
    def test_tree_of_connected_graph(self):
        forest = spanning_forest([0, 1, 2, 3], [(0, 1), (1, 2), (2, 3), (0, 3), (0, 2)])
        assert len(forest) == 3
        assert is_connected([0, 1, 2, 3], forest)

    def test_forest_of_disconnected_graph(self):
        forest = spanning_forest([0, 1, 2, 3], [(0, 1), (2, 3)])
        assert forest == {(0, 1), (2, 3)}

    def test_no_edges(self):
        assert spanning_forest([0, 1, 2], []) == set()


class TestConnectingEdges:
    def test_single_component_needs_nothing(self):
        assert connecting_edges_between_components([{0, 1}], random.Random(0)) == set()

    def test_k_components_need_k_minus_one_edges(self):
        edges = connecting_edges_between_components(
            [{0}, {1}, {2}, {3}], random.Random(0)
        )
        assert len(edges) == 3


class TestBfsTree:
    def test_parent_and_depth_on_path(self):
        parent, depth = bfs_tree([0, 1, 2, 3], [(0, 1), (1, 2), (2, 3)], root=0)
        assert parent[0] == 0
        assert parent[3] == 2
        assert depth == {0: 0, 1: 1, 2: 2, 3: 3}

    def test_unreachable_nodes_absent(self):
        parent, depth = bfs_tree([0, 1, 2], [(0, 1)], root=0)
        assert 2 not in parent
        assert 2 not in depth

    def test_star_depths(self):
        parent, depth = bfs_tree([0, 1, 2, 3], [(0, 1), (0, 2), (0, 3)], root=0)
        assert all(depth[node] == 1 for node in (1, 2, 3))
        assert all(parent[node] == 0 for node in (1, 2, 3))
