"""Tests for the algorithm base classes: knowledge tracking and edge classification."""

import random

import pytest

from repro.algorithms.base import LocalBroadcastAlgorithm, UnicastAlgorithm
from repro.core.comm import CommunicationModel
from repro.core.messages import ReceivedMessage, TokenMessage
from repro.core.problem import single_source_problem
from repro.core.tokens import Token
from repro.utils.validation import SimulationError


class MinimalUnicast(UnicastAlgorithm):
    """A do-nothing unicast algorithm used to exercise the base class."""

    name = "minimal-unicast"

    def select_messages(self, round_index, neighbors):
        return {}


class MinimalBroadcast(LocalBroadcastAlgorithm):
    """A do-nothing broadcast algorithm used to exercise the base class."""

    name = "minimal-broadcast"

    def select_broadcasts(self, round_index):
        return {node: None for node in self.nodes}


def make_unicast(num_nodes=4, num_tokens=2):
    problem = single_source_problem(num_nodes, num_tokens)
    algorithm = MinimalUnicast()
    algorithm.setup(problem, random.Random(0))
    return problem, algorithm


class TestKnowledgeTracking:
    def test_initial_knowledge_copied_from_problem(self):
        problem, algorithm = make_unicast()
        assert algorithm.known_tokens(0) == problem.initial_knowledge[0]
        assert algorithm.known_tokens(1) == frozenset()

    def test_accessors_before_setup_raise(self):
        algorithm = MinimalUnicast()
        with pytest.raises(SimulationError):
            _ = algorithm.problem
        with pytest.raises(SimulationError):
            _ = algorithm.rng

    def test_learn_returns_true_only_for_new_tokens(self):
        problem, algorithm = make_unicast()
        token = problem.tokens[0]
        assert algorithm.learn(1, token) is True
        assert algorithm.learn(1, token) is False

    def test_learn_updates_completeness(self):
        problem, algorithm = make_unicast(num_nodes=3, num_tokens=2)
        assert algorithm.is_node_complete(0)
        assert not algorithm.is_node_complete(1)
        for token in problem.tokens:
            algorithm.learn(1, token)
        assert algorithm.is_node_complete(1)
        assert not algorithm.all_complete()
        for token in problem.tokens:
            algorithm.learn(2, token)
        assert algorithm.all_complete()

    def test_missing_tokens_sorted(self):
        problem, algorithm = make_unicast(num_nodes=3, num_tokens=3)
        algorithm.learn(1, problem.tokens[1])
        missing = algorithm.missing_tokens(1)
        assert missing == [problem.tokens[0], problem.tokens[2]]

    def test_drain_token_learnings_clears_buffer(self):
        problem, algorithm = make_unicast()
        algorithm.learn(1, problem.tokens[0])
        algorithm.learn(2, problem.tokens[1])
        drained = algorithm.drain_token_learnings()
        assert len(drained) == 2
        assert algorithm.drain_token_learnings() == []

    def test_default_observation_extra_is_empty(self):
        _, algorithm = make_unicast()
        assert algorithm.observation_extra() == {}

    def test_communication_models(self):
        assert MinimalUnicast.communication_model is CommunicationModel.UNICAST
        assert MinimalBroadcast.communication_model is CommunicationModel.LOCAL_BROADCAST


class TestEdgeClassification:
    """The new / contributive / idle edge taxonomy of Section 3.1.1."""

    def topology(self, algorithm, round_index, edges, all_edges_so_far):
        neighbors = {node: set() for node in algorithm.nodes}
        for u, v in edges:
            neighbors[u].add(v)
            neighbors[v].add(u)
        inserted = [edge for edge in edges if edge not in all_edges_so_far]
        removed = [edge for edge in all_edges_so_far if edge not in edges]
        algorithm.on_topology(
            round_index,
            {node: frozenset(adj) for node, adj in neighbors.items()},
            inserted,
            removed,
        )

    def test_edge_is_new_in_insertion_round_and_the_next(self):
        _, algorithm = make_unicast()
        self.topology(algorithm, 1, [(0, 1)], [])
        assert algorithm.is_new_edge(0, 1, 1)
        self.topology(algorithm, 2, [(0, 1)], [(0, 1)])
        assert algorithm.is_new_edge(0, 1, 2)
        self.topology(algorithm, 3, [(0, 1)], [(0, 1)])
        assert not algorithm.is_new_edge(0, 1, 3)

    def test_edge_becomes_contributive_after_token_transfer(self):
        _, algorithm = make_unicast()
        self.topology(algorithm, 1, [(0, 1)], [])
        algorithm.record_token_over_edge(1, 0, 1)
        self.topology(algorithm, 2, [(0, 1)], [(0, 1)])
        self.topology(algorithm, 3, [(0, 1)], [(0, 1)])
        assert algorithm.is_contributive_edge(0, 1, 3)
        assert not algorithm.is_idle_edge(0, 1, 3)

    def test_edge_without_transfer_becomes_idle(self):
        _, algorithm = make_unicast()
        self.topology(algorithm, 1, [(0, 1)], [])
        self.topology(algorithm, 2, [(0, 1)], [(0, 1)])
        self.topology(algorithm, 3, [(0, 1)], [(0, 1)])
        assert algorithm.is_idle_edge(0, 1, 3)
        assert not algorithm.is_contributive_edge(0, 1, 3)

    def test_reinsertion_resets_contributive_history(self):
        _, algorithm = make_unicast()
        self.topology(algorithm, 1, [(0, 1)], [])
        algorithm.record_token_over_edge(1, 0, 1)
        # Edge disappears in round 2 and reappears in round 3.
        self.topology(algorithm, 2, [], [(0, 1)])
        self.topology(algorithm, 3, [(0, 1)], [])
        self.topology(algorithm, 4, [(0, 1)], [(0, 1)])
        self.topology(algorithm, 5, [(0, 1)], [(0, 1)])
        # The pre-removal transfer no longer counts: the edge is idle, not contributive.
        assert algorithm.is_idle_edge(0, 1, 5)

    def test_neighbor_tracking(self):
        _, algorithm = make_unicast()
        self.topology(algorithm, 1, [(0, 1), (1, 2)], [])
        assert algorithm.neighbors_of(1) == frozenset({0, 2})
        self.topology(algorithm, 2, [(0, 1)], [(0, 1), (1, 2)])
        assert algorithm.neighbors_of(1) == frozenset({0})
        assert algorithm.previous_neighbors_of(1) == frozenset({0, 2})

    def test_default_receive_learns_tokens_and_marks_edges(self):
        problem, algorithm = make_unicast()
        token = problem.tokens[0]
        self.topology(algorithm, 1, [(0, 1)], [])
        algorithm.receive_messages(
            1, {1: [ReceivedMessage(sender=0, payload=TokenMessage(token))]}
        )
        assert algorithm.knows(1, token)
        # A second transfer of the same token is not a new learning.
        algorithm.drain_token_learnings()
        algorithm.receive_messages(
            1, {1: [ReceivedMessage(sender=0, payload=TokenMessage(token))]}
        )
        assert algorithm.drain_token_learnings() == []
